"""Wait for `refill serve --print-ports` output and print the ports.

Usage: wait_ports.py FILE LISTENER [LISTENER ...]

Polls FILE until every requested listener has printed its JSON line,
then emits the ports space-separated in argument order (shell-friendly:
`read -r TCP HTTP <<< "$(wait_ports.py ports.jsonl ingest http)"`).
Exits 1 if the listeners do not appear within the timeout.
"""

import sys
import time

sys.path.insert(0, "src")

from repro.serve import read_printed_ports  # noqa: E402

TIMEOUT_SECONDS = 30.0


def main(argv: list[str]) -> int:
    if len(argv) < 2:
        print(__doc__, file=sys.stderr)
        return 2
    path, names = argv[0], argv[1:]
    deadline = time.monotonic() + TIMEOUT_SECONDS
    while time.monotonic() < deadline:
        try:
            with open(path, encoding="utf-8") as fh:
                ports = read_printed_ports(fh, expect=set(names))
        except (FileNotFoundError, ValueError):
            time.sleep(0.1)
            continue
        print(" ".join(str(ports[name]["port"]) for name in names))
        return 0
    print(f"listeners {names} never appeared in {path}", file=sys.stderr)
    return 1


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
