#!/usr/bin/env python3
"""Quickstart: reconstruct event flows from individual lossy logs.

Walks through the paper's Table II: three nodes forward one packet, parts
of the logs are lost, REFILL infers the lost events (shown in brackets) and
recovers the ordering.  Run:

    python examples/quickstart.py
"""

from repro import Refill, classify_flow
from repro.events.event import Event, EventType
from repro.events.log import NodeLog
from repro.events.packet import PacketKey
from repro.fsm.templates import forwarder_template

PACKET = PacketKey(origin=1, seq=0)


def ev(etype, node, src, dst):
    return Event.make(etype, node, src=src, dst=dst, packet=PACKET)


def trans(a, b):
    return ev(EventType.TRANS, a, a, b)


def ack(a, b):
    return ev(EventType.ACK, a, a, b)


def recv(a, b):
    return ev(EventType.RECV, b, a, b)


CASES = {
    "complete log": {
        1: [trans(1, 2), ack(1, 2)],
        2: [recv(1, 2), trans(2, 3), ack(2, 3)],
        3: [recv(2, 3)],
    },
    "case 1 (node 2's log lost entirely)": {
        1: [trans(1, 2)],
        3: [recv(2, 3)],
    },
    "case 2 (receiver events lost)": {
        1: [trans(1, 2), ack(1, 2)],
    },
    "case 3 (ack precedes trans: hidden retransmission)": {
        1: [ack(1, 2), trans(1, 2)],
    },
    "case 4 (routing loop hides a loss)": {
        1: [trans(1, 2), ack(1, 2), recv(3, 1), trans(1, 2), ack(1, 2)],
        2: [recv(1, 2), trans(2, 3), ack(2, 3), trans(2, 3)],
        3: [recv(2, 3), trans(3, 1), ack(3, 1)],
    },
}


def main() -> None:
    # Table II has no explicit generation events, so the origin's engine
    # starts holding the packet (with_gen=False).  The simulator workload
    # uses the default forwarder_template() instead.
    refill = Refill(forwarder_template(with_gen=False))

    for name, logs in CASES.items():
        node_logs = {node: NodeLog(node, events) for node, events in logs.items()}
        flow = refill.reconstruct(node_logs)[PACKET]
        report = classify_flow(flow)
        print(f"== {name}")
        print(f"   flow:      {flow.format()}")
        print(f"   inferred:  {len(flow.inferred_events())} lost event(s) recovered")
        print(f"   diagnosis: {report.cause} at node {report.position}")
        print()


if __name__ == "__main__":
    main()
