#!/usr/bin/env python3
"""Custom-protocol inference engines (paper Fig. 3, §IV-B).

REFILL's engine layer is generic over FSMs: this example models a
dissemination/negotiation protocol — a coordinator broadcasts a command,
waits for acknowledgements from two responders, then commits (the paper's
"mixed inter-node transitions" pattern, Fig. 3d) — and reconstructs the
exchange from logs where the broadcast record itself was lost.  Run:

    python examples/dissemination.py
"""

from repro.core.transition_algorithm import PacketReconstructor
from repro.events.event import Event
from repro.fsm.prerequisites import PrereqRule
from repro.fsm.templates import chain_template

COORDINATOR, LEFT, RIGHT = 2, 1, 3

# per-node FSMs, paper Fig. 3d wiring:
#   coordinator: idle --broadcast--> waiting --commit--> done
#   responders:  idle --apply-----> applied --ack------> done
# inter-node transitions:
#   a responder can only apply after the coordinator broadcast (many-to-1);
#   the coordinator can only commit after both responders acked (1-to-many).
TEMPLATES = {
    COORDINATOR: chain_template(
        "coordinator",
        ["broadcast", "commit"],
        {"commit": [PrereqRule(LEFT, "s2"), PrereqRule(RIGHT, "s2")]},
    ),
    LEFT: chain_template(
        "responder-left", ["apply", "ack"], {"apply": [PrereqRule(COORDINATOR, "s1")]}
    ),
    RIGHT: chain_template(
        "responder-right", ["apply", "ack"], {"apply": [PrereqRule(COORDINATOR, "s1")]}
    ),
}


def reconstruct(logs: dict[int, list[str]], title: str) -> None:
    events = {node: [Event.make(label, node) for label in labels] for node, labels in logs.items()}
    flow = PacketReconstructor(lambda node: TEMPLATES[node]).reconstruct(events)
    print(f"== {title}")
    print("   flow:", " -> ".join(
        f"[{e.event.etype}@{e.event.node}]" if e.inferred else f"{e.event.etype}@{e.event.node}"
        for e in flow.entries
    ))
    # which orderings are actually determined?
    left_apply = flow.find("apply", node=LEFT)
    right_apply = flow.find("apply", node=RIGHT)
    if left_apply and right_apply:
        determined = flow.order_determined(left_apply[0], right_apply[0])
        print(f"   left-vs-right apply order determined: {determined}"
              "  (concurrent responders, paper Fig. 3b)")
    print()


def main() -> None:
    reconstruct(
        {
            COORDINATOR: ["broadcast", "commit"],
            LEFT: ["apply", "ack"],
            RIGHT: ["apply", "ack"],
        },
        "complete logs",
    )
    reconstruct(
        {
            COORDINATOR: ["commit"],  # broadcast record lost!
            LEFT: ["apply", "ack"],
            RIGHT: ["ack"],           # right responder's apply lost too
        },
        "broadcast + one apply lost (REFILL infers them)",
    )
    reconstruct(
        {COORDINATOR: ["commit"]},
        "only the final commit survives (full cascade inference)",
    )


if __name__ == "__main__":
    main()
