#!/usr/bin/env python3
"""Live monitoring: diagnosis that sharpens as log batches arrive.

Operators don't wait a month for logs — each collection round delivers
another slice.  This example replays a simulated deployment's logs in
arrival batches through :class:`repro.core.incremental.IncrementalRefill`
and shows a packet's diagnosis *changing* as evidence lands (the sink-view
"lost somewhere" becomes "acked loss at the sink").  Run:

    python examples/live_monitoring.py
"""

from collections import Counter

from repro.analysis.pipeline import default_loss_spec, run_simulation
from repro.core.incremental import IncrementalRefill
from repro.lognet.collector import collect_logs
from repro.simnet.scenarios import citysee


def main() -> None:
    print("simulating ...")
    params = citysee(n_nodes=60, days=1, seed=29)
    sim = run_simulation(params)
    collected = collect_logs(
        sim.true_logs,
        default_loss_spec(sim),
        seed=5,
        perfect_clocks=frozenset({sim.base_station_node}),
    )

    engine = IncrementalRefill(delivery_node=sim.base_station_node)

    # batch the logs as three collection rounds: each node's log arrives in
    # thirds (per-node order preserved, as CTP collection does)
    rounds = 3
    for round_no in range(rounds):
        batch = {}
        for node, log in collected.items():
            chunk = list(log)[
                len(log) * round_no // rounds : len(log) * (round_no + 1) // rounds
            ]
            if chunk:
                batch[node] = chunk
        dirtied = engine.ingest(batch)
        engine.refresh()
        causes = Counter(str(r.cause) for r in engine.reports().values() if r.lost)
        print(
            f"round {round_no + 1}: +{sum(len(v) for v in batch.values())} events, "
            f"{len(dirtied)} packets updated, "
            f"{len(engine.packets())} known, loss causes so far: {dict(causes)}"
        )

    # show one packet whose story sharpened across rounds
    print("\nper-packet drill-down (provenance-annotated):")
    reports = engine.reports()
    interesting = next(
        (p for p, r in sorted(reports.items()) if r.lost and engine.flow(p).inferred_events()),
        None,
    )
    if interesting is None:
        print("(no lost packet with inferred events this run)")
        return
    flow = engine.flow(interesting)
    print(f"packet {interesting}: {reports[interesting].cause} at node "
          f"{reports[interesting].position}")
    print(flow.explain())


if __name__ == "__main__":
    main()
