#!/usr/bin/env python3
"""Per-packet tracing from lossy logs (paper §II, §V).

Simulates a small network, then prints the reconstructed journey of the
most interesting packets: one delivered, one that looped (duplicate), one
that died inside a node, one lost on the sink's serial path — each with the
full event flow, inferred events bracketed.  Run:

    python examples/packet_tracing.py
"""

from repro.analysis.pipeline import evaluate
from repro.core.diagnosis import LossCause
from repro.core.tracing import trace_packet
from repro.simnet.scenarios import citysee


def show(result, packet, title):
    flow = result.flows[packet]
    report = result.reports[packet]
    trace = trace_packet(flow)
    true_fate = result.sim.truth.fates[packet]
    print(f"== {title}: packet {packet}")
    print(f"   flow:       {flow.format()}")
    print(f"   path:       {trace.path_string()}"
          f"{'  (loop!)' if trace.has_loop else ''}"
          f"{f'  ({trace.retransmissions} retx)' if trace.retransmissions else ''}")
    print(f"   diagnosis:  {report.cause} at node {report.position}")
    print(f"   true fate:  {true_fate.cause} at node {true_fate.position}")
    print()


def pick(result, predicate):
    for packet, report in sorted(result.reports.items()):
        if predicate(packet, report):
            return packet
    return None


def main() -> None:
    print("simulating ...")
    result = evaluate(citysee(n_nodes=80, days=2, seed=13))
    sink = result.sink

    cases = [
        (
            "delivered, multi-hop",
            lambda p, r: r.cause is LossCause.DELIVERED
            and len(trace_packet(result.flows[p]).path) >= 4,
        ),
        (
            "delivered despite inferred (lost) log events",
            lambda p, r: r.cause is LossCause.DELIVERED
            and len(result.flows[p].inferred_events()) >= 2,
        ),
        ("routing loop -> duplicate drop", lambda p, r: r.cause is LossCause.DUP_LOSS),
        (
            "died inside a relay node",
            lambda p, r: r.cause is LossCause.RECEIVED_LOSS and r.position != sink,
        ),
        (
            "lost on the sink's serial path",
            lambda p, r: r.cause in (LossCause.RECEIVED_LOSS, LossCause.ACKED_LOSS)
            and r.position == sink,
        ),
        ("link retry timeout", lambda p, r: r.cause is LossCause.TIMEOUT_LOSS),
    ]
    for title, predicate in cases:
        packet = pick(result, predicate)
        if packet is None:
            print(f"== {title}: (no instance in this run)\n")
            continue
        show(result, packet, title)


if __name__ == "__main__":
    main()
