#!/usr/bin/env python3
"""CitySee-style network diagnosis end to end (paper §V).

Simulates a scaled CitySee deployment (snow days, unstable sink serial
link, server outages), degrades the per-node logs, reconstructs event flows
with REFILL and prints the diagnosis the paper's Figs. 4/5/6/8/9 report —
ending with the headline finding: most losses sit on the sink's serial
path.  Run:

    python examples/citysee_diagnosis.py [--days N] [--nodes N]
"""

import argparse

from repro.analysis.causes import cause_shares, daily_composition, sink_split
from repro.analysis.pipeline import evaluate
from repro.analysis.report import (
    render_cause_shares,
    render_daily_composition,
    render_spatial,
)
from repro.analysis.spatial import received_loss_map
from repro.analysis.temporal import (
    concentration_gini,
    loss_scatter,
    per_node_loss_counts,
)
from repro.simnet.scenarios import DAY, citysee


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--days", type=int, default=10, help="scaled days to simulate")
    parser.add_argument("--nodes", type=int, default=100, help="network size")
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args()

    params = citysee(n_nodes=args.nodes, days=args.days, seed=args.seed)
    print(f"simulating {args.nodes} nodes for {args.days} scaled days ...")
    result = evaluate(params)
    sim = result.sim

    n_packets = len(sim.truth.fates)
    lost = [r for r in result.reports.values() if r.lost]
    print(
        f"{n_packets} packets generated, "
        f"{sim.delivery_ratio():.1%} delivered, "
        f"{len(lost)} losses analyzed from "
        f"{sum(len(l) for l in result.collected_logs.values())} collected log events\n"
    )

    # Fig. 4 vs Fig. 5: source spread vs position concentration
    sources = loss_scatter(result.reports, result.est_loss_times, axis="source")
    positions = loss_scatter(result.reports, result.est_loss_times, axis="position")
    nodes = sim.topology.nodes
    print(
        "loss sources   gini = "
        f"{concentration_gini(per_node_loss_counts(sources, nodes)):.2f}  (evenly spread, Fig. 4)"
    )
    print(
        "loss positions gini = "
        f"{concentration_gini(per_node_loss_counts(positions, nodes)):.2f}  (concentrated, Fig. 5)\n"
    )

    # Fig. 6: per-day composition
    days = daily_composition(
        result.reports, result.est_loss_times, day_seconds=DAY, n_days=args.days
    )
    print(render_daily_composition(days, title="Fig. 6 — per-day loss composition"))
    print()

    # Fig. 8: where received losses sit
    print(render_spatial(received_loss_map(result.reports, sim.topology), top=10))
    print()

    # Fig. 9 / §V-C: the breakdown
    print(render_cause_shares(cause_shares(result.reports), title="Fig. 9 — cause shares (%)"))
    split = sink_split(result.reports, sim.sink)
    print()
    for key, value in split.items():
        print(f"  {key:<16} {value:5.1f}%")

    sink_share = split["received_sink"] + split["acked_sink"]
    print(
        f"\n>> headline: {sink_share:.0f}% of all losses are received/acked losses"
        f" ON THE SINK (node {sim.sink}) — the unstable serial connection to"
        " the base station, invisible to sink-view analysis (paper §V-B)."
    )


if __name__ == "__main__":
    main()
