#!/usr/bin/env python3
"""Render the paper's figures as SVG files from a simulated deployment.

Produces `figures/fig4_sink_view.svg`, `fig5_loss_positions.svg`,
`fig6_causes_over_days.svg` and `fig8_spatial.svg` — the pictures behind
the benchmarks' ASCII series.  Run:

    python examples/citysee_figures.py [--days N] [--out DIR]
"""

import argparse
import pathlib

from repro.analysis.causes import daily_composition
from repro.analysis.pipeline import evaluate
from repro.analysis.spatial import received_loss_map
from repro.analysis.temporal import loss_scatter
from repro.simnet.scenarios import DAY, citysee
from repro.vis.figures import (
    render_scatter_svg,
    render_spatial_svg,
    render_stacked_days_svg,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--days", type=int, default=12)
    parser.add_argument("--nodes", type=int, default=100)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--out", default="figures")
    args = parser.parse_args()

    out = pathlib.Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    print(f"simulating {args.nodes} nodes / {args.days} scaled days ...")
    result = evaluate(citysee(n_nodes=args.nodes, days=args.days, seed=args.seed))

    sources = loss_scatter(result.reports, result.est_loss_times, axis="source")
    (out / "fig4_sink_view.svg").write_text(
        render_scatter_svg(
            sources,
            title="Fig. 4 — sink view of lost packets (time x source node)",
            y_label="source node id",
        )
    )

    positions = loss_scatter(result.reports, result.est_loss_times, axis="position")
    (out / "fig5_loss_positions.svg").write_text(
        render_scatter_svg(
            positions,
            title="Fig. 5 — causes for lost packets by position (REFILL)",
            y_label="loss position (node id)",
        )
    )

    days = daily_composition(
        result.reports, result.est_loss_times, day_seconds=DAY, n_days=args.days
    )
    annotations = {d: "snow" for d in (8, 9) if d < args.days}
    if args.days > 23:
        annotations[23] = "sink fixed"
    (out / "fig6_causes_over_days.svg").write_text(
        render_stacked_days_svg(days, annotations=annotations)
    )

    spatial = received_loss_map(result.reports, result.sim.topology)
    (out / "fig8_spatial.svg").write_text(
        render_spatial_svg(spatial, positions=result.sim.topology.positions)
    )

    for name in ("fig4_sink_view", "fig5_loss_positions", "fig6_causes_over_days", "fig8_spatial"):
        print(f"wrote {out / (name + '.svg')}")


if __name__ == "__main__":
    main()
