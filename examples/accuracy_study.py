#!/usr/bin/env python3
"""How much log loss can REFILL absorb?  (ground-truth study)

The simulator knows every packet's true fate, so — unlike the paper's
physical deployment — reconstruction quality is measurable.  This example
sweeps record-loss severity and prints accuracy, then shows REFILL against
the NetCheck-style and time-correlation baselines at a realistic loss
level.  Run:

    python examples/accuracy_study.py
"""

from repro.analysis.accuracy import cause_accuracy, score_run
from repro.analysis.pipeline import evaluate, run_simulation
from repro.baselines.netcheck import NetCheckAnalyzer
from repro.baselines.time_correlation import TimeCorrelationDiagnosis
from repro.lognet.loss import LogLossSpec
from repro.simnet.scenarios import citysee
from repro.util.tables import render_table

PARAMS = citysee(n_nodes=80, days=3, seed=17)


def main() -> None:
    print("simulating ...")
    sim = run_simulation(PARAMS)

    rows = []
    for severity in (0.0, 0.05, 0.15, 0.3, 0.5):
        spec = LogLossSpec(
            write_fail_p=severity,
            chunk_loss_p=severity / 2,
            node_loss_p=severity / 10,
            immune=frozenset({sim.base_station_node}),
        )
        result = evaluate(PARAMS, sim=sim, loss_spec=spec)
        acc = score_run(
            result.flows, result.reports, result.collected_logs, sim.truth, sink=sim.sink
        )
        rows.append(
            (
                f"{severity:.0%}",
                f"{acc.cause_accuracy:.3f}",
                f"{acc.position_accuracy:.3f}",
                f"{acc.event_recall:.3f}",
                f"{acc.event_precision:.3f}",
            )
        )
    print(render_table(
        ["record loss", "cause acc", "position acc", "event recall", "event precision"],
        rows,
        title="REFILL accuracy vs log-loss severity",
    ))

    # baselines at the default (realistic) degradation
    result = evaluate(PARAMS, sim=sim)
    refill_acc, refill_pos, _ = cause_accuracy(result.reports, sim.truth, sink=sim.sink)

    netcheck = NetCheckAnalyzer()
    nc_reports = netcheck.diagnose(
        netcheck.reconstruct(result.collected_logs), delivery_node=sim.base_station_node
    )
    nc_acc, nc_pos, _ = cause_accuracy(
        nc_reports, sim.truth, sink=sim.sink, outage_attributed=False
    )

    lost_times = {p: result.est_loss_times.get(p) for p, r in result.raw_reports.items() if r.lost}
    tc_reports = dict(result.raw_reports)
    tc_reports.update(TimeCorrelationDiagnosis(result.collected_logs).diagnose(lost_times))
    tc_acc, tc_pos, _ = cause_accuracy(
        tc_reports, sim.truth, sink=sim.sink, outage_attributed=False
    )

    print()
    print(render_table(
        ["analyzer", "cause acc", "position acc"],
        [
            ("REFILL", f"{refill_acc:.3f}", f"{refill_pos:.3f}"),
            ("NetCheck-style", f"{nc_acc:.3f}", f"{nc_pos:.3f}"),
            ("time-correlation", f"{tc_acc:.3f}", f"{tc_pos:.3f}"),
        ],
        title="REFILL vs baselines (default log degradation)",
    ))


if __name__ == "__main__":
    main()
