#!/usr/bin/env python3
"""Query campaign: flood a question down, reconstruct who answered.

The operator floods a query over the routing tree and collects answers —
then asks REFILL the campaign post-mortem from the (lossy) logs: which
nodes actually heard the query, who answered, and where the missing
answers died.  Run:

    python examples/query_campaign.py
"""

from repro.core.diagnosis import classify_flow
from repro.core.refill import Refill
from repro.core.transition_algorithm import PacketReconstructor
from repro.events.merge import group_by_packet
from repro.fsm.templates import FORWARDED, HEARD, query_templates
from repro.lognet.collector import collect_logs
from repro.lognet.loss import LogLossSpec
from repro.simnet.query import QueryParams, run_query
from repro.simnet.scenarios import small_network


def main() -> None:
    print("running the campaign ...")
    campaign = run_query(
        QueryParams(scenario=small_network(n_nodes=25, seed=8, minutes=5))
    )
    nodes = campaign.network.topology.nodes
    print(
        f"truth: {len(campaign.heard)}/{len(nodes)} nodes heard the query, "
        f"{len(campaign.answered)} answered, "
        f"{len(campaign.delivered_answers())} answers delivered\n"
    )

    # degrade the logs the usual way, then reconstruct both directions
    spec = LogLossSpec(write_fail_p=0.05, chunk_loss_p=0.05, node_loss_p=0.04)
    lossy = collect_logs(campaign.true_logs, spec, seed=9)

    # 1. the query flood, through the query-flood engines
    grouped = group_by_packet(lossy)
    flow = PacketReconstructor(
        query_templates(campaign.sink), campaign.query
    ).reconstruct(grouped.get(campaign.query, {}))
    reconstructed_hearers = {
        n for n in nodes if flow.visited(n, HEARD) or flow.visited(n, FORWARDED)
    }
    hallucinated = reconstructed_hearers - campaign.heard
    print(
        f"REFILL (lossy logs): {len(reconstructed_hearers)} hearers "
        f"reconstructed ({len(flow.inferred_events())} flood events inferred, "
        f"{len(hallucinated)} hallucinated)"
    )

    # 2. the answers, through the standard collection engines
    refill = Refill()
    flows = refill.reconstruct(lossy)
    bs = campaign.base_station
    print("\nmissing answers, localized:")
    shown = 0
    for node in sorted(campaign.answered - campaign.delivered_answers()):
        packet = campaign.responses[node]
        if packet not in flows:
            print(f"  node {node}: no surviving evidence at all")
            continue
        report = classify_flow(flows[packet], delivery_node=bs)
        print(f"  node {node}: {report.cause} at node {report.position}")
        shown += 1
        if shown >= 8:
            break
    if not (campaign.answered - campaign.delivered_answers()):
        print("  (every answer made it this run)")


if __name__ == "__main__":
    main()
