"""S2 — live-service throughput and query latency (the serve layer).

The daemon's operational envelope on a 50-node corpus: how fast lines go
from a TCP socket into reconstructed flows (ingest throughput), and how
long queries take once the session is warm (p50/p95 straight from the
``serve.request.seconds`` obs histogram the daemon itself records).

Besides the printed table, the run writes ``BENCH_serve.json`` at the repo
root — the serve layer's perf baseline.  Future perf PRs diff against it;
the assertions here are generous floors so CI noise never fails the build,
while the JSON captures the real numbers for trend tracking.

``pytest benchmarks/bench_serve.py --serve-shards N`` runs the ingest /
query benchmark against the N-shard router/worker cluster instead of the
single daemon; the shard count lands in the snapshot's ``run`` block so a
``bench_history record`` entry can attribute topology changes.
"""

import json
import pathlib
import time

from repro.analysis.pipeline import default_loss_spec, run_simulation
from repro.lognet.collector import collect_logs
from repro.obs import FlightRecorder, MetricsRegistry, NullRegistry, use_recorder
from repro.obs.registry import use_registry
from repro.serve import RefillServer, ServeConfig, ServerThread
from repro.serve.client import push_lines
from repro.serve.ingest import IngestItem
from repro.simnet.scenarios import citysee
from repro.util.tables import render_table

from benchmarks.conftest import BENCH_SCHEMA, bench_seed, run_metadata

BASELINE_PATH = pathlib.Path(__file__).parent.parent / "BENCH_serve.json"

N_NODES = 50
QUERY_ROUNDS = 40


def prepare_lines():
    """Collected 50-node corpus rendered to wire lines, node order."""
    from repro.events.codec import encode_event

    params = citysee(n_nodes=N_NODES, days=2, seed=bench_seed("serve", 17))
    sim = run_simulation(params)
    logs = collect_logs(
        sim.true_logs,
        default_loss_spec(sim),
        seed=9,
        perfect_clocks=frozenset({sim.base_station_node}),
    )
    lines = [
        encode_event(event)
        for node in sorted(logs)
        for event in logs[node]
    ]
    return lines, sim.base_station_node


def test_serve_ingest_and_query_latency(emit, serve_shards):
    lines, sink = prepare_lines()
    registry = MetricsRegistry()
    config = ServeConfig(
        flush_interval=0.05,
        delivery_node=sink,
        checkpoint_interval=0.0,
        shards=serve_shards,
    )
    with ServerThread(config, registry=registry) as thread:
        from tests.serve.util import http_json, http_req, wait_ready

        ingest_start = time.perf_counter()
        push_lines(lines, port=thread.tcp_port, source="bench")
        wait_ready(thread.http_port)
        ingest_elapsed = time.perf_counter() - ingest_start

        _, packets = http_json(thread.http_port, "/packets")
        some = packets["packets"][:: max(1, len(packets["packets"]) // 25)]
        for _ in range(QUERY_ROUNDS):
            http_req(thread.http_port, "/flows")
            http_req(thread.http_port, "/summary")
            for key in some[:5]:
                http_req(thread.http_port, f"/flow/{key}")

        _, snap = http_json(thread.http_port, "/metrics")

    lines_per_s = len(lines) / ingest_elapsed
    latency = {
        name.partition("{")[2].rstrip("}").partition("=")[2]: summary
        for name, summary in snap["histograms"].items()
        # the /metrics request that produced this snapshot is still inside
        # its own timer, so its histogram exists with zero samples — skip;
        # with --serve-shards N the merged snapshot also carries every
        # worker's histograms relabeled shard=K — the public latency is the
        # router's own unlabeled timer, so those are skipped too
        if name.startswith("serve.request.seconds")
        and "shard=" not in name
        and summary["count"] > 0
    }

    # Per-stage span breakdown: the single "ingest" row conflates wire
    # decode with session/inference time — the daemon's own span histograms
    # (serve.decode vs serve.ingest.batch vs serve.refresh) attribute the
    # wall clock to pipeline stages.  Shard-labeled copies (with
    # --serve-shards) partition the same work and are summed in.
    stages: dict[str, dict[str, float]] = {}
    for name, s in snap["histograms"].items():
        if not name.startswith("span.serve."):
            continue
        stage = name[len("span.") :].partition("{")[0]
        agg = stages.setdefault(stage, {"count": 0, "seconds": 0.0})
        agg["count"] += s["count"]
        agg["seconds"] += s["total"]

    rows = [
        ("ingest", len(lines), round(ingest_elapsed, 3), int(lines_per_s), "-"),
    ]
    for stage in sorted(stages):
        agg = stages[stage]
        rows.append(
            (
                f"  {stage}",
                int(agg["count"]),
                round(agg["seconds"], 3),
                "-",
                "-",
            )
        )
    for route in sorted(latency):
        s = latency[route]
        rows.append(
            (
                f"GET /{route}",
                s["count"],
                "-",
                round(s["p50"] * 1e6),
                round(s["p95"] * 1e6),
            )
        )
    emit(
        "bench_serve",
        render_table(
            ["operation", "n", "seconds", "rate_or_p50us", "p95us"],
            rows,
            title=(
                f"S2 — refill serve, {N_NODES}-node corpus, "
                f"shards={serve_shards}"
            ),
        ),
    )

    corpus = {"n_nodes": N_NODES, "days": 2, "lines": len(lines)}
    baseline = {
        "schema": BENCH_SCHEMA,
        "run": run_metadata(
            "serve",
            seed=bench_seed("serve", 17),
            corpus=corpus,
            shards=serve_shards,
        ),
        "corpus": corpus,
        "ingest": {
            "seconds": round(ingest_elapsed, 4),
            "lines_per_s": round(lines_per_s, 1),
        },
        "stages": {
            stage: {
                "count": int(agg["count"]),
                "seconds": round(agg["seconds"], 4),
            }
            for stage, agg in sorted(stages.items())
        },
        "query_seconds": {
            route: {
                "count": s["count"],
                "p50": s["p50"],
                "p95": s["p95"],
            }
            for route, s in sorted(latency.items())
        },
        "packets": len(packets["packets"]),
    }
    BASELINE_PATH.write_text(json.dumps(baseline, indent=2, sort_keys=True) + "\n")

    # generous floors: a laptop does 10-100x better; only a real regression
    # (or a broken daemon) trips these
    assert lines_per_s > 500
    flows_p95 = latency["flows"]["p95"]
    assert flows_p95 < 5.0
    assert latency["flow"]["p95"] < flows_p95  # single packet beats bulk


#: Instrumentation may cost at most this fraction of the uninstrumented
#: ingest path (same contract as ``bench_measurement.py``); the absolute
#: floor keeps sub-50ms timing jitter from failing the ratio.
OVERHEAD_RATIO = 1.05
OVERHEAD_FLOOR_S = 0.05


def _ingest_direct(lines, sink, registry, recorder):
    """Seconds to push the corpus through the consumer's ingest path.

    Bypasses the sockets: the batches are fed straight to
    ``RefillServer._ingest_item`` (decode -> session -> refresh), which is
    exactly the code the tracing spans instrument — so the measured delta
    is instrumentation cost, not network noise.
    """
    config = ServeConfig(
        flush_interval=0.05, delivery_node=sink, checkpoint_interval=0.0
    )
    server = RefillServer(config, registry=registry)
    batch = config.ingest_batch_lines
    items = [
        IngestItem(
            "bench",
            None,
            lines[start : start + batch],
            trace_id="bench-overhead",
            enqueued_at=time.perf_counter(),
        )
        for start in range(0, len(lines), batch)
    ]
    with use_registry(registry), use_recorder(recorder):
        start = time.perf_counter()
        for item in items:
            server._ingest_item(item)
        server.session.refresh()
        elapsed = time.perf_counter() - start
    return elapsed, len(server.session.packets())


def test_serve_ingest_overhead(emit):
    """Tracing on (registry + flight recorder) vs off, same ingest work.

    Interleaved best-of-N, like ``bench_measurement.py``'s overhead guard:
    best-case wall time is the right estimator for "what does the
    instrumentation itself cost" because scheduler noise only ever adds.
    """
    lines, sink = prepare_lines()
    base_times, traced_times = [], []
    packets_base = packets_traced = 0
    for _ in range(5):
        elapsed, packets_base = _ingest_direct(lines, sink, NullRegistry(), None)
        base_times.append(elapsed)
        elapsed, packets_traced = _ingest_direct(
            lines, sink, MetricsRegistry(), FlightRecorder()
        )
        traced_times.append(elapsed)
    base, traced = min(base_times), min(traced_times)
    assert packets_base == packets_traced  # tracing never changes the work
    emit(
        "bench_serve_overhead",
        render_table(
            ["path", "best_s", "lines_per_s"],
            [
                ("NullRegistry", f"{base:.4f}", int(len(lines) / base)),
                ("traced", f"{traced:.4f}", int(len(lines) / traced)),
            ],
            title="serve ingest instrumentation overhead (best of 5)",
        ),
    )
    assert traced <= max(base * OVERHEAD_RATIO, base + OVERHEAD_FLOOR_S), (
        f"serve ingest instrumentation overhead too high: "
        f"{base:.4f}s uninstrumented vs {traced:.4f}s traced"
    )
