"""S2 — live-service throughput and query latency (the serve layer).

The daemon's operational envelope on a 50-node corpus: how fast lines go
from a TCP socket into reconstructed flows (ingest throughput), and how
long queries take once the session is warm (p50/p95 straight from the
``serve.request.seconds`` obs histogram the daemon itself records).

Besides the printed table, the run writes ``BENCH_serve.json`` at the repo
root — the serve layer's perf baseline.  Future perf PRs diff against it;
the assertions here are generous floors so CI noise never fails the build,
while the JSON captures the real numbers for trend tracking.
"""

import json
import pathlib
import time

from repro.analysis.pipeline import default_loss_spec, run_simulation
from repro.lognet.collector import collect_logs
from repro.obs import MetricsRegistry
from repro.serve import ServeConfig, ServerThread
from repro.serve.client import push_lines
from repro.simnet.scenarios import citysee
from repro.util.tables import render_table

from benchmarks.conftest import bench_seed

BASELINE_PATH = pathlib.Path(__file__).parent.parent / "BENCH_serve.json"

N_NODES = 50
QUERY_ROUNDS = 40


def prepare_lines():
    """Collected 50-node corpus rendered to wire lines, node order."""
    from repro.events.codec import encode_event

    params = citysee(n_nodes=N_NODES, days=2, seed=bench_seed("serve", 17))
    sim = run_simulation(params)
    logs = collect_logs(
        sim.true_logs,
        default_loss_spec(sim),
        seed=9,
        perfect_clocks=frozenset({sim.base_station_node}),
    )
    lines = [
        encode_event(event)
        for node in sorted(logs)
        for event in logs[node]
    ]
    return lines, sim.base_station_node


def test_serve_ingest_and_query_latency(emit):
    lines, sink = prepare_lines()
    registry = MetricsRegistry()
    config = ServeConfig(
        flush_interval=0.05, delivery_node=sink, checkpoint_interval=0.0
    )
    with ServerThread(config, registry=registry) as thread:
        from tests.serve.util import http_json, http_req, wait_ready

        ingest_start = time.perf_counter()
        push_lines(lines, port=thread.tcp_port, source="bench")
        wait_ready(thread.http_port)
        ingest_elapsed = time.perf_counter() - ingest_start

        _, packets = http_json(thread.http_port, "/packets")
        some = packets["packets"][:: max(1, len(packets["packets"]) // 25)]
        for _ in range(QUERY_ROUNDS):
            http_req(thread.http_port, "/flows")
            http_req(thread.http_port, "/summary")
            for key in some[:5]:
                http_req(thread.http_port, f"/flow/{key}")

        _, snap = http_json(thread.http_port, "/metrics")

    lines_per_s = len(lines) / ingest_elapsed
    latency = {
        name.partition("{")[2].rstrip("}").partition("=")[2]: summary
        for name, summary in snap["histograms"].items()
        # the /metrics request that produced this snapshot is still inside
        # its own timer, so its histogram exists with zero samples — skip
        if name.startswith("serve.request.seconds")
        and summary["count"] > 0
    }

    rows = [
        ("ingest", len(lines), round(ingest_elapsed, 3), int(lines_per_s), "-"),
    ]
    for route in sorted(latency):
        s = latency[route]
        rows.append(
            (
                f"GET /{route}",
                s["count"],
                "-",
                round(s["p50"] * 1e6),
                round(s["p95"] * 1e6),
            )
        )
    emit(
        "bench_serve",
        render_table(
            ["operation", "n", "seconds", "rate_or_p50us", "p95us"],
            rows,
            title=f"S2 — refill serve, {N_NODES}-node corpus",
        ),
    )

    baseline = {
        "corpus": {"n_nodes": N_NODES, "days": 2, "lines": len(lines)},
        "ingest": {
            "seconds": round(ingest_elapsed, 4),
            "lines_per_s": round(lines_per_s, 1),
        },
        "query_seconds": {
            route: {
                "count": s["count"],
                "p50": s["p50"],
                "p95": s["p95"],
            }
            for route, s in sorted(latency.items())
        },
        "packets": len(packets["packets"]),
    }
    BASELINE_PATH.write_text(json.dumps(baseline, indent=2, sort_keys=True) + "\n")

    # generous floors: a laptop does 10-100x better; only a real regression
    # (or a broken daemon) trips these
    assert lines_per_s > 500
    flows_p95 = latency["flows"]["p95"]
    assert flows_p95 < 5.0
    assert latency["flow"]["p95"] < flows_p95  # single packet beats bulk
