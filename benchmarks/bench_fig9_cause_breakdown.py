"""Fig. 9 + §V-C — the cause breakdown of all losses over 30 days.

Paper numbers: server outage 22.6%; received 32.2% (20.0% sink + 12.2%
elsewhere); acked 38.6% (38.0% sink + 0.6% elsewhere); duplicated 0.3%;
timeout 0.8%; overflow 1.1%.  Absolute shares depend on the (simulated)
deployment; what must hold is the *shape*: acked and received dominate and
mostly sit on the sink, the outage slice is substantial, and
dup/timeout/overflow are low single digits.
"""

from repro.analysis.causes import cause_shares, sink_split
from repro.analysis.report import render_cause_shares
from repro.core.diagnosis import LossCause
from repro.util.tables import render_table

PAPER = {
    LossCause.SERVER_OUTAGE: 22.6,
    LossCause.RECEIVED_LOSS: 32.2,
    LossCause.ACKED_LOSS: 38.6,
    LossCause.DUP_LOSS: 0.3,
    LossCause.TIMEOUT_LOSS: 0.8,
    LossCause.OVERFLOW_LOSS: 1.1,
}

PAPER_SPLIT = {
    "received_sink": 20.0,
    "received_other": 12.2,
    "acked_sink": 38.0,
    "acked_other": 0.6,
}


def test_fig9_cause_breakdown(benchmark, thirty_day_eval, emit):
    result = thirty_day_eval

    def compute():
        return cause_shares(result.reports), sink_split(result.reports, result.sink)

    shares, split = benchmark.pedantic(compute, rounds=5, iterations=1)

    # shape assertions (who wins, by roughly what class of magnitude)
    assert shares[LossCause.ACKED_LOSS] > 20
    assert shares[LossCause.RECEIVED_LOSS] > 20
    assert shares[LossCause.ACKED_LOSS] + shares[LossCause.RECEIVED_LOSS] > 55
    assert 8 < shares[LossCause.SERVER_OUTAGE] < 40
    for minority in (LossCause.DUP_LOSS, LossCause.TIMEOUT_LOSS, LossCause.OVERFLOW_LOSS):
        assert shares.get(minority, 0.0) < 8
    # the sink dominates both in-node bands; elsewhere acked losses are rare
    assert split["acked_sink"] > split["acked_other"] * 4
    assert split["received_sink"] + split["acked_sink"] > 40
    assert split["acked_other"] < 5

    rows = [
        (str(cause), round(shares.get(cause, 0.0), 1), PAPER[cause])
        for cause in PAPER
    ]
    rows += [
        (key, round(split[key], 1), PAPER_SPLIT[key]) for key in PAPER_SPLIT
    ]
    emit(
        "fig9_cause_breakdown",
        render_table(
            ["cause", "measured_%", "paper_%"],
            rows,
            title="Fig.9 / §V-C — loss cause breakdown (percent of all losses)",
        ),
    )
