"""Fig. 8 — spatial distribution of received losses.

"the sink node has a large number of received losses, in which packets get
lost even after they have arrived at the sink node" — the sink must carry
the biggest circle, and in-node losses concentrate on few nodes.
"""

from repro.analysis.report import render_spatial
from repro.analysis.spatial import (
    loss_share_of_top_nodes,
    received_loss_map,
    top_loss_node,
)


def test_fig8_spatial_received_losses(benchmark, two_day_eval, emit):
    result = two_day_eval

    def compute():
        return received_loss_map(result.reports, result.sim.topology)

    points = benchmark.pedantic(compute, rounds=5, iterations=1)
    assert points

    top = top_loss_node(points)
    assert top.node == result.sink
    assert top.is_sink
    # the top handful of nodes carry the majority of in-node losses
    assert loss_share_of_top_nodes(points, 5) > 0.5
    # but other nodes do appear (in-node task failures are network-wide)
    assert len(points) > 10

    emit("fig8_spatial", render_spatial(points))
