"""Ablation A4 — path recovery: REFILL event flows vs PathZip-style digests
(paper §VI discussion of [9]).

PathZip stamps delivered packets with a path digest and searches the known
neighbor graph for a match; REFILL reconstructs paths from the logs.  The
structural difference the paper points at: PathZip covers **delivered**
packets only (lost packets never deliver their digest), while REFILL traces
lost packets too — which is the entire point of loss diagnosis.
"""

from repro.analysis.pipeline import evaluate, run_simulation
from repro.baselines.pathzip import PathZipRecovery, make_records
from repro.core.tracing import trace_packet
from repro.simnet.scenarios import citysee
from repro.util.tables import render_table

from benchmarks.conftest import bench_seed

PARAMS = citysee(n_nodes=80, days=2, seed=bench_seed("ablation-pathzip", 61))


def run_comparison():
    sim = run_simulation(PARAMS)
    result = evaluate(PARAMS, sim=sim)
    bs = frozenset({sim.base_station_node})
    true_paths = {
        packet: sim.truth.true_path(packet, exclude=bs)
        for packet in sim.truth.fates
    }
    delivered = set(sim.truth.delivered_packets())
    lost = set(sim.truth.lost_packets())

    # PathZip: digests exist only for delivered packets
    records = make_records({p: true_paths[p] for p in delivered})
    recovery = PathZipRecovery(sim.topology)
    pz = recovery.recover_all(records)
    pz_exact = sum(1 for p, path in pz.items() if path == true_paths[p])

    # REFILL: reconstructed paths from the lossy logs, all packets
    # (the base-station pseudo-node is not part of the radio path)
    def refill_path_score(packets):
        exact = prefix = scored = 0
        for packet in packets:
            flow = result.flows.get(packet)
            if flow is None:
                continue
            scored += 1
            got = [n for n in trace_packet(flow).path if n != sim.base_station_node]
            want = true_paths[packet]
            exact += got == want
            prefix += got == want[: len(got)]
        return scored, exact, prefix

    refill_delivered = refill_path_score(delivered)
    refill_lost = refill_path_score(lost)
    return {
        "delivered": len(delivered),
        "lost": len(lost),
        "pathzip_exact": pz_exact,
        "refill_delivered": refill_delivered,
        "refill_lost": refill_lost,
    }


def test_pathzip_comparison(benchmark, emit):
    scores = benchmark.pedantic(run_comparison, rounds=1, iterations=1)

    delivered, lost = scores["delivered"], scores["lost"]
    pz_exact = scores["pathzip_exact"]
    _, refill_dx, _ = scores["refill_delivered"]
    lost_scored, lost_exact, lost_prefix = scores["refill_lost"]

    # PathZip recovers delivered paths well (its home turf)
    assert pz_exact / delivered > 0.9
    # REFILL also recovers most delivered paths, from logs alone
    assert refill_dx / delivered > 0.75
    # the crossover: PathZip covers 0 lost packets; REFILL traces most,
    # and its partial paths are true prefixes (loss localization)
    assert lost > 0
    assert lost_scored / lost > 0.9
    assert lost_prefix / lost_scored > 0.75

    emit(
        "ablation_pathzip",
        render_table(
            ["method", "delivered paths exact", "lost packets traced"],
            [
                (
                    "PathZip-style",
                    f"{pz_exact}/{delivered}",
                    f"0/{lost} (no digest arrives)",
                ),
                (
                    "REFILL",
                    f"{refill_dx}/{delivered}",
                    f"{lost_exact} exact + {lost_prefix - lost_exact} true prefix / {lost_scored}",
                ),
            ],
            title="A4 — path recovery: PathZip digests vs REFILL event flows",
        ),
    )
