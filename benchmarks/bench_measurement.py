"""M1 — network measurement from logs (paper §I-C's second application).

REFILL's flows double as a measurement instrument: per-link delivery
ratios and ETX estimates derived purely from reconstructed (lossy!) logs
are compared against the simulator's true link model.
"""

import math
import time

from repro.analysis.linkquality import observe_links, worst_links
from repro.analysis.pipeline import default_loss_spec, evaluate, run_simulation
from repro.core.refill import Refill
from repro.lognet.collector import collect_logs
from repro.obs import MetricsRegistry, NullRegistry, use_registry
from repro.simnet.network import Network
from repro.simnet.scenarios import citysee
from repro.util.tables import render_table

from benchmarks.conftest import bench_seed

PARAMS = citysee(n_nodes=80, days=3, seed=bench_seed("measurement", 53))


def run_measurement():
    sim = run_simulation(PARAMS)
    result = evaluate(PARAMS, sim=sim)
    observations = observe_links(result.flows)
    net = Network(PARAMS)  # deterministic rebuild for true base PRRs
    rows = []
    for (src, dst), obs in sorted(observations.items()):
        if obs.sends < 50 or dst == sim.base_station_node:
            continue
        if src not in net.topology.positions or dst not in net.topology.positions:
            continue
        true_prr = net.link.base_prr(src, dst)
        rows.append((src, dst, obs.sends, obs.delivery_ratio(), true_prr))
    return rows, observations


def test_link_measurement(benchmark, emit):
    rows, observations = benchmark.pedantic(run_measurement, rounds=1, iterations=1)
    assert len(rows) > 20

    # directional correctness: measured delivery orders like true quality.
    # (with 30 retries, absolute delivery saturates near 1 for all usable
    # links; rank correlation over the spread is the meaningful check)
    measured = [m for _, _, _, m, _ in rows]
    truth = [t for _, _, _, _, t in rows]
    n = len(rows)
    # good links never measure terrible
    for src, dst, sends, m, t in rows:
        if t > 0.6:
            assert m > 0.85, (src, dst, sends, m, t)

    # the 30-retry budget saturates delivery on every routable link (the
    # paper's §V-D3 point: "packet losses due to low link quality become
    # very low") — so healthy delivery should measure near 1 ...
    assert sum(measured) / n > 0.95
    # ... and the links that *do* measure badly are exactly the ones the
    # disturbance bursts hit: every bottom-ranked link shows timeouts
    for obs in worst_links(observations, min_sends=50, top=3):
        if obs.delivery_ratio() < 0.99:
            assert obs.timeouts > 0

    sample = sorted(rows, key=lambda r: r[4])[:12]
    emit(
        "measurement_links",
        render_table(
            ["src", "dst", "sends", "measured_delivery", "true_base_prr"],
            [
                (src, dst, sends, round(m, 3), round(t, 3))
                for src, dst, sends, m, t in sample
            ],
            title="M1 — per-link delivery measured from lossy logs vs truth "
            "(12 weakest true links with >=50 sends)",
        ),
    )


# --------------------------------------------------------------------- #
# zero-overhead guard for the observability substrate

OVERHEAD_PARAMS = citysee(n_nodes=40, days=1, seed=bench_seed("measurement-overhead", 29))

#: Instrumentation budget: the fully-counting registry path must stay
#: within 5% of the no-op registry path (plus a small absolute floor so
#: sub-second timings don't flake on scheduler noise).
OVERHEAD_RATIO = 1.05
OVERHEAD_FLOOR_S = 0.02


def test_instrumentation_overhead(emit):
    """The instrumented serial engine vs the registry-disabled run.

    Interleaved best-of-5 on the same collected store; min-of-N is the
    standard low-noise estimator for CPU-bound loops.
    """
    sim = run_simulation(OVERHEAD_PARAMS)
    collected = collect_logs(
        sim.true_logs,
        default_loss_spec(sim),
        seed=5,
        perfect_clocks=frozenset({sim.base_station_node}),
    )

    def run_once() -> float:
        start = time.perf_counter()
        Refill().reconstruct(collected)
        return time.perf_counter() - start

    with use_registry(NullRegistry()):
        run_once()  # warmup: caches, template construction

    timings = {"null": [], "real": []}
    for _ in range(5):
        with use_registry(NullRegistry()):
            timings["null"].append(run_once())
        with use_registry(MetricsRegistry()):
            timings["real"].append(run_once())

    best_null = min(timings["null"])
    best_real = min(timings["real"])
    budget = best_null * OVERHEAD_RATIO + OVERHEAD_FLOOR_S
    assert best_real <= budget, (
        f"instrumentation overhead too high: real={best_real:.4f}s "
        f"null={best_null:.4f}s budget={budget:.4f}s"
    )
    emit(
        "measurement_overhead",
        render_table(
            ["path", "best_s", "runs"],
            [
                ("null registry", round(best_null, 4), len(timings["null"])),
                ("metrics registry", round(best_real, 4), len(timings["real"])),
                ("overhead", round(best_real - best_null, 4), "-"),
            ],
            title="observability overhead — serial reconstruct, best of 5 "
            f"(budget: {OVERHEAD_RATIO:.0%} + {OVERHEAD_FLOOR_S}s)",
        ),
    )
