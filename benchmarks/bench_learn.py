"""S4 — model learning: mining throughput and learned-model quality.

Two numbers the ``refill learn`` subsystem stands behind:

- **Mining throughput** — traces/s of the full learning pipeline
  (extract → k-tails → prerequisite stitching → spec packaging) over a
  lossless 25-node corpus.  Learning is an offline step, but it sits in
  the operator loop (learn, check, analyze, adjust ``--k``), so a 10×
  slowdown is a workflow regression worth gating.
- **Learned-model quality** — held-out reconstruction accuracy of the
  learned spec at ``k`` ∈ {1, 2, 3} on a lossy corpus the model never saw,
  plus bounded-depth graph precision/recall against the hand-written
  ground-truth template.  ``k=2`` is the default the contract tests pin;
  the sweep shows the generalization/size trade the flag buys.

The run writes ``BENCH_learn.json`` at the repo root (schema-stamped like
the other baselines); ``bench_history.py`` gates mining throughput and
the k=2 cause accuracy so a quality regression needs an attributed
trajectory entry to land.
"""

import json
import pathlib
import time

from repro.analysis.pipeline import run_simulation
from repro.learn import learn_from_logs
from repro.learn.evaluate import evaluate_spec
from repro.lognet.collector import collect_logs
from repro.lognet.loss import LogLossSpec
from repro.simnet.scenarios import small_network
from repro.util.tables import render_table

from benchmarks.conftest import BENCH_SCHEMA, bench_seed, run_metadata

BASELINE_PATH = pathlib.Path(__file__).parent.parent / "BENCH_learn.json"

N_NODES = 25
MINUTES = 30.0
ROUNDS = 3
HELDOUT_SEED = 777
LOSS_FACTOR = 0.5


def _best_of(fn, rounds=ROUNDS):
    best = None
    result = None
    for _ in range(rounds):
        start = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best = elapsed
    return best, result


def test_learn_throughput_and_quality(emit):
    params = small_network(n_nodes=N_NODES, minutes=MINUTES)
    sim = run_simulation(params)
    training_logs = collect_logs(
        sim.true_logs,
        LogLossSpec.lossless(),
        bench_seed("learn", 11),
        perfect_clocks=frozenset({sim.base_station_node}),
    )

    def learn(k=2):
        return learn_from_logs(
            training_logs,
            k=k,
            sink=sim.sink,
            base_station=sim.base_station_node,
            name="ctp-learned",
        )

    learn_s, spec = _best_of(learn)
    n_traces = spec.stats["traces"]
    traces_per_s = n_traces / learn_s

    rows = [
        ("learn (full pipeline)", n_traces, f"{learn_s:.4f}", int(traces_per_s)),
    ]
    accuracy = {}
    for k in (1, 2, 3):
        spec_k = spec if k == 2 else learn(k=k)
        evaluation = evaluate_spec(
            spec_k,
            params,
            heldout_seed=HELDOUT_SEED,
            loss_factor=LOSS_FACTOR,
            sim=sim,
        )
        summary = evaluation.summary()
        accuracy[f"k{k}"] = {
            "states": len(spec_k.states),
            "cause_accuracy": summary["cause_accuracy"],
            "coverage": summary["coverage"],
            "event_precision": summary["event_precision"],
            "event_recall": summary["event_recall"],
            "graph_precision": summary["graph_precision"],
            "graph_recall": summary["graph_recall"],
        }
        rows.append((
            f"held-out accuracy (k={k})",
            len(spec_k.states),
            f"{summary['cause_accuracy']:.4f}",
            f"gp={summary['graph_precision']:.2f}",
        ))

    emit(
        "bench_learn",
        render_table(
            ["operation", "n", "best_s / cause_acc", "per_s / detail"],
            rows,
            title=(
                f"S4 — learn pipeline, {N_NODES}-node corpus, "
                f"held-out loss×{LOSS_FACTOR} (best of {ROUNDS})"
            ),
        ),
    )

    corpus = {
        "n_nodes": N_NODES,
        "minutes": MINUTES,
        "traces": n_traces,
        "packets": spec.stats["packets"],
        "heldout_seed": HELDOUT_SEED,
        "loss_factor": LOSS_FACTOR,
    }
    baseline = {
        "schema": BENCH_SCHEMA,
        "run": run_metadata("learn", seed=bench_seed("learn", 11), corpus=corpus),
        "corpus": corpus,
        "mine": {
            "best_s": round(learn_s, 4),
            "traces_per_s": round(traces_per_s, 1),
        },
        "accuracy": accuracy,
    }
    BASELINE_PATH.write_text(json.dumps(baseline, indent=2, sort_keys=True) + "\n")

    # generous floors — the gate for real drift is bench_history's
    assert traces_per_s > 50
    assert accuracy["k2"]["cause_accuracy"] >= 0.9
    assert accuracy["k2"]["graph_precision"] == 1.0
