"""Shared fixtures for the figure/table benchmarks.

The paper evaluates one deployment dataset from many angles; likewise the
benchmarks share two simulated traces (session-scoped): the 30-day CitySee
scenario behind Figs. 6/9 and a 2-day higher-rate slice behind Figs. 4/5/8.

Each benchmark *prints* the rows/series its figure reports and also writes
them under ``benchmarks/out/`` (pytest captures stdout of passing tests, so
the files are the convenient place to read the reproduced figures).
"""

from __future__ import annotations

import pathlib
import platform
import re
import time

import pytest

from repro.analysis.pipeline import evaluate
from repro.obs import MetricsRegistry, use_registry
from repro.simnet.scenarios import citysee
from repro.util.rng import RngStreams

OUT_DIR = pathlib.Path(__file__).parent / "out"
METRICS_DIR = OUT_DIR / "metrics"

#: Master benchmark seed, set by ``--seed``.  ``None`` means "use the
#: published per-benchmark seeds" the reproduced figures were tuned on.
_MASTER_SEED: int | None = None


def pytest_addoption(parser):
    parser.addoption(
        "--seed",
        type=int,
        default=None,
        metavar="N",
        help=(
            "Master seed for every benchmark scenario; per-benchmark seeds "
            "are derived deterministically through RngStreams, so the same "
            "--seed reproduces the same workloads run-to-run.  Default: the "
            "published per-benchmark seeds."
        ),
    )
    parser.addoption(
        "--serve-shards",
        type=int,
        default=1,
        metavar="N",
        help=(
            "Shard count for the serve-layer benchmark: 1 (default) measures "
            "the single daemon, N>1 the router/worker cluster on the same "
            "corpus.  The count is stamped into BENCH_serve.json's run block "
            "so trajectory entries can attribute topology changes."
        ),
    )


#: Schema version stamped into every committed ``BENCH_*.json`` baseline.
#: ``bench_history.py`` keys its parsing on it; bump when the payload shape
#: changes.  (Version 1 is the unstamped pre-schema format.)
BENCH_SCHEMA = 2


def run_metadata(
    bench: str, *, seed: int, corpus: dict | None = None, **extra
) -> dict:
    """Provenance block for a ``BENCH_*.json`` baseline.

    Records what produced the numbers — the scenario seed, interpreter and
    platform, and the corpus shape — so a trajectory diff can distinguish
    "the code got slower" from "the workload or machine changed".  Extra
    keyword fields (e.g. ``shards=4``) are stamped verbatim.
    """
    meta: dict = {
        "bench": bench,
        "seed": seed,
        "python": platform.python_version(),
        "platform": platform.system().lower(),
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
    }
    if corpus is not None:
        meta["corpus"] = dict(corpus)
    meta.update(extra)
    return meta


def bench_seed(name: str, published: int) -> int:
    """The scenario seed for benchmark ``name``.

    With no ``--seed`` this is the published constant baked into the
    benchmark; with ``--seed N`` it is derived from the master seed via a
    named :class:`RngStreams` stream — distinct per benchmark, stable
    run-to-run.
    """
    if _MASTER_SEED is None:
        return published
    return RngStreams(_MASTER_SEED).stream(f"bench:{name}").randrange(2**31)


def pytest_configure(config):
    global _MASTER_SEED, THIRTY_DAY_PARAMS, TWO_DAY_PARAMS
    _MASTER_SEED = config.getoption("--seed", None)
    if _MASTER_SEED is not None:
        # Rebind the shared traces before collection imports any bench
        # module (``from benchmarks.conftest import THIRTY_DAY_PARAMS``
        # therefore sees the reseeded scenario).
        THIRTY_DAY_PARAMS = citysee(
            n_nodes=120, days=30, seed=bench_seed("thirty-day", 7)
        )
        TWO_DAY_PARAMS = citysee(
            n_nodes=120,
            days=2,
            packets_per_node_per_day=48,
            seed=bench_seed("two-day", 11),
            sink_fix_day=None,
        )


@pytest.fixture(scope="session")
def serve_shards(request):
    value = request.config.getoption("--serve-shards")
    if value < 1:
        raise pytest.UsageError("--serve-shards must be >= 1")
    return value


@pytest.fixture(autouse=True)
def bench_metrics(request):
    """Every bench run records into its own registry; the snapshot lands
    next to the timing output (``benchmarks/out/metrics/<test>.metrics.json``).

    This is the per-stage cost accounting future perf PRs report against:
    the counters say how much work a figure's pipeline did, the span
    histograms say where its wall-time went.
    """
    registry = MetricsRegistry()
    with use_registry(registry):
        yield registry
    METRICS_DIR.mkdir(parents=True, exist_ok=True)
    name = re.sub(r"[^A-Za-z0-9_.-]+", "_", request.node.name)
    path = METRICS_DIR / f"{name}.metrics.json"
    path.write_text(registry.snapshot().to_json_str() + "\n")

#: Scaled CitySee used by Figs. 6 and 9 (30 days, snow on 8-9, sink fixed
#: after day 23, server outages).
THIRTY_DAY_PARAMS = citysee(n_nodes=120, days=30, seed=7)

#: Two-day higher-rate slice used by Figs. 4, 5 and 8 (no snow, sink never
#: fixed — matching the paper's early-deployment window).
TWO_DAY_PARAMS = citysee(
    n_nodes=120, days=2, packets_per_node_per_day=48, seed=11, sink_fix_day=None
)


@pytest.fixture(scope="session")
def thirty_day_eval():
    return evaluate(THIRTY_DAY_PARAMS)


@pytest.fixture(scope="session")
def two_day_eval():
    return evaluate(TWO_DAY_PARAMS)


@pytest.fixture(scope="session")
def emit():
    """Print a rendered figure/table and persist it under benchmarks/out/."""
    OUT_DIR.mkdir(exist_ok=True)

    def _emit(name: str, text: str) -> None:
        print(f"\n{text}\n")
        (OUT_DIR / f"{name}.txt").write_text(text + "\n")

    return _emit
