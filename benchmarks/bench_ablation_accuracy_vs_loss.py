"""Ablation A1 — reconstruction accuracy vs log-loss severity.

The paper's deployment had no ground truth; the simulator does.  Sweeping
the log-degradation severity shows REFILL recovering most lost events at
moderate loss and degrading gracefully — with near-perfect precision
throughout (inferred events are almost never wrong, they just become fewer
recoverable).
"""

from repro.analysis.accuracy import score_run
from repro.analysis.pipeline import evaluate, run_simulation
from repro.lognet.loss import LogLossSpec
from repro.simnet.scenarios import citysee
from repro.util.tables import render_table

from benchmarks.conftest import bench_seed

PARAMS = citysee(n_nodes=80, days=3, seed=bench_seed("ablation-accuracy-vs-loss", 21))

#: record-loss sweep: same relative mix as the default spec, scaled
SEVERITIES = (0.0, 0.1, 0.25, 0.4, 0.6)


def spec_for(sim, severity: float) -> LogLossSpec:
    return LogLossSpec(
        write_fail_p=severity,
        chunk_loss_p=severity / 2,
        node_loss_p=severity / 10,
        immune=frozenset({sim.base_station_node}),
    )


def sweep():
    sim = run_simulation(PARAMS)
    rows = []
    for severity in SEVERITIES:
        result = evaluate(PARAMS, sim=sim, loss_spec=spec_for(sim, severity))
        acc = score_run(
            result.flows, result.reports, result.collected_logs, sim.truth, sink=sim.sink
        )
        rows.append((severity, acc))
    return rows


def test_accuracy_vs_log_loss(benchmark, emit):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    by_severity = dict(rows)
    # lossless: nothing to infer, everything right
    assert by_severity[0.0].cause_accuracy > 0.97
    assert by_severity[0.0].event_recall == 1.0
    # moderate loss: most lost events recovered, causes still right
    assert by_severity[0.1].event_recall > 0.7
    assert by_severity[0.1].cause_accuracy > 0.93
    # precision stays high across the sweep (REFILL does not hallucinate);
    # at extreme loss some inferred receives lose their sender attribution
    # (src unknown) and stop matching exactly, hence the looser floor
    for severity, acc in rows:
        assert acc.event_precision > (0.9 if severity <= 0.25 else 0.75), severity
    # graceful degradation: accuracy decreases monotonically-ish, no cliff
    accuracies = [acc.cause_accuracy for _, acc in rows]
    assert accuracies[-1] > 0.5
    assert all(b <= a + 0.03 for a, b in zip(accuracies, accuracies[1:]))

    emit(
        "ablation_accuracy_vs_loss",
        render_table(
            [
                "record_loss", "coverage", "cause_acc", "position_acc",
                "event_precision", "event_recall", "ordering_acc",
            ],
            [
                (
                    severity,
                    round(acc.coverage, 3),
                    round(acc.cause_accuracy, 3),
                    round(acc.position_accuracy, 3),
                    round(acc.event_precision, 3),
                    round(acc.event_recall, 3),
                    round(acc.ordering_accuracy, 3),
                )
                for severity, acc in rows
            ],
            title="A1 — REFILL accuracy vs log-loss severity (vs ground truth)",
        ),
    )
