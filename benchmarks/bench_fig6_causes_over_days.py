"""Fig. 6 — percentage of different causes over 30 days.

The paper's observations: acked and received losses are the two most common
causes; losses spike on the snow days (9-10); after the sink was replaced
(day 23) losses drop significantly.
"""

from repro.analysis.causes import daily_composition, daily_loss_totals
from repro.analysis.report import render_daily_composition
from repro.core.diagnosis import LossCause
from repro.simnet.scenarios import DAY

from benchmarks.conftest import THIRTY_DAY_PARAMS

N_DAYS = int(THIRTY_DAY_PARAMS.duration / DAY)
SNOW_DAYS = (8, 9)
FIX_DAY = 23


def test_fig6_causes_over_days(benchmark, thirty_day_eval, emit):
    result = thirty_day_eval

    def compute():
        return daily_composition(
            result.reports, result.est_loss_times, day_seconds=DAY, n_days=N_DAYS
        )

    days = benchmark.pedantic(compute, rounds=5, iterations=1)
    totals = daily_loss_totals(days)
    assert len(days) == N_DAYS

    # acked + received dominate overall
    overall = {}
    for day in days:
        for cause, count in day.items():
            overall[cause] = overall.get(cause, 0) + count
    dominant = sorted(overall, key=lambda c: -overall[c])[:3]
    assert LossCause.ACKED_LOSS in dominant
    assert LossCause.RECEIVED_LOSS in dominant

    # snow days spike vs the surrounding normal days
    normal_days = [t for d, t in enumerate(totals) if d not in SNOW_DAYS and d < FIX_DAY]
    normal = sum(normal_days) / len(normal_days)
    snow = sum(totals[d] for d in SNOW_DAYS) / len(SNOW_DAYS)
    assert snow > 1.3 * normal

    # the sink fix slashes losses
    before = sum(totals[:FIX_DAY]) / FIX_DAY
    after = sum(totals[FIX_DAY:]) / (N_DAYS - FIX_DAY)
    assert after < 0.6 * before

    emit(
        "fig6_causes_over_days",
        render_daily_composition(
            days,
            title=(
                "Fig.6 — per-day loss composition "
                f"(snow days {SNOW_DAYS}: {snow:.0f}/day vs normal {normal:.0f}/day; "
                f"after sink fix day {FIX_DAY}: {after:.0f}/day vs before {before:.0f}/day)"
            ),
        ),
    )
