"""Perf-regression gate over committed ``BENCH_*.json`` baselines.

The repo commits performance baselines (``BENCH_serve.json``,
``BENCH_backends.json``) and, under ``benchmarks/baselines/``, the previous
PR's copies.  This module diffs two such snapshots metric by metric against
per-metric thresholds and keeps the **trajectory** — one JSON-Lines file per
bench under ``benchmarks/history/`` recording every accepted change with a
human note attributing it.

Two subcommands::

    python benchmarks/bench_history.py compare BASELINE CURRENT [--bench b]
    python benchmarks/bench_history.py record  BASELINE CURRENT --note "..."

``compare`` exits 1 when any gated metric regressed past its threshold —
the CI gate: an *unattributed* regression (current snapshot worse than the
committed baseline, no recorded note) fails the build.  ``record`` appends
a trajectory entry (deltas + note) and is how a regression is attributed:
land the note and refresh the baseline in the same commit, and ``compare``
is green again.

Thresholds are deliberately loose (30-60% relative) because the committed
numbers come from whatever machine cut the PR; the gate exists to catch
"ingest got 2x slower and nobody said why", not 5% jitter.  Tight bounds
live in the benchmarks' own assertions, which always run on one machine.

Snapshots are schema-stamped (``conftest.BENCH_SCHEMA``); unstamped files
are read as schema 1 — the pre-stamp format with the same metric paths —
so the gate can diff this PR's output against older baselines.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time
from dataclasses import dataclass
from typing import Any, Optional

#: Newest snapshot schema this module understands.
SUPPORTED_SCHEMA = 2

HISTORY_DIR = pathlib.Path(__file__).parent / "history"


@dataclass(frozen=True)
class MetricSpec:
    """One gated metric: where it lives and how much drift is tolerated."""

    #: Dotted path into the snapshot, e.g. ``ingest.lines_per_s``.
    path: str
    #: ``higher`` — bigger is better (throughput); ``lower`` — smaller is
    #: better (latency).
    direction: str
    #: Relative drift in the *bad* direction that counts as a regression.
    tolerance: float

    def __post_init__(self) -> None:
        if self.direction not in ("higher", "lower"):
            raise ValueError(f"bad direction {self.direction!r}")
        if self.tolerance <= 0:
            raise ValueError("tolerance must be positive")


#: The gated metrics per bench.  Counts/corpus fields are provenance, not
#: performance — only rates and latencies are gated.
METRIC_SPECS: dict[str, tuple[MetricSpec, ...]] = {
    "serve": (
        MetricSpec("ingest.lines_per_s", "higher", 0.40),
        MetricSpec("query_seconds.flows.p95", "lower", 0.60),
        MetricSpec("query_seconds.flow.p95", "lower", 0.60),
        MetricSpec("query_seconds.summary.p95", "lower", 0.60),
    ),
    "backends": (
        MetricSpec("backends.serial.packets_per_s", "higher", 0.40),
        MetricSpec("backends.serial+stream.packets_per_s", "higher", 0.40),
    ),
    "decode": (
        MetricSpec("tokenize.lines_per_s", "higher", 0.40),
        MetricSpec("reachability.lookups_per_s", "higher", 0.40),
    ),
    "learn": (
        MetricSpec("mine.traces_per_s", "higher", 0.40),
        MetricSpec("accuracy.k2.cause_accuracy", "higher", 0.10),
    ),
}


@dataclass(frozen=True)
class Delta:
    """One metric's movement between two snapshots."""

    metric: str
    baseline: Optional[float]
    current: Optional[float]
    #: current/baseline (``None`` when either side is missing or zero).
    ratio: Optional[float]
    regressed: bool
    improved: bool

    def to_json(self) -> dict:
        return {
            "metric": self.metric,
            "baseline": self.baseline,
            "current": self.current,
            "ratio": self.ratio,
            "regressed": self.regressed,
            "improved": self.improved,
        }


def load_snapshot(path) -> dict:
    """Read a ``BENCH_*.json`` file, normalizing schema-less files to v1."""
    data = json.loads(pathlib.Path(path).read_text())
    if not isinstance(data, dict):
        raise ValueError(f"{path}: snapshot must be a JSON object")
    schema = data.get("schema", 1)
    if not isinstance(schema, int) or schema < 1 or schema > SUPPORTED_SCHEMA:
        raise ValueError(f"{path}: unsupported snapshot schema {schema!r}")
    data.setdefault("schema", schema)
    return data


def metric_value(snapshot: dict, path: str) -> Optional[float]:
    """Resolve a dotted metric path; ``None`` when any hop is missing."""
    node: Any = snapshot
    for part in path.split("."):
        if not isinstance(node, dict) or part not in node:
            return None
        node = node[part]
    if isinstance(node, bool) or not isinstance(node, (int, float)):
        return None
    return float(node)


def diff_metric(spec: MetricSpec, baseline: dict, current: dict) -> Delta:
    base = metric_value(baseline, spec.path)
    cur = metric_value(current, spec.path)
    if base is None or cur is None or base == 0:
        # a metric appearing or vanishing is attribution territory, not a
        # hard failure — the gate cares about measured drift
        return Delta(spec.path, base, cur, None, regressed=False, improved=False)
    ratio = cur / base
    if spec.direction == "higher":
        regressed = ratio < 1.0 - spec.tolerance
        improved = ratio > 1.0 + spec.tolerance
    else:
        regressed = ratio > 1.0 + spec.tolerance
        improved = ratio < 1.0 - spec.tolerance
    return Delta(spec.path, base, cur, ratio, regressed=regressed, improved=improved)


def diff_snapshots(
    baseline: dict, current: dict, bench: str
) -> list[Delta]:
    specs = METRIC_SPECS.get(bench)
    if specs is None:
        raise ValueError(
            f"unknown bench {bench!r} (known: {', '.join(sorted(METRIC_SPECS))})"
        )
    return [diff_metric(spec, baseline, current) for spec in specs]


def infer_bench(path, explicit: Optional[str]) -> str:
    """Bench name from ``--bench``, the snapshot stem, or its run stamp."""
    if explicit is not None:
        return explicit
    stem = pathlib.Path(path).stem
    if stem.startswith("BENCH_"):
        return stem[len("BENCH_"):]
    raise ValueError(f"cannot infer bench name from {path!r}; pass --bench")


def render_deltas(deltas: list[Delta]) -> str:
    lines = []
    for delta in deltas:
        if delta.ratio is None:
            state = "no-data"
            detail = f"baseline={delta.baseline} current={delta.current}"
        else:
            state = (
                "REGRESSED" if delta.regressed
                else "improved" if delta.improved
                else "ok"
            )
            detail = (
                f"baseline={delta.baseline:g} current={delta.current:g} "
                f"ratio={delta.ratio:.3f}"
            )
        lines.append(f"{state:>9}  {delta.metric}  {detail}")
    return "\n".join(lines)


def history_path(bench: str) -> pathlib.Path:
    return HISTORY_DIR / f"{bench}.jsonl"


def append_history(
    bench: str, deltas: list[Delta], note: str, *, path=None
) -> pathlib.Path:
    """Append one trajectory entry (the attribution record)."""
    target = pathlib.Path(path) if path is not None else history_path(bench)
    target.parent.mkdir(parents=True, exist_ok=True)
    entry = {
        "bench": bench,
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "note": note,
        "deltas": [delta.to_json() for delta in deltas],
        "regressions": sum(1 for delta in deltas if delta.regressed),
        "improvements": sum(1 for delta in deltas if delta.improved),
    }
    with target.open("a") as fh:
        fh.write(json.dumps(entry, sort_keys=True) + "\n")
    return target


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="bench_history", description=__doc__.split("\n", 1)[0]
    )
    sub = parser.add_subparsers(dest="cmd", required=True)

    p_cmp = sub.add_parser("compare", help="diff two snapshots; exit 1 on regression")
    p_cmp.add_argument("baseline")
    p_cmp.add_argument("current")
    p_cmp.add_argument("--bench", default=None)
    p_cmp.add_argument("--json", action="store_true", help="machine-readable output")

    p_rec = sub.add_parser("record", help="append an attributed trajectory entry")
    p_rec.add_argument("baseline")
    p_rec.add_argument("current")
    p_rec.add_argument("--bench", default=None)
    p_rec.add_argument("--note", required=True, help="what explains the deltas")
    p_rec.add_argument("--history", default=None, metavar="FILE")

    args = parser.parse_args(argv)
    bench = infer_bench(args.current, args.bench)
    deltas = diff_snapshots(
        load_snapshot(args.baseline), load_snapshot(args.current), bench
    )

    if args.cmd == "compare":
        if args.json:
            print(json.dumps([d.to_json() for d in deltas], sort_keys=True))
        else:
            print(render_deltas(deltas))
        regressions = [d for d in deltas if d.regressed]
        if regressions:
            print(
                f"\n{len(regressions)} unattributed regression(s) vs {args.baseline};"
                " attribute with `bench_history.py record --note ...` and refresh"
                " the baseline",
                file=sys.stderr,
            )
            return 1
        return 0

    target = append_history(bench, deltas, args.note, path=args.history)
    print(render_deltas(deltas))
    print(f"\nrecorded -> {target}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
