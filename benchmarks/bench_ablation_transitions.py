"""Ablation A3 — switching off intra-node / inter-node transitions.

DESIGN.md calls out the two transition kinds as the design's load-bearing
pieces; this ablation quantifies each: without inter-node prerequisites no
lost events are recovered at all, and without intra-node jumps engines
stall on the first gap.
"""

from repro.analysis.accuracy import score_run
from repro.analysis.pipeline import evaluate, run_simulation
from repro.core.refill import RefillOptions
from repro.simnet.scenarios import citysee
from repro.util.tables import render_table

from benchmarks.conftest import bench_seed

PARAMS = citysee(n_nodes=80, days=3, seed=bench_seed("ablation-transitions", 41))

VARIANTS = {
    "full REFILL": RefillOptions(),
    "no intra-node": RefillOptions(enable_intra=False),
    "no inter-node": RefillOptions(enable_inter=False),
    "neither": RefillOptions(enable_intra=False, enable_inter=False),
}


def sweep():
    sim = run_simulation(PARAMS)
    rows = {}
    for name, options in VARIANTS.items():
        result = evaluate(PARAMS, sim=sim, refill_options=options)
        acc = score_run(
            result.flows, result.reports, result.collected_logs, sim.truth, sink=sim.sink
        )
        omitted = sum(len(f.omitted) for f in result.flows.values())
        inferred = sum(len(f.inferred_events()) for f in result.flows.values())
        rows[name] = (acc, inferred, omitted)
    return rows


def test_transition_ablation(benchmark, emit):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    full, full_inferred, _ = rows["full REFILL"]
    no_inter, ni_inferred, _ = rows["no inter-node"]
    no_intra, _, intra_omitted = rows["no intra-node"]
    neither, n_inferred, _ = rows["neither"]

    # inter-node transitions carry the lost-event recovery
    assert full.event_recall > no_inter.event_recall + 0.3
    assert n_inferred == 0
    # intra-node jumps keep engines moving past gaps: without them events
    # get omitted and accuracy drops
    assert intra_omitted > 0
    assert full.cause_accuracy >= no_intra.cause_accuracy
    assert full.cause_accuracy > neither.cause_accuracy

    emit(
        "ablation_transitions",
        render_table(
            ["variant", "cause_acc", "event_recall", "inferred_events", "omitted_events"],
            [
                (
                    name,
                    round(acc.cause_accuracy, 3),
                    round(acc.event_recall, 3),
                    inferred,
                    omitted,
                )
                for name, (acc, inferred, omitted) in rows.items()
            ],
            title="A3 — intra-/inter-node transition ablation",
        ),
    )
