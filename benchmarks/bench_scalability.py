"""S1 — analysis throughput vs network size.

REFILL is an offline analyzer; what matters operationally is that
reconstruction scales linearly in the number of logged events (per-packet
engines are independent).  The benchmark measures reconstruction throughput
across network sizes and checks per-event cost stays roughly flat.
"""

from repro.analysis.pipeline import default_loss_spec, run_simulation
from repro.core.refill import Refill
from repro.lognet.collector import collect_logs
from repro.simnet.scenarios import citysee
from repro.util.tables import render_table

from benchmarks.conftest import bench_seed

SIZES = (40, 80, 160)


def prepare(n_nodes):
    params = citysee(n_nodes=n_nodes, days=1, seed=bench_seed("scalability", 51))
    sim = run_simulation(params)
    logs = collect_logs(
        sim.true_logs,
        default_loss_spec(sim),
        seed=5,
        perfect_clocks=frozenset({sim.base_station_node}),
    )
    events = sum(len(log) for log in logs.values())
    return logs, events


def test_reconstruction_scalability(benchmark, emit):
    import time

    rows = []
    for n_nodes in SIZES:
        logs, events = prepare(n_nodes)
        refill = Refill()
        start = time.perf_counter()
        flows = refill.reconstruct(logs)
        elapsed = time.perf_counter() - start
        rows.append((n_nodes, events, len(flows), elapsed, events / elapsed))

    # benchmark the largest size for the timing table
    logs, events = prepare(SIZES[-1])
    benchmark.pedantic(lambda: Refill().reconstruct(logs), rounds=3, iterations=1)

    # throughput stays in the same ballpark across sizes (no superlinear blowup)
    rates = [rate for *_, rate in rows]
    assert max(rates) < 5 * min(rates)
    assert min(rates) > 5_000  # events/second, generous floor

    emit(
        "scalability",
        render_table(
            ["n_nodes", "log_events", "packets", "seconds", "events_per_s"],
            [
                (n, e, p, round(t, 2), int(r))
                for n, e, p, t, r in rows
            ],
            title="S1 — REFILL reconstruction throughput vs network size",
        ),
    )


def test_parallel_reconstruction(benchmark, emit):
    """S1b — per-packet independence makes reconstruction parallel.

    Correctness parity is asserted; speedup depends on host cores and is
    reported, not asserted (CI machines vary).
    """
    import os
    import time

    from repro.core.parallel import ParallelRefill

    logs, events = prepare(SIZES[-1])
    serial_start = time.perf_counter()
    serial_flows = Refill().reconstruct(logs)
    serial_elapsed = time.perf_counter() - serial_start

    workers = min(4, os.cpu_count() or 1)
    parallel = ParallelRefill(workers=workers, min_packets=1)
    parallel_flows = benchmark.pedantic(
        lambda: parallel.reconstruct(logs), rounds=3, iterations=1
    )

    assert {p: f.labels() for p, f in parallel_flows.items()} == {
        p: f.labels() for p, f in serial_flows.items()
    }

    parallel_start = time.perf_counter()
    parallel.reconstruct(logs)
    parallel_elapsed = time.perf_counter() - parallel_start
    emit(
        "scalability_parallel",
        render_table(
            ["variant", "seconds", "events_per_s"],
            [
                ("serial", round(serial_elapsed, 2), int(events / serial_elapsed)),
                (
                    f"parallel x{workers}",
                    round(parallel_elapsed, 2),
                    int(events / parallel_elapsed),
                ),
            ],
            title="S1b — serial vs multi-process reconstruction "
            f"({events} log events)",
        ),
    )
