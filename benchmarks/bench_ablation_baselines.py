"""Ablation A2 — REFILL vs the related-work baselines on the same logs.

- Wit-style merging finds no common events in individual logs (paper §VI);
- NetCheck-style per-node replay misattributes losses (the §III naive rule);
- time-correlation diagnosis collapses co-occurring causes (§V-D2);
- REFILL dominates on cause and position accuracy.

The scoring lives in :mod:`repro.analysis.comparison`; the benchmark runs
it on a fixed trace and asserts the ordering.
"""

from repro.analysis.comparison import compare_analyzers
from repro.analysis.pipeline import evaluate, run_simulation
from repro.simnet.scenarios import citysee

from benchmarks.conftest import bench_seed

PARAMS = citysee(n_nodes=80, days=3, seed=bench_seed("ablation-baselines", 31))


def run_comparison():
    sim = run_simulation(PARAMS)
    result = evaluate(PARAMS, sim=sim)
    return compare_analyzers(result)


def test_baseline_comparison(benchmark, emit):
    comparison = benchmark.pedantic(run_comparison, rounds=1, iterations=1)

    refill = comparison.by_name("REFILL")
    netcheck = comparison.by_name("NetCheck-style")
    correlation = comparison.by_name("time-correlation")

    # REFILL strictly dominates both baselines on both axes
    assert refill.cause_accuracy > netcheck.cause_accuracy + 0.1
    assert refill.cause_accuracy > correlation.cause_accuracy + 0.1
    assert refill.position_accuracy > netcheck.position_accuracy + 0.1
    assert refill.position_accuracy > correlation.position_accuracy + 0.1
    assert comparison.refill_dominates(margin=0.1)
    # Wit cannot merge individual logs at all
    assert comparison.wit_mergeable_fraction == 0.0

    emit("ablation_baselines", comparison.render())
