"""Table II — the paper's four lossy-log cases, reproduced verbatim.

Benchmarks the per-packet reconstruction on the exact inputs of Table II
and asserts the outputs quoted in §IV-C, bracketed inferred events
included.
"""

from repro.core.refill import Refill
from repro.events.event import Event, EventType
from repro.events.log import NodeLog
from repro.events.packet import PacketKey
from repro.fsm.templates import forwarder_template
from repro.util.tables import render_table

PKT = PacketKey(1, 0)


def ev(etype, node, src, dst):
    return Event.make(etype, node, src=src, dst=dst, packet=PKT)


def trans(a, b):
    return ev(EventType.TRANS, a, a, b)


def ack(a, b):
    return ev(EventType.ACK, a, a, b)


def recv(a, b):
    return ev(EventType.RECV, b, a, b)


CASES = {
    "complete": {
        1: [trans(1, 2), ack(1, 2)],
        2: [recv(1, 2), trans(2, 3), ack(2, 3)],
        3: [recv(2, 3)],
    },
    "case1": {1: [trans(1, 2)], 3: [recv(2, 3)]},
    "case2": {1: [trans(1, 2), ack(1, 2)]},
    "case3": {1: [ack(1, 2), trans(1, 2)]},
    "case4": {
        1: [trans(1, 2), ack(1, 2), recv(3, 1), trans(1, 2), ack(1, 2)],
        2: [recv(1, 2), trans(2, 3), ack(2, 3), trans(2, 3)],
        3: [recv(2, 3), trans(3, 1), ack(3, 1)],
    },
}

# §IV-C quoted outputs (case 4 checked as a multiset + ordering facts in
# tests/; here the stable deterministic linearization is snapshotted).
EXPECTED = {
    "case1": ["1-2 trans", "[1-2 recv]", "[2-3 trans]", "2-3 recv"],
    "case2": ["1-2 trans", "[1-2 recv]", "1-2 ack recvd"],
    "case3": ["[1-2 trans]", "[1-2 recv]", "1-2 ack recvd", "1-2 trans"],
}


def reconstruct_all():
    refill = Refill(forwarder_template(with_gen=False))
    return {
        name: refill.reconstruct({n: NodeLog(n, evs) for n, evs in logs.items()})[PKT]
        for name, logs in CASES.items()
    }


def test_table2_reconstruction(benchmark, emit):
    flows = benchmark.pedantic(reconstruct_all, rounds=20, iterations=1)

    for name, expected in EXPECTED.items():
        assert flows[name].labels() == expected, name
    assert flows["complete"].inferred_events() == []
    case4 = flows["case4"]
    assert sorted(case4.labels()) == sorted(
        [
            "1-2 trans", "1-2 recv", "1-2 ack recvd",
            "2-3 trans", "2-3 recv", "2-3 ack recvd",
            "3-1 trans", "3-1 recv", "3-1 ack recvd",
            "1-2 trans", "[1-2 recv]", "1-2 ack recvd",
            "2-3 trans",
        ]
    )

    emit(
        "table2",
        render_table(
            ["case", "reconstructed event flow (inferred in brackets)"],
            [(name, flows[name].format()) for name in CASES],
            title="Table II — reconstructed flows",
        ),
    )
