"""Fig. 5 — causes for lost packets by loss position (REFILL's view).

The paper's observations: "though the sources of lost packets are evenly
distributed, the loss positions are on a small portion of nodes"; the sink
band sits on top ("a lot of received losses on the sink node"); timeout and
duplicated losses come in bursts (the ellipses).
"""

from repro.analysis.report import render_scatter_summary
from repro.analysis.temporal import (
    burstiness,
    concentration_gini,
    loss_scatter,
    per_node_loss_counts,
)
from repro.core.diagnosis import LossCause
from repro.simnet.scenarios import DAY


def test_fig5_loss_positions(benchmark, two_day_eval, emit):
    result = two_day_eval

    def compute():
        by_source = loss_scatter(result.reports, result.est_loss_times, axis="source")
        by_position = loss_scatter(result.reports, result.est_loss_times, axis="position")
        return by_source, by_position

    by_source, by_position = benchmark.pedantic(compute, rounds=5, iterations=1)
    nodes = result.sim.topology.nodes

    source_gini = concentration_gini(per_node_loss_counts(by_source, nodes))
    position_counts = per_node_loss_counts(by_position, nodes)
    position_gini = concentration_gini(position_counts)
    # the paper's headline asymmetry
    assert position_gini > source_gini + 0.2

    # the sink band: the sink is the single biggest loss position
    sink = result.sink
    assert position_counts[sink] == max(position_counts.values())
    assert position_counts[sink] > 0.3 * sum(position_counts.values())

    # bursty minority causes (the figure's ellipses)
    for cause in (LossCause.TIMEOUT_LOSS, LossCause.DUP_LOSS):
        n = sum(1 for _, _, c in by_position if c is cause)
        if n >= 5:
            assert burstiness(by_position, cause, window=DAY / 24, top_k=3) > 0.4

    emit(
        "fig5_loss_positions",
        render_scatter_summary(
            by_position,
            window=DAY / 12,
            title=(
                "Fig.5 — REFILL loss positions per 2h window by cause "
                f"(position gini={position_gini:.2f} vs source gini="
                f"{source_gini:.2f}; sink carries "
                f"{position_counts[sink]}/{sum(position_counts.values())})"
            ),
        ),
    )
