"""§V-D — the paper's implications, quantified on the 30-day trace.

The paper draws five design lessons from REFILL's output (whose-vs-where,
correlation limitations, node vs link losses, the last mile, the ACK
mechanism); this benchmark computes each and asserts the CitySee
pathologies are present in the reproduced deployment.
"""

from repro.analysis.implications import check_citysee_pathologies, derive_implications
from repro.simnet.scenarios import DAY
from repro.util.tables import render_table


def test_implications(benchmark, thirty_day_eval, emit):
    result = thirty_day_eval

    def compute():
        return derive_implications(
            result.reports,
            result.est_loss_times,
            nodes=result.sim.topology.nodes,
            sink=result.sink,
            window=DAY / 12,
        )

    implications = benchmark.pedantic(compute, rounds=3, iterations=1)
    verdicts = check_citysee_pathologies(implications)

    # §V-D1: whose vs where
    assert verdicts["positions_concentrate_vs_sources"]
    # §V-D2: correlation-based methods face co-occurring causes
    assert verdicts["causes_cooccur"]
    # §V-D3: node losses dominate link losses under 30-retry MAC
    assert verdicts["node_losses_dominate_link_losses"]
    # §V-D4: the last mile matters
    assert verdicts["last_mile_is_significant"]
    # §V-D5: hardware acks overpromise
    assert verdicts["hardware_acks_overpromise"]

    emit(
        "implications",
        render_table(
            ["implication (§V-D)", "measured"],
            implications.rows(),
            title="§V-D — design implications, quantified",
        ),
    )
