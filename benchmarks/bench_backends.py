"""S2 — execution backends: throughput and peak memory per strategy.

The session layer promises backend-independent *results*; this benchmark
records the backend-dependent *costs*: packets/second per backend and the
peak working set of full-materialization vs streaming reconstruction.  The
streaming row demonstrates the bounded-batch path end to end: groups are
materialized at most ``batch_size`` at a time (asserted), at the price of
re-scanning the corpus once per key window.
"""

import json
import pathlib
import resource
import time
import tracemalloc

from repro.analysis.pipeline import default_loss_spec, run_simulation
from repro.core.backends import ProcessPoolBackend, SerialBackend
from repro.core.session import ReconstructionSession
from repro.events.merge import iter_packet_groups
from repro.lognet.collector import collect_logs
from repro.simnet.scenarios import citysee
from repro.util.tables import render_table

from benchmarks.conftest import BENCH_SCHEMA, bench_seed, run_metadata

BASELINE_PATH = pathlib.Path(__file__).parent.parent / "BENCH_backends.json"


def prepare(n_nodes=120, days=1, seed=None):
    if seed is None:
        seed = bench_seed("backends", 51)
    params = citysee(n_nodes=n_nodes, days=days, seed=seed)
    sim = run_simulation(params)
    logs = collect_logs(
        sim.true_logs,
        default_loss_spec(sim),
        seed=5,
        perfect_clocks=frozenset({sim.base_station_node}),
    )
    return logs


def timed(fn):
    """(result, wall seconds, python peak bytes) for one call."""
    tracemalloc.start()
    start = time.perf_counter()
    result = fn()
    elapsed = time.perf_counter() - start
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return result, elapsed, peak


def test_backend_throughput(emit):
    logs = prepare()
    runs = {
        "serial": lambda: ReconstructionSession(
            backend=SerialBackend()
        ).reconstruct(logs),
        "process(2)": lambda: ReconstructionSession(
            backend=ProcessPoolBackend(workers=2, min_packets=1), batch_size=100
        ).reconstruct(logs),
        "serial+stream": lambda: ReconstructionSession(
            backend=SerialBackend(), stream=True, batch_size=64
        ).reconstruct(logs),
    }
    rows = []
    baseline = None
    measured: dict[str, dict] = {}
    for name, fn in runs.items():
        flows, elapsed, peak = timed(fn)
        if baseline is None:
            baseline = {p: f.labels() for p, f in flows.items()}
        else:  # cost table only makes sense over identical work
            assert {p: f.labels() for p, f in flows.items()} == baseline, name
        measured[name] = {
            "packets": len(flows),
            "seconds": round(elapsed, 4),
            "packets_per_s": round(len(flows) / elapsed, 1),
            "py_peak_mb": round(peak / 1e6, 2),
        }
        rows.append(
            (
                name,
                len(flows),
                f"{elapsed:.3f}",
                f"{len(flows) / elapsed:.0f}",
                f"{peak / 1e6:.1f}",
            )
        )
    rss_mb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024
    table = render_table(
        ["backend", "packets", "wall_s", "pkt_per_s", "py_peak_MB"], rows
    )
    emit("bench_backends", table + f"\nprocess ru_maxrss {rss_mb:.0f} MB")

    corpus = {"n_nodes": 120, "days": 1, "packets": len(baseline)}
    BASELINE_PATH.write_text(
        json.dumps(
            {
                "schema": BENCH_SCHEMA,
                "run": run_metadata(
                    "backends", seed=bench_seed("backends", 51), corpus=corpus
                ),
                "corpus": corpus,
                "backends": measured,
            },
            indent=2,
            sort_keys=True,
        )
        + "\n"
    )


def test_streaming_bounds_group_materialization():
    """The streaming path must never hold more than batch_size groups."""
    logs = prepare(n_nodes=60)
    batch_size = 32
    peak_groups = 0
    total = 0
    for batch in iter_packet_groups(logs, batch_size=batch_size):
        peak_groups = max(peak_groups, len(batch))
        total += len(batch)
    assert peak_groups <= batch_size
    assert total > batch_size  # the corpus genuinely exceeded one window


def test_streaming_peak_memory_below_full_grouping(emit):
    """Bounded batching keeps the grouping working set well under the
    one-pass full grouping on the same corpus."""
    from repro.events.merge import group_by_packet

    logs = prepare(n_nodes=120, days=2)

    def full():
        return len(group_by_packet(logs))

    def streamed():
        count = 0
        for batch in iter_packet_groups(logs, batch_size=32):
            count += len(batch)
        return count

    n_full, t_full, peak_full = timed(full)
    n_stream, t_stream, peak_stream = timed(streamed)
    assert n_full == n_stream
    table = render_table(
        ["grouping", "packets", "wall_s", "py_peak_MB"],
        [
            ("one-pass", n_full, f"{t_full:.3f}", f"{peak_full / 1e6:.2f}"),
            ("streamed(32)", n_stream, f"{t_stream:.3f}", f"{peak_stream / 1e6:.2f}"),
        ],
    )
    emit("bench_backends_memory", table)
    # the point of the exercise: bounded batches need less live memory
    assert peak_stream < peak_full
