"""Fig. 3 — cascading / 1-to-many / many-to-1 / mixed inter-node transitions.

Benchmarks the recursive transition algorithm on the figure's synthetic
three-node engines and asserts the flows/constraints quoted in the caption.
"""

from repro.core.transition_algorithm import PacketReconstructor
from repro.events.event import Event
from repro.fsm.prerequisites import PrereqRule
from repro.fsm.templates import chain_template
from repro.util.tables import render_table

LABELS = {1: ["e1", "e2"], 2: ["e3", "e4"], 3: ["e5", "e6"]}
FIRST = {1: 1, 2: 4, 3: 7}

WIRINGS = {
    "3a cascading": {
        1: {"e2": [PrereqRule(2, "s6")]},
        2: {"e4": [PrereqRule(3, "s9")]},
    },
    "3b 1-to-many": {2: {"e4": [PrereqRule(1, "s3"), PrereqRule(3, "s9")]}},
    "3c many-to-1": {
        1: {"e1": [PrereqRule(2, "s5")]},
        3: {"e5": [PrereqRule(2, "s5")]},
    },
    "3d mixed": {
        1: {"e1": [PrereqRule(2, "s5")]},
        3: {"e5": [PrereqRule(2, "s5")]},
        2: {"e4": [PrereqRule(1, "s3"), PrereqRule(3, "s9")]},
    },
}


def build(wiring):
    templates = {
        n: chain_template(f"n{n}", LABELS[n], wiring.get(n), first_state=FIRST[n])
        for n in (1, 2, 3)
    }
    return lambda node: templates[node]


def full_events():
    return {n: [Event.make(label, n) for label in LABELS[n]] for n in (1, 2, 3)}


def run_all():
    out = {}
    for name, wiring in WIRINGS.items():
        template_for = build(wiring)
        out[name] = PacketReconstructor(template_for).reconstruct(full_events())
        # the headline inference case: only e2 survives in 3a
        if name == "3a cascading":
            out["3a only-e2"] = PacketReconstructor(build(wiring)).reconstruct(
                {1: [Event.make("e2", 1)]}
            )
    return out


def test_fig3_transition_patterns(benchmark, emit):
    flows = benchmark.pedantic(run_all, rounds=20, iterations=1)

    assert [e.etype for e in flows["3a cascading"].events] == ["e1", "e3", "e5", "e6", "e4", "e2"]
    sparse = flows["3a only-e2"]
    assert [e.etype for e in sparse.events] == ["e1", "e3", "e5", "e6", "e4", "e2"]
    assert len(sparse.inferred_events()) == 5

    b = flows["3b 1-to-many"]
    types_b = [e.etype for e in b.events]
    for pre in ("e1", "e2", "e5", "e6"):
        assert types_b.index(pre) < types_b.index("e4")
    assert not b.order_determined(b.find("e1")[0], b.find("e5")[0])

    c = flows["3c many-to-1"]
    types_c = [e.etype for e in c.events]
    assert all(types_c.index("e3") < types_c.index(x) for x in ("e1", "e2", "e5", "e6"))

    d = flows["3d mixed"]
    types_d = [e.etype for e in d.events]
    assert types_d.index("e3") < types_d.index("e1")
    assert types_d.index("e2") < types_d.index("e4")
    assert types_d.index("e6") < types_d.index("e4")

    emit(
        "fig3_transitions",
        render_table(
            ["pattern", "event flow (inferred in brackets)"],
            [(name, flow.format()) for name, flow in flows.items()],
            title="Fig.3 — inter-node transition patterns",
        ),
    )
