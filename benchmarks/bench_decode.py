"""S3 — the decode→inference hot path in isolation.

Two microbenchmarks under the end-to-end serve numbers:

- **Tokenizer throughput** — lines/s of the byte-level fast tokenizer
  (``scan_log_bytes``) over a rendered 50-node corpus, against the legacy
  token-loop scanner on identical input.  This is the pure parse cost the
  serve ingest pays per line, with the network and the session out of the
  picture.
- **Reachability lookups** — inference-path queries/s through the
  compiled jump tables (:class:`CompiledReachability`) against fresh
  legacy BFS walks, over the forwarder template's graph with the full
  admissible mask.  This is the query mix the transition algorithm issues
  while reconstructing.

The run writes ``BENCH_decode.json`` at the repo root (schema-stamped like
``BENCH_serve.json``); ``bench_history.py`` gates its rates so a tokenizer
or jump-table regression needs an attributed trajectory entry to land.
"""

import json
import pathlib
import time

from repro.analysis.pipeline import default_loss_spec, run_simulation
from repro.events.codec import (
    encode_event,
    scan_log_bytes,
    scan_log_text_legacy,
)
from repro.fsm.reachability import Reachability
from repro.fsm.templates import forwarder_template
from repro.lognet.collector import collect_logs
from repro.simnet.scenarios import citysee
from repro.util.tables import render_table

from benchmarks.conftest import BENCH_SCHEMA, bench_seed, run_metadata

BASELINE_PATH = pathlib.Path(__file__).parent.parent / "BENCH_decode.json"

N_NODES = 50
ROUNDS = 5


def _corpus_bytes() -> tuple[bytes, int]:
    """The serve corpus rendered to one wire buffer (node order)."""
    params = citysee(n_nodes=N_NODES, days=2, seed=bench_seed("decode", 17))
    sim = run_simulation(params)
    logs = collect_logs(
        sim.true_logs,
        default_loss_spec(sim),
        seed=9,
        perfect_clocks=frozenset({sim.base_station_node}),
    )
    lines = [
        encode_event(event) for node in sorted(logs) for event in logs[node]
    ]
    return ("\n".join(lines) + "\n").encode("utf-8"), len(lines)


def _best_of(fn, rounds=ROUNDS):
    best = None
    result = None
    for _ in range(rounds):
        start = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best = elapsed
    return best, result


def test_decode_and_reachability_throughput(emit):
    data, n_lines = _corpus_bytes()

    fast_s, fast_events = _best_of(
        lambda: sum(1 for _ in scan_log_bytes(data))
    )
    legacy_s, legacy_events = _best_of(
        lambda: sum(1 for _ in scan_log_text_legacy(data.decode("utf-8")))
    )
    assert fast_events == legacy_events  # same corpus, same accept set

    template = forwarder_template()
    compiled = template.compiled
    graph = compiled.graph
    reach = Reachability(graph)
    mask = compiled.full_mask
    states = graph.states
    index = compiled.index
    #: The transition algorithm's query mix: every (src, dst) path and
    #: every (src, dst, label) via-event path.
    pairs = [(a, b) for a in states for b in states]
    labels = tuple(graph.events)

    def compiled_lookups():
        n = 0
        for a, b in pairs:
            compiled.path(index[a], index[b], mask)
            n += 1
            for label in labels:
                compiled.path_via_event(index[a], index[b], label, mask)
                n += 1
        return n

    def legacy_walks():
        n = 0
        for a, b in pairs:
            reach.shortest_path(a, b)
            n += 1
            for label in labels:
                reach.shortest_path_via_event(a, b, label)
                n += 1
        return n

    # warm the jump-table tree cache once, as a session would
    compiled_lookups()
    queries = compiled_lookups()
    compiled_s, _ = _best_of(compiled_lookups)
    legacy_walk_s, _ = _best_of(legacy_walks)

    fast_rate = n_lines / fast_s
    legacy_rate = n_lines / legacy_s
    compiled_rate = queries / compiled_s
    legacy_walk_rate = queries / legacy_walk_s

    emit(
        "bench_decode",
        render_table(
            ["operation", "n", "best_s", "per_s"],
            [
                ("tokenize (bytes)", n_lines, f"{fast_s:.4f}", int(fast_rate)),
                ("tokenize (legacy)", n_lines, f"{legacy_s:.4f}", int(legacy_rate)),
                ("reach lookup (compiled)", queries, f"{compiled_s:.4f}", int(compiled_rate)),
                ("reach lookup (legacy)", queries, f"{legacy_walk_s:.4f}", int(legacy_walk_rate)),
            ],
            title=f"S3 — decode→inference microbenchmarks, {N_NODES}-node corpus (best of {ROUNDS})",
        ),
    )

    corpus = {"n_nodes": N_NODES, "days": 2, "lines": n_lines}
    baseline = {
        "schema": BENCH_SCHEMA,
        "run": run_metadata("decode", seed=bench_seed("decode", 17), corpus=corpus),
        "corpus": corpus,
        "tokenize": {
            "lines_per_s": round(fast_rate, 1),
            "legacy_lines_per_s": round(legacy_rate, 1),
            "speedup": round(fast_rate / legacy_rate, 2),
        },
        "reachability": {
            "lookups_per_s": round(compiled_rate, 1),
            "legacy_walks_per_s": round(legacy_walk_rate, 1),
            "speedup": round(compiled_rate / legacy_walk_rate, 2),
        },
    }
    BASELINE_PATH.write_text(json.dumps(baseline, indent=2, sort_keys=True) + "\n")

    # generous floors — the gate for real drift is bench_history's
    assert fast_rate > 20_000
    assert compiled_rate > 20_000
    # the whole point of the fast paths: they must actually beat legacy
    assert fast_rate > legacy_rate
    assert compiled_rate > legacy_walk_rate
