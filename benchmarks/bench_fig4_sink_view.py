"""Fig. 4 — sink view of lost packets (time x source node, cause markers).

The paper's observations to reproduce: packet sources look *evenly*
distributed ("packets generated at different nodes have a similar
probability to get lost"), while losses are *temporally correlated*
("packet losses often occur at the same time period"); timeout and
duplicated losses are few.
"""

from repro.analysis.report import render_scatter_summary
from repro.analysis.temporal import (
    burstiness,
    cause_marker_counts,
    concentration_gini,
    loss_scatter,
    per_node_loss_counts,
)
from repro.core.diagnosis import LossCause
from repro.simnet.scenarios import DAY


def test_fig4_sink_view(benchmark, two_day_eval, emit):
    result = two_day_eval

    def compute():
        return loss_scatter(result.reports, result.est_loss_times, axis="source")

    points = benchmark.pedantic(compute, rounds=5, iterations=1)
    assert points, "the two-day trace must contain losses"

    sources = [n for n in result.sim.topology.nodes if n != result.sink]
    counts = per_node_loss_counts(points, sources)
    source_gini = concentration_gini(counts)
    # sources are spread: most nodes lose something, concentration is low
    losing = sum(1 for c in counts.values() if c > 0)
    assert losing / len(sources) > 0.8
    assert source_gini < 0.5

    # losses are temporally bursty: the busiest 10% of hours hold far more
    # than 10% of the losses
    total_bursty = sum(
        burstiness(points, cause, window=DAY / 24, top_k=5) for cause in {c for _, _, c in points}
    )
    window_burst = burstiness(
        points, max(cause_marker_counts(points), key=cause_marker_counts(points).get),
        window=DAY / 24, top_k=5,
    )
    assert window_burst > 0.15

    markers = cause_marker_counts(points)
    losses = sum(markers.values())
    assert markers.get(LossCause.TIMEOUT_LOSS, 0) / losses < 0.15
    assert markers.get(LossCause.DUP_LOSS, 0) / losses < 0.1

    emit(
        "fig4_sink_view",
        render_scatter_summary(
            points,
            window=DAY / 12,
            title=(
                "Fig.4 — sink view, losses per 2h window by cause "
                f"(source gini={source_gini:.2f}, sources losing packets="
                f"{losing}/{len(sources)})"
            ),
        ),
    )
