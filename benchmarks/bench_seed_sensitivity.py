"""R1 — robustness: the reproduced shapes hold across random seeds.

A reproduction that only works at one seed is a coincidence.  This
benchmark re-runs a short CitySee slice under three seeds and asserts the
headline shapes (sink dominance, acked+received dominance, REFILL accuracy)
every time; the table reports the spread.
"""

from repro.analysis.accuracy import score_run
from repro.analysis.causes import cause_shares, sink_split
from repro.analysis.pipeline import evaluate
from repro.core.diagnosis import LossCause
from repro.simnet.scenarios import citysee
from repro.util.tables import render_table

SEEDS = (7, 101, 20260706)


def run_all():
    rows = []
    for seed in SEEDS:
        result = evaluate(citysee(n_nodes=80, days=3, seed=seed))
        shares = cause_shares(result.reports)
        split = sink_split(result.reports, result.sink)
        acc = score_run(
            result.flows,
            result.reports,
            result.collected_logs,
            result.sim.truth,
            sink=result.sink,
        )
        rows.append((seed, shares, split, acc))
    return rows


def test_seed_sensitivity(benchmark, emit):
    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)

    for seed, shares, split, acc in rows:
        # the shape assertions of Fig. 9, per seed
        in_node = shares.get(LossCause.ACKED_LOSS, 0) + shares.get(
            LossCause.RECEIVED_LOSS, 0
        )
        assert in_node > 50, seed
        assert split["acked_sink"] + split["received_sink"] > 35, seed
        for minority in (LossCause.DUP_LOSS, LossCause.TIMEOUT_LOSS, LossCause.OVERFLOW_LOSS):
            assert shares.get(minority, 0.0) < 12, (seed, minority)
        # reconstruction quality is seed-independent
        assert acc.cause_accuracy > 0.9, seed
        assert acc.event_precision > 0.9, seed

    emit(
        "seed_sensitivity",
        render_table(
            [
                "seed", "received_%", "acked_%", "sink_share_%",
                "cause_acc", "event_precision", "event_recall",
            ],
            [
                (
                    seed,
                    round(shares.get(LossCause.RECEIVED_LOSS, 0.0), 1),
                    round(shares.get(LossCause.ACKED_LOSS, 0.0), 1),
                    round(split["acked_sink"] + split["received_sink"], 1),
                    round(acc.cause_accuracy, 3),
                    round(acc.event_precision, 3),
                    round(acc.event_recall, 3),
                )
                for seed, shares, split, acc in rows
            ],
            title="R1 — shape robustness across seeds (80 nodes, 3 days)",
        ),
    )
