"""Fig. 2 — the connected-FSM machinery.

Benchmarks building the forwarder template (graph + reachability + derived
intra-node jump table) and asserts the derived structure the figure's
dashed/ dotted edges illustrate.
"""

from repro.fsm.templates import (
    ACKED,
    DROPPED_OVERFLOW,
    DROPPED_TIMEOUT,
    IDLE,
    RECEIVED,
    SENT,
    forwarder_template,
)
from repro.util.tables import render_table


def test_fig2_template_construction(benchmark, emit):
    template = benchmark.pedantic(forwarder_template, rounds=50, iterations=1)

    # solid edges: normal transitions of the original FSM
    assert len(template.graph.transitions) == 13
    # dashed edges: the derived intra-node jumps the paper's Fig. 2 shows —
    # e.g. a trans observed at IDLE implies the lost receive
    assert template.intra[(IDLE, "trans")].dst == SENT
    assert template.intra[(IDLE, "ack_recvd")].dst == ACKED
    assert template.intra[(IDLE, "timeout")].dst == DROPPED_TIMEOUT
    # ambiguous events derive no jump (the uniqueness condition)
    assert (IDLE, "dup") not in template.intra
    # inter-node transitions: recv implies the sender reached SENT, ack
    # implies the receiver got the packet at the PHY
    assert template.prereq_rules("recv")[0].state == SENT
    assert template.prereq_rules("ack_recvd")[0].states == (RECEIVED, DROPPED_OVERFLOW)

    rows = [
        (f"{state} --{event}-->", jump.dst)
        for (state, event), jump in sorted(template.intra.items())
        if not template.graph.transitions_from(state, event)
    ]
    emit(
        "fig2_fsm",
        render_table(
            ["derived intra-node jump", "target"],
            rows,
            title="Fig.2 — derived intra-node transitions (dashed edges)",
        ),
    )
