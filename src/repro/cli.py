"""Command-line interface: ``refill`` (or ``python -m repro``).

Three subcommands mirror the deployment workflow:

- ``refill simulate`` — run a scaled CitySee scenario, write the collected
  (lossy, clock-skewed) per-node logs as text files plus an operations log;
- ``refill analyze`` — reconstruct event flows from a log directory and
  print the loss diagnosis;
- ``refill trace`` — print one packet's reconstructed event flow.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from typing import Optional

from repro.analysis.causes import attribute_server_outages, cause_shares, sink_split
from repro.analysis.report import render_cause_shares
from repro.baselines.sink_view import SinkView
from repro.core.diagnosis import classify_flow
from repro.core.refill import Refill
from repro.core.tracing import trace_packet
from repro.events.packet import PacketKey
from repro.events.store import StoreMetadata, load_store, save_store
from repro.lognet.collector import collect_logs
from repro.analysis.pipeline import default_loss_spec
from repro.simnet.scenarios import citysee, run_scenario


def _cmd_simulate(args: argparse.Namespace) -> int:
    params = citysee(n_nodes=args.nodes, days=args.days, seed=args.seed)
    print(f"simulating {args.nodes} nodes for {args.days} scaled days ...", file=sys.stderr)
    sim = run_scenario(params)
    collected = collect_logs(
        sim.true_logs,
        default_loss_spec(sim),
        args.seed + 1,
        perfect_clocks=frozenset({sim.base_station_node}),
    )
    metadata = StoreMetadata(
        sink=sim.sink,
        base_station=sim.base_station_node,
        gen_interval=params.gen_interval,
        outages=params.base_station.outages,
        extra={"n_nodes": args.nodes, "days": args.days, "seed": args.seed},
    )
    out = save_store(args.out, collected, metadata)
    total = sum(len(log) for log in collected.values())
    print(
        f"wrote {len(collected)} node logs ({total} events) and operations.json to {out}",
        file=sys.stderr,
    )
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    store = load_store(args.logs)
    if store.corrupt_lines:
        skipped = sum(store.corrupt_lines.values())
        print(f"skipped {skipped} undecodable log lines", file=sys.stderr)
    logs, meta = store.logs, store.metadata
    print(f"reconstructing from {len(logs)} node logs ...", file=sys.stderr)
    flows, reports, _est = _diagnose_store(store)
    lost = sum(1 for r in reports.values() if r.lost)
    print(f"{len(flows)} packets reconstructed, {lost} diagnosed as lost\n")
    print(render_cause_shares(cause_shares(reports)))
    split = sink_split(reports, meta.sink)
    print()
    for key, value in split.items():
        print(f"  {key:<16} {value:5.1f}%")
    return 0


def _diagnose_store(store):
    """Shared reconstruct + diagnose over a loaded store."""
    logs, meta = store.logs, store.metadata
    flows = Refill().reconstruct(logs)
    bs = meta.base_station
    reports = {p: classify_flow(f, delivery_node=bs) for p, f in flows.items()}
    bs_arrivals = [
        (e.packet, e.time)
        for e in logs.get(bs, [])
        if e.etype == "recv" and e.packet is not None
    ]
    sink_view = SinkView(bs_arrivals, meta.gen_interval)
    est = {p: sink_view.estimate_loss_time(p) for p in reports}
    reports = attribute_server_outages(
        reports, est, outages=meta.outages, sink=meta.sink, base_station=bs
    )
    return flows, reports, est


def _cmd_figures(args: argparse.Namespace) -> int:
    from repro.analysis.temporal import loss_scatter
    from repro.vis.figures import render_scatter_svg

    store = load_store(args.logs)
    print("reconstructing ...", file=sys.stderr)
    _flows, reports, est = _diagnose_store(store)
    out = pathlib.Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    sources = loss_scatter(reports, est, axis="source")
    positions = loss_scatter(reports, est, axis="position")
    (out / "fig4_sink_view.svg").write_text(
        render_scatter_svg(
            sources,
            title="Fig. 4 — sink view of lost packets",
            y_label="source node id",
        )
    )
    (out / "fig5_loss_positions.svg").write_text(
        render_scatter_svg(
            positions,
            title="Fig. 5 — causes for lost packets (REFILL)",
            y_label="loss position (node id)",
        )
    )
    print(f"wrote fig4/fig5 SVGs to {out}", file=sys.stderr)
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    store = load_store(args.logs)
    packet = PacketKey.parse(args.packet)
    flows = Refill().reconstruct(store.logs)
    flow = flows.get(packet)
    if flow is None:
        print(f"packet {packet} does not appear in any collected log", file=sys.stderr)
        return 1
    report = classify_flow(flow, delivery_node=store.metadata.base_station)
    trace = trace_packet(flow)
    print(f"packet {packet}")
    print(f"  flow:      {flow.format()}")
    print(f"  path:      {trace.path_string()}")
    print(f"  diagnosis: {report.cause} at node {report.position}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="refill", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    p_sim = sub.add_parser("simulate", help="simulate a CitySee-like network, write logs")
    p_sim.add_argument("--nodes", type=int, default=100)
    p_sim.add_argument("--days", type=int, default=5)
    p_sim.add_argument("--seed", type=int, default=7)
    p_sim.add_argument("--out", default="citysee-logs")
    p_sim.set_defaults(fn=_cmd_simulate)

    p_an = sub.add_parser("analyze", help="reconstruct + diagnose a log directory")
    p_an.add_argument("--logs", default="citysee-logs")
    p_an.set_defaults(fn=_cmd_analyze)

    p_tr = sub.add_parser("trace", help="print one packet's reconstructed flow")
    p_tr.add_argument("--logs", default="citysee-logs")
    p_tr.add_argument("packet", help="packet key, e.g. p17.3")
    p_tr.set_defaults(fn=_cmd_trace)

    p_fig = sub.add_parser("figures", help="render loss-scatter figures as SVG")
    p_fig.add_argument("--logs", default="citysee-logs")
    p_fig.add_argument("--out", default="figures")
    p_fig.set_defaults(fn=_cmd_figures)
    return parser


def main(argv: Optional[list[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover - exercised via tests/cli
    raise SystemExit(main())
