"""Command-line interface: ``refill`` (or ``python -m repro``).

The subcommands mirror the deployment workflow:

- ``refill simulate`` — run a scaled CitySee scenario, write the collected
  (lossy, clock-skewed) per-node logs as text files plus an operations log;
- ``refill check`` — static-analyze a deployment (FSM templates and/or a
  log corpus) *before* any reconstruction runs; exit 1 on error findings
  (see ``docs/STATIC_ANALYSIS.md`` for the rule catalogue);
- ``refill learn`` — infer per-node FSM templates and inter-node
  prerequisite rules from a log store, written as a byte-deterministic
  declarative spec that ``check --spec`` and ``analyze --spec`` load
  (see ``docs/LEARNING.md``);
- ``refill analyze`` — reconstruct event flows from a log directory and
  print the loss diagnosis (a pre-flight check gates the run; skip it with
  ``--no-check``); ``--spec learned.json`` swaps in a learned model;
- ``refill trace`` — print one packet's reconstructed event flow;
- ``refill stress`` — run a seeded fault-injection campaign (corrupted
  stores, ground-truth oracles ``ST001``–``ST007``, ddmin case shrinking)
  or ``--replay`` a written reproducer; see ``docs/TESTING.md``;
- ``refill serve`` — run the long-lived reconstruction daemon: line-framed
  TCP/unix-socket ingest, periodic checkpoints, HTTP/JSON queries (see
  ``docs/SERVING.md``);
- ``refill push`` — replay an on-disk store's shards at a running daemon
  (resumable: pushing twice, or across a server restart, sends only what
  the server has not yet accepted).

Progress narration goes to stderr through the structured logger
(:mod:`repro.obs.structlog`): ``-v`` raises it to debug, ``-q`` silences
everything below errors, ``--log-json`` switches to JSON lines.  Analysis
results on stdout are unaffected by the verbosity flags.

``refill analyze`` additionally exposes the observability substrate:
``--metrics-out metrics.json`` dumps the run's
:class:`~repro.obs.registry.MetricsSnapshot` and ``--profile`` prints a
per-stage wall-time table (see ``docs/OBSERVABILITY.md``).
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import sys
from typing import Optional

from repro.analysis.causes import attribute_server_outages, cause_shares, sink_split
from repro.analysis.report import render_cause_shares
from repro.baselines.sink_view import SinkView
from repro.check import load_spec, run_check
from repro.check.runner import model_errors
from repro.core.backends import BACKENDS, make_backend
from repro.core.session import ReconstructionSession
from repro.core.tracing import trace_packet
from repro.events.log import NodeLog
from repro.events.packet import PacketKey
from repro.events.store import ShardedStore, StoreMetadata, load_store, save_store
from repro.lognet.collector import collect_logs
from repro.analysis.pipeline import default_loss_spec
from repro.obs import (
    DEBUG,
    ERROR,
    INFO,
    MetricsRegistry,
    MetricsSnapshot,
    configure_logging,
    get_logger,
    span,
    use_registry,
)
from repro.simnet.scenarios import citysee, run_scenario

log = get_logger("refill.cli")


def _cmd_simulate(args: argparse.Namespace) -> int:
    params = citysee(n_nodes=args.nodes, days=args.days, seed=args.seed)
    log.info("simulate.start", nodes=args.nodes, days=args.days, seed=args.seed)
    with span("simulate.run"):
        sim = run_scenario(params)
    with span("simulate.collect"):
        collected = collect_logs(
            sim.true_logs,
            default_loss_spec(sim),
            args.seed + 1,
            perfect_clocks=frozenset({sim.base_station_node}),
        )
    metadata = StoreMetadata(
        sink=sim.sink,
        base_station=sim.base_station_node,
        gen_interval=params.gen_interval,
        outages=params.base_station.outages,
        extra={"n_nodes": args.nodes, "days": args.days, "seed": args.seed},
    )
    with span("simulate.write"):
        out = save_store(args.out, collected, metadata)
    total = sum(len(log_) for log_ in collected.values())
    log.info("simulate.wrote", node_logs=len(collected), events=total, out=str(out))
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    if args.code is not None:
        return _cmd_check_code(args)
    try:
        spec = load_spec(args.spec)
    except (ValueError, ImportError) as exc:
        log.error("check.bad-spec", spec=args.spec, error=str(exc))
        return 2
    registry = MetricsRegistry()
    with use_registry(registry):
        report = run_check(spec, args.logs, max_per_rule=args.max_per_rule)
    if args.json:
        print(report.to_json_str())
    else:
        print(report.render_text())
    code = report.exit_code(strict=args.strict)
    log.info(
        "check.done",
        errors=len(report.errors),
        warnings=len(report.warnings),
        infos=len(report.infos),
        exit_code=code,
    )
    return code


def _cmd_check_code(args: argparse.Namespace) -> int:
    """``refill check --code [paths]``: the CC0xx source analyzer."""
    from repro.check.code import check_code

    paths = args.code or ["src/repro"]
    registry = MetricsRegistry()
    try:
        with use_registry(registry):
            report = check_code(paths, max_per_rule=args.max_per_rule)
    except ValueError as exc:
        log.error("check.code.bad-path", error=str(exc))
        return 2
    if args.json:
        print(report.to_json_str())
    else:
        print(report.render_text())
    code = report.exit_code(strict=args.strict)
    log.info(
        "check.done",
        errors=len(report.errors),
        warnings=len(report.warnings),
        infos=len(report.infos),
        exit_code=code,
    )
    return code


def _cmd_learn(args: argparse.Namespace) -> int:
    """``refill learn``: infer a deployment spec from a log store."""
    from repro.learn import ExtractionOptions, learn_from_store
    from repro.learn.spec import save_learned_spec

    with span("learn.load"):
        loaded = load_store(args.logs)
    log.info(
        "learn.store-loaded",
        logs=args.logs,
        node_logs=len(loaded.logs),
        corrupt_lines=sum(loaded.corrupt_lines.values()),
    )
    options = ExtractionOptions(
        filter_corrupt_nodes=not args.keep_corrupt,
        min_trace_support=args.min_trace_support,
    )
    try:
        with span("learn.mine"):
            spec = learn_from_store(
                loaded,
                k=args.k,
                min_support=args.min_support,
                name=args.name,
                options=options,
            )
    except ValueError as exc:
        log.error("learn.failed", error=str(exc))
        return 2
    save_learned_spec(spec, args.out)
    stats = dict(spec.stats)
    print(
        f"learned {len(spec.states)} states, {len(spec.transitions)} "
        f"transitions, {len(spec.prereqs)} prerequisite rules"
    )
    for rule in spec.prereqs:
        alts = f" (alt {', '.join(rule.alt_states)})" if rule.alt_states else ""
        print(
            f"  {rule.label:<12} requires peer[{rule.peer}] at {rule.state}"
            f"{alts}  [{rule.supported}/{rule.observations}]"
        )
    print(
        f"corpus: {stats.get('packets', 0)} packets, "
        f"{stats.get('traces', 0)} traces "
        f"({stats.get('dropped_traces', 0)} dropped), "
        f"{stats.get('unique_sequences', 0)} unique sequences"
    )
    print(f"wrote {args.out}")
    log.info(
        "learn.done",
        states=len(spec.states),
        transitions=len(spec.transitions),
        prereqs=len(spec.prereqs),
        out=args.out,
    )
    return 0


def _preflight_analyze(args: argparse.Namespace, spec) -> bool:
    """Pre-flight gate for ``refill analyze``: abort on *model* errors.

    Corpus findings never block — field data is dirty by assumption and the
    store loader tolerates it — but a broken template would silently
    corrupt every reconstructed flow, so those fail fast.
    """
    with span("analyze.preflight"):
        report = run_check(spec, args.logs)
    errors = model_errors(report)
    corpus_errors = len(report.errors) - len(errors)
    if corpus_errors:
        log.warning("analyze.preflight.corpus-findings", errors=corpus_errors)
    if errors:
        for finding in errors:
            log.error("analyze.preflight.model-error", finding=finding.format())
        return False
    return True


def _analyze_template(args: argparse.Namespace):
    """Resolve ``analyze --spec`` to ``(deployment_spec, template)``.

    The inference session drives a single template, so the spec must be
    uniform-role (the built-in ``ctp`` default and every learned spec are).
    The default spec resolves to ``template=None`` so the session keeps its
    module-level factory — required by ``--backend process``, which pickles
    the factory by reference into workers.
    """
    spec = load_spec(args.spec)
    if args.spec == "ctp":
        return spec, None
    if len(spec.roles) != 1:
        raise ValueError(
            f"spec {args.spec!r} has {len(spec.roles)} roles; "
            "refill analyze needs a uniform-role spec"
        )
    (template,) = spec.roles.values()
    return spec, template


def _cmd_analyze(args: argparse.Namespace) -> int:
    registry = MetricsRegistry()
    try:
        spec, template = _analyze_template(args)
    except (ValueError, ImportError, OSError) as exc:
        log.error("analyze.bad-spec", spec=args.spec, error=str(exc))
        return 2
    with use_registry(registry):
        if not args.no_check and not _preflight_analyze(args, spec):
            log.error("analyze.preflight-failed", hint="rerun with --no-check to force")
            return 1
        with span("analyze"):
            if args.stream:
                # shard-at-a-time: the corpus never has to fit in memory
                sharded = ShardedStore(args.logs)
                meta = sharded.metadata
                log.info(
                    "analyze.reconstructing",
                    node_logs=len(sharded.nodes()),
                    backend=args.backend,
                    stream=True,
                )
                flows, reports, _est = _diagnose_store(
                    sharded,
                    template=template,
                    backend_name=args.backend,
                    workers=args.workers,
                    batch_size=args.batch_size,
                    stream=True,
                )
                corrupt_lines = sharded.corrupt_lines
            else:
                with span("analyze.load"):
                    loaded = load_store(args.logs)
                log.debug(
                    "analyze.store-loaded",
                    logs=args.logs,
                    node_logs=len(loaded.logs),
                    corrupt_lines=sum(loaded.corrupt_lines.values()),
                )
                registry.counter("analyze.events.parsed").inc(loaded.total_events)
                meta = loaded.metadata
                log.info(
                    "analyze.reconstructing",
                    node_logs=len(loaded.logs),
                    events=loaded.total_events,
                    backend=args.backend,
                )
                flows, reports, _est = _diagnose_store(
                    loaded,
                    template=template,
                    backend_name=args.backend,
                    workers=args.workers,
                    batch_size=args.batch_size,
                )
                corrupt_lines = loaded.corrupt_lines
            _report_corrupt_lines(registry, corrupt_lines)
        lost = sum(1 for r in reports.values() if r.lost)
        print(f"{len(flows)} packets reconstructed, {lost} diagnosed as lost\n")
        print(render_cause_shares(cause_shares(reports)))
        split = sink_split(reports, meta.sink)
        print()
        for key, value in split.items():
            print(f"  {key:<16} {value:5.1f}%")
    if args.flows_out:
        from repro.core.serialize import dumps_canonical, flows_to_json

        pathlib.Path(args.flows_out).write_text(
            dumps_canonical(flows_to_json(flows)) + "\n"
        )
        log.info("analyze.flows-written", path=args.flows_out)
    if args.metrics_out:
        snapshot = registry.snapshot()
        pathlib.Path(args.metrics_out).write_text(snapshot.to_json_str() + "\n")
        log.info("analyze.metrics-written", path=args.metrics_out)
    if args.profile:
        print(_render_profile(registry.snapshot()), file=sys.stderr)
    return 0


def _report_corrupt_lines(registry: MetricsRegistry, corrupt_lines) -> None:
    for node, bad in sorted(corrupt_lines.items()):
        registry.counter("codec.corrupt_lines", node=node).inc(bad)
    if corrupt_lines:
        log.warning(
            "analyze.corrupt-lines",
            skipped=sum(corrupt_lines.values()),
            nodes=len(corrupt_lines),
        )


def _diagnose_store(
    store,
    *,
    template=None,
    backend_name: str = "serial",
    workers: Optional[int] = None,
    batch_size: int = 256,
    stream: bool = False,
):
    """Shared reconstruct + diagnose over a loaded or sharded store.

    Every door goes through one :class:`ReconstructionSession`; the backend
    is the only variable.  ``store`` is a
    :class:`~repro.events.store.LoadedStore` (in-memory) or a
    :class:`~repro.events.store.ShardedStore` (shard-at-a-time).
    ``template`` overrides the inference model (``analyze --spec``);
    ``None`` keeps the hand-written CTP forwarder default.
    """
    meta = store.metadata
    bs = meta.base_station
    if isinstance(store, ShardedStore):
        logs_source = store
        bs_log: NodeLog = store.load_node(bs)
    else:
        logs_source = store.logs
        bs_log = store.logs.get(bs, NodeLog(bs))
    session = ReconstructionSession(
        template,
        backend=make_backend(backend_name, workers=workers),
        delivery_node=bs,
        batch_size=batch_size,
        stream=stream,
    )
    with span("analyze.reconstruct"):
        flows = session.reconstruct(logs_source)
    with span("analyze.diagnose"):
        reports = session.diagnose(flows)
        bs_arrivals = [
            (e.packet, e.time)
            for e in bs_log
            if e.etype == "recv" and e.packet is not None
        ]
        sink_view = SinkView(bs_arrivals, meta.gen_interval)
        est = {p: sink_view.estimate_loss_time(p) for p in reports}
        reports = attribute_server_outages(
            reports, est, outages=meta.outages, sink=meta.sink, base_station=bs
        )
    return flows, reports, est


def _render_profile(snapshot: MetricsSnapshot) -> str:
    """Per-stage wall-time table from the run's span histograms."""
    rows = [
        f"{'stage':<28} {'calls':>8} {'total_s':>9} {'p50_ms':>9} "
        f"{'p95_ms':>9} {'max_ms':>9}"
    ]
    def ms(v):
        return f"{v * 1000.0:9.2f}" if v is not None else f"{'-':>9}"

    for name in sorted(snapshot.histograms):
        if not name.startswith("span."):
            continue
        h = snapshot.histograms[name]
        rows.append(
            f"{name[len('span.'):]:<28} {h.count:>8} {h.total:9.3f} "
            f"{ms(h.p50)} {ms(h.p95)} {ms(h.max)}"
        )
    return "\n".join(rows)


def _cmd_figures(args: argparse.Namespace) -> int:
    from repro.analysis.temporal import loss_scatter
    from repro.vis.figures import render_scatter_svg

    store = load_store(args.logs)
    log.info("figures.reconstructing", node_logs=len(store.logs))
    _flows, reports, est = _diagnose_store(store)
    out = pathlib.Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    sources = loss_scatter(reports, est, axis="source")
    positions = loss_scatter(reports, est, axis="position")
    (out / "fig4_sink_view.svg").write_text(
        render_scatter_svg(
            sources,
            title="Fig. 4 — sink view of lost packets",
            y_label="source node id",
        )
    )
    (out / "fig5_loss_positions.svg").write_text(
        render_scatter_svg(
            positions,
            title="Fig. 5 — causes for lost packets (REFILL)",
            y_label="loss position (node id)",
        )
    )
    log.info("figures.wrote", what="fig4/fig5 SVGs", out=str(out))
    return 0


def _cmd_stress(args: argparse.Namespace) -> int:
    from repro.stress import CampaignConfig, OracleConfig, replay, run_campaign

    registry = MetricsRegistry()
    if args.replay:
        with use_registry(registry):
            result = replay(args.replay)
        if args.json:
            print(json.dumps(
                {
                    "expect": sorted(result.reproducer.expect),
                    "violated": result.violated,
                    "matches_expectation": result.matches_expectation,
                    "report": result.report.to_json(),
                },
                indent=2,
            ))
        else:
            print(result.report.render_text())
            print(
                f"expected {','.join(sorted(result.reproducer.expect)) or '-'}; "
                f"violated {','.join(result.violated) or '-'}"
                + ("" if result.matches_expectation else "  [VERDICT CHANGED]")
            )
        code = result.exit_code()
        log.info(
            "stress.replay.done",
            reproducer=args.replay,
            violated=",".join(result.violated) or "-",
            matches=result.matches_expectation,
            exit_code=code,
        )
        return code

    config = CampaignConfig(
        seed=args.seed,
        cases=args.cases,
        nodes=args.nodes,
        days=args.days,
        packets_per_node_per_day=args.packets_per_day,
        profile=args.faults,
        shrink=not args.no_shrink,
        oracle=OracleConfig(),
    )
    with use_registry(registry):
        result = run_campaign(config, args.out)
    if args.json:
        print(json.dumps(result.to_json(), indent=2))
    else:
        print(result.render_text())
    code = result.exit_code()
    log.info(
        "stress.campaign.done",
        cases=len(result.cases),
        violations=len(result.report.findings),
        out=args.out,
        exit_code=code,
    )
    return code


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.serve import ServeConfig, make_server

    config = ServeConfig(
        store=args.logs,
        host=args.host,
        port=args.port,
        unix_socket=args.unix_socket,
        http_host=args.http_host,
        http_port=args.http_port,
        checkpoint_path=args.checkpoint,
        checkpoint_interval=args.checkpoint_interval,
        flush_interval=args.flush_interval,
        ingest_queue_batches=args.queue_batches,
        ingest_batch_lines=args.batch_lines,
        batch_size=args.batch_size,
        tail=tuple(args.tail or ()),
        tail_interval=args.tail_interval,
        delivery_node=args.delivery_node,
        metrics_out=args.metrics_out,
        trace_out=args.trace_out,
        trace_capacity=args.trace_capacity,
        shards=args.shards,
    )
    server = make_server(config)

    def _ready(running) -> None:
        if args.print_ports:
            # machine-readable startup handshake for scripts and CI: one
            # flushed JSON object per listener (parse with
            # repro.serve.runner.read_printed_ports)
            for entry in running.listeners():
                print(json.dumps(entry, sort_keys=True), flush=True)

    return server.run(ready=_ready)


def _cmd_push(args: argparse.Namespace) -> int:
    from repro.serve.client import push_store

    results = push_store(
        args.logs,
        host=args.host,
        port=args.port,
        unix_socket=args.unix_socket,
        source_prefix=args.source_prefix,
        workers=args.workers,
    )
    sent = sum(r.sent for r in results.values())
    skipped = sum(r.skipped for r in results.values())
    print(f"{len(results)} sources, {sent} lines sent, {skipped} skipped")
    log.info("push.done", sources=len(results), sent=sent, skipped=skipped)
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    store = load_store(args.logs)
    packet = PacketKey.parse(args.packet)
    session = ReconstructionSession(delivery_node=store.metadata.base_station)
    flows = session.reconstruct(store.logs)
    flow = flows.get(packet)
    if flow is None:
        log.error("trace.packet-not-found", packet=str(packet))
        return 1
    report = session.diagnose({packet: flow})[packet]
    trace = trace_packet(flow)
    print(f"packet {packet}")
    print(f"  flow:      {flow.format()}")
    print(f"  path:      {trace.path_string()}")
    print(f"  diagnosis: {report.cause} at node {report.position}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument(
        "-v", "--verbose", action="store_true",
        help="debug-level progress narration on stderr",
    )
    common.add_argument(
        "-q", "--quiet", action="store_true",
        help="errors only on stderr (stdout results unaffected)",
    )
    common.add_argument(
        "--log-json", action="store_true",
        help="emit stderr narration as JSON lines instead of key=value",
    )

    parser = argparse.ArgumentParser(prog="refill", description=__doc__)
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {_version_string()}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_sim = sub.add_parser(
        "simulate", parents=[common],
        help="simulate a CitySee-like network, write logs",
    )
    p_sim.add_argument("--nodes", type=int, default=100)
    p_sim.add_argument("--days", type=int, default=5)
    p_sim.add_argument("--seed", type=int, default=7)
    p_sim.add_argument("--out", default="citysee-logs")
    p_sim.set_defaults(fn=_cmd_simulate)

    p_chk = sub.add_parser(
        "check", parents=[common],
        help="static-analyze a deployment's templates, log corpus, or code",
    )
    p_chk.add_argument(
        "--logs", default=None, metavar="DIR",
        help="log store to lint (omit to check templates only)",
    )
    p_chk.add_argument(
        "--code", nargs="*", default=None, metavar="PATH",
        help="run the CC0xx concurrency & determinism analyzer over Python "
             "sources instead of a deployment (default path: src/repro)",
    )
    p_chk.add_argument(
        "--spec", default="ctp",
        help="deployment spec: a built-in name (ctp, ctp-nogen, "
             "dissemination, query-flood), a learned-spec *.json path, "
             "or module:attribute",
    )
    p_chk.add_argument(
        "--json", action="store_true",
        help="emit the findings report as JSON on stdout",
    )
    p_chk.add_argument(
        "--strict", action="store_true",
        help="exit non-zero on warnings too, not just errors",
    )
    p_chk.add_argument(
        "--max-per-rule", type=int, default=8, metavar="N",
        help="cap findings per (rule, file) pair; 0 disables the cap",
    )
    p_chk.set_defaults(fn=_cmd_check)

    p_lrn = sub.add_parser(
        "learn", parents=[common],
        help="infer FSM templates and prerequisite rules from a log store",
    )
    p_lrn.add_argument(
        "logs", metavar="DIR",
        help="log store to learn from (as written by refill simulate)",
    )
    p_lrn.add_argument(
        "--out", default="learned.json", metavar="FILE",
        help="serialized spec output (canonical JSON, byte-deterministic)",
    )
    p_lrn.add_argument(
        "--k", type=int, default=2, metavar="K",
        help="k-tails future horizon (larger = less merging, bigger FSM)",
    )
    p_lrn.add_argument(
        "--min-support", type=float, default=0.9, metavar="S",
        help="minimum supported fraction for a mined prerequisite rule",
    )
    p_lrn.add_argument(
        "--min-trace-support", type=int, default=1, metavar="N",
        help="unique label sequences seen fewer than N times are excluded "
             "from FSM training (lossy-corpus noise floor)",
    )
    p_lrn.add_argument(
        "--keep-corrupt", action="store_true",
        help="train on traces from nodes with undecodable log lines too",
    )
    p_lrn.add_argument(
        "--name", default="learned",
        help="role/template name recorded in the spec",
    )
    p_lrn.set_defaults(fn=_cmd_learn)

    p_an = sub.add_parser(
        "analyze", parents=[common],
        help="reconstruct + diagnose a log directory",
    )
    p_an.add_argument("--logs", default="citysee-logs")
    p_an.add_argument(
        "--spec", default="ctp",
        help="inference model: a built-in spec name or a learned-spec "
             "*.json path (refill learn output); must be uniform-role",
    )
    p_an.add_argument(
        "--no-check", action="store_true",
        help="skip the pre-flight static analysis gate",
    )
    p_an.add_argument(
        "--metrics-out", default=None, metavar="FILE",
        help="write the run's metrics snapshot as JSON",
    )
    p_an.add_argument(
        "--flows-out", default=None, metavar="FILE",
        help="write every reconstructed flow as canonical JSON (the same "
             "bytes a `refill serve` daemon returns from GET /flows)",
    )
    p_an.add_argument(
        "--profile", action="store_true",
        help="print a per-stage wall-time table to stderr",
    )
    p_an.add_argument(
        "--backend", choices=sorted(BACKENDS), default="serial",
        help="execution backend for reconstruction (default: serial)",
    )
    p_an.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="worker processes for --backend process (default: cpu count)",
    )
    p_an.add_argument(
        "--batch-size", type=int, default=256, metavar="K",
        help="packet groups per submitted batch (default: 256)",
    )
    p_an.add_argument(
        "--stream", action="store_true",
        help="decode log shards one at a time instead of loading the "
             "whole store into memory (bounded working set)",
    )
    p_an.set_defaults(fn=_cmd_analyze)

    p_st = sub.add_parser(
        "stress", parents=[common],
        help="run a seeded fault-injection campaign with ground-truth "
             "oracles (or replay a reproducer)",
    )
    p_st.add_argument("--seed", type=int, default=7)
    p_st.add_argument(
        "--cases", type=int, default=5, metavar="N",
        help="fault-injection cases to run (default: 5)",
    )
    p_st.add_argument("--nodes", type=int, default=25)
    p_st.add_argument("--days", type=int, default=1)
    p_st.add_argument(
        "--packets-per-day", type=float, default=12.0, metavar="P",
        help="packets per node per day in the simulated deployment",
    )
    p_st.add_argument(
        "--faults", choices=["clean", "mild", "harsh"], default="mild",
        help="fault-operator pool to sample case plans from",
    )
    p_st.add_argument(
        "--out", default="stress-out", metavar="DIR",
        help="campaign workspace (case stores, reproducers)",
    )
    p_st.add_argument(
        "--json", action="store_true",
        help="emit the campaign report as JSON on stdout",
    )
    p_st.add_argument(
        "--no-shrink", action="store_true",
        help="skip ddmin minimization of failing cases",
    )
    p_st.add_argument(
        "--replay", default=None, metavar="DIR",
        help="replay a reproducer directory instead of running a campaign; "
             "exits non-zero iff oracle violations remain",
    )
    p_st.set_defaults(fn=_cmd_stress)

    p_srv = sub.add_parser(
        "serve", parents=[common],
        help="run the long-lived reconstruction daemon (ingest + queries)",
    )
    p_srv.add_argument(
        "--logs", default=None, metavar="DIR",
        help="store directory: supplies deployment metadata and the default "
             "checkpoint location (shards are NOT preloaded)",
    )
    p_srv.add_argument("--host", default="127.0.0.1")
    p_srv.add_argument(
        "--port", type=int, default=7442,
        help="TCP ingest port (0: OS-assigned; see --print-ports)",
    )
    p_srv.add_argument(
        "--unix-socket", default=None, metavar="PATH",
        help="additionally listen for ingest on a unix socket",
    )
    p_srv.add_argument("--http-host", default="127.0.0.1")
    p_srv.add_argument(
        "--http-port", type=int, default=7443,
        help="HTTP/JSON query port (0: OS-assigned)",
    )
    p_srv.add_argument(
        "--checkpoint", default=None, metavar="FILE",
        help="checkpoint file (default: <store>/refill-checkpoint.json)",
    )
    p_srv.add_argument(
        "--checkpoint-interval", type=float, default=30.0, metavar="SECS",
        help="periodic checkpoint cadence; 0 = only on demand/shutdown",
    )
    p_srv.add_argument(
        "--flush-interval", type=float, default=0.5, metavar="SECS",
        help="idle gap after which dirty flows are refreshed",
    )
    p_srv.add_argument(
        "--batch-size", type=int, default=256, metavar="K",
        help="session batch size (as in refill analyze)",
    )
    p_srv.add_argument(
        "--queue-batches", type=int, default=64, metavar="N",
        help="bounded ingest queue depth; a full queue throttles producers",
    )
    p_srv.add_argument(
        "--batch-lines", type=int, default=512, metavar="N",
        help="max lines per queued ingest batch",
    )
    p_srv.add_argument(
        "--tail", action="append", default=None, metavar="FILE",
        help="also tail FILE for newly completed lines (repeatable)",
    )
    p_srv.add_argument(
        "--tail-interval", type=float, default=0.25, metavar="SECS",
    )
    p_srv.add_argument(
        "--delivery-node", type=int, default=None, metavar="NODE",
        help="override the store metadata's base-station id",
    )
    p_srv.add_argument(
        "--print-ports", action="store_true",
        help="print each bound listener as its own flushed JSON line on "
             "stdout at startup (one object per listener, incl. per-shard "
             "listeners with --shards > 1)",
    )
    p_srv.add_argument(
        "--shards", type=int, default=1, metavar="N",
        help="shard workers: 1 = single-process daemon (default); N > 1 = "
             "router + N subprocess workers partitioned by packet key, "
             "byte-identical output either way",
    )
    p_srv.add_argument(
        "--metrics-out", default=None, metavar="FILE",
        help="write the final metrics snapshot on graceful shutdown "
             "(same JSON contract as `refill analyze --metrics-out`)",
    )
    p_srv.add_argument(
        "--trace-out", default=None, metavar="FILE",
        help="dump the flight recorder as JSON Lines on graceful shutdown",
    )
    p_srv.add_argument(
        "--trace-capacity", type=int, default=1024, metavar="N",
        help="flight-recorder ring size (recent spans/events retained)",
    )
    p_srv.set_defaults(fn=_cmd_serve)

    p_push = sub.add_parser(
        "push", parents=[common],
        help="push a store's shards to a running refill serve daemon",
    )
    p_push.add_argument("--logs", default="citysee-logs")
    p_push.add_argument("--host", default="127.0.0.1")
    p_push.add_argument("--port", type=int, default=7442)
    p_push.add_argument(
        "--unix-socket", default=None, metavar="PATH",
        help="connect over a unix socket instead of TCP",
    )
    p_push.add_argument(
        "--source-prefix", default="", metavar="PREFIX",
        help="prepended to each shard's source name (disambiguates stores)",
    )
    p_push.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="push up to N sources concurrently (per-source ordering is "
             "preserved per connection, so results are identical)",
    )
    p_push.set_defaults(fn=_cmd_push)

    p_tr = sub.add_parser(
        "trace", parents=[common],
        help="print one packet's reconstructed flow",
    )
    p_tr.add_argument("--logs", default="citysee-logs")
    p_tr.add_argument("packet", help="packet key, e.g. p17.3")
    p_tr.set_defaults(fn=_cmd_trace)

    p_fig = sub.add_parser(
        "figures", parents=[common],
        help="render loss-scatter figures as SVG",
    )
    p_fig.add_argument("--logs", default="citysee-logs")
    p_fig.add_argument("--out", default="figures")
    p_fig.set_defaults(fn=_cmd_figures)
    return parser


def _version_string() -> str:
    """Installed distribution version, falling back to the source tree's.

    The fallback matters because the test suite (and ``PYTHONPATH=src``
    users) run the package without installing it.
    """
    from importlib import metadata

    try:
        return metadata.version("repro")
    except metadata.PackageNotFoundError:
        from repro import __version__

        return __version__


def main(argv: Optional[list[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    level = INFO
    if getattr(args, "verbose", False):
        level = DEBUG
    if getattr(args, "quiet", False):
        level = ERROR
    configure_logging(level, json_lines=getattr(args, "log_json", False))
    try:
        return args.fn(args)
    except BrokenPipeError:
        # `refill analyze | head`: the reader closed stdout mid-print.  Die
        # quietly like a well-behaved filter — point the stdout fd at
        # /dev/null so the interpreter's exit-time flush cannot raise (and
        # print a noisy "Exception ignored" traceback), and exit 141
        # (128 + SIGPIPE), the conventional pipe-death status.
        devnull = os.open(os.devnull, os.O_WRONLY)
        try:
            os.dup2(devnull, sys.stdout.fileno())
        except (OSError, ValueError):
            pass  # stdout already closed or not a real fd
        finally:
            os.close(devnull)
        return 141


if __name__ == "__main__":  # pragma: no cover - exercised via tests/cli
    raise SystemExit(main())
