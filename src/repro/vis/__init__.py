"""Dependency-free SVG rendering of the paper's figures.

The benchmarks print ASCII series; this package additionally renders the
actual pictures — the Fig. 4/5 loss scatters, the Fig. 6 stacked per-day
composition, the Fig. 8 spatial circle map — as standalone SVG files, with
no plotting library required.
"""

from repro.vis.svg import SvgCanvas
from repro.vis.figures import (
    render_scatter_svg,
    render_spatial_svg,
    render_stacked_days_svg,
)

__all__ = [
    "SvgCanvas",
    "render_scatter_svg",
    "render_spatial_svg",
    "render_stacked_days_svg",
]
