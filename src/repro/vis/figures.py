"""SVG renderers for the paper's figures.

Each function takes the same data series the benchmarks assert on and
produces a standalone SVG string (see ``examples/citysee_figures.py`` and
the ``--svg`` options of the benchmarks' emit files).
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

from repro.analysis.spatial import SpatialPoint
from repro.core.diagnosis import LossCause
from repro.vis.svg import Extent, SvgCanvas

#: Stable per-cause colors across all figures.
CAUSE_COLORS: dict[LossCause, str] = {
    LossCause.SERVER_OUTAGE: "#7f7f7f",
    LossCause.RECEIVED_LOSS: "#1f77b4",
    LossCause.ACKED_LOSS: "#ff7f0e",
    LossCause.TIMEOUT_LOSS: "#d62728",
    LossCause.DUP_LOSS: "#9467bd",
    LossCause.OVERFLOW_LOSS: "#2ca02c",
    LossCause.UNKNOWN: "#bcbd22",
}


def _legend(canvas: SvgCanvas, causes: Sequence[LossCause]) -> None:
    x = canvas.width - canvas.margin - 130
    y = canvas.margin + 8
    for cause in causes:
        canvas.rect_raw(x, y - 8, 10, 10, fill=CAUSE_COLORS[cause])
        canvas.text(x + 16, y + 1, str(cause), size=11, raw=True)
        y += 16


def render_scatter_svg(
    points: Sequence[tuple[float, int, LossCause]],
    *,
    title: str,
    x_label: str = "time",
    y_label: str = "node id",
    width: int = 860,
    height: int = 520,
) -> str:
    """Figs. 4/5: loss markers on (time, node) with per-cause colors."""
    canvas = SvgCanvas(width, height)
    if not points:
        canvas.title(title + " (no losses)")
        return canvas.to_svg()
    xs = [t for t, _, _ in points]
    ys = [n for _, n, _ in points]
    canvas.extent = Extent(
        min(xs), max(xs) + 1e-9 + (max(xs) - min(xs) or 1.0) * 0.02,
        min(ys) - 1, max(ys) + 1,
    )
    canvas.title(title)
    canvas.axes(x_label=x_label, y_label=y_label)
    for t, node, cause in points:
        canvas.circle(t, node, 2.4, fill=CAUSE_COLORS[cause], opacity=0.75)
    _legend(canvas, sorted({c for _, _, c in points}, key=list(CAUSE_COLORS).index))
    return canvas.to_svg()


def render_spatial_svg(
    points: Sequence[SpatialPoint],
    *,
    positions: Mapping[int, tuple[float, float]],
    title: str = "Fig. 8 — spatial distribution of received losses",
    width: int = 700,
    height: int = 700,
    max_radius: float = 28.0,
) -> str:
    """Fig. 8: circle radius = loss count; triangle marks the sink."""
    canvas = SvgCanvas(width, height)
    xs = [p[0] for p in positions.values()]
    ys = [p[1] for p in positions.values()]
    pad_x = (max(xs) - min(xs) or 1.0) * 0.05
    pad_y = (max(ys) - min(ys) or 1.0) * 0.05
    canvas.extent = Extent(min(xs) - pad_x, max(xs) + pad_x, min(ys) - pad_y, max(ys) + pad_y)
    canvas.title(title)
    canvas.axes(x_label="x (m)", y_label="y (m)")
    for _node, (x, y) in positions.items():
        canvas.circle(x, y, 1.5, fill="#cccccc")
    top = max((p.count for p in points), default=1)
    for point in points:
        radius = 3.0 + (point.count / top) * max_radius
        canvas.circle(point.x, point.y, radius, fill="#1f77b4", opacity=0.45)
    for point in points:
        if point.is_sink:
            canvas.triangle(point.x, point.y, 8.0, fill="#d62728")
            canvas.text(point.x, point.y, f"  sink: {point.count}", size=12)
    return canvas.to_svg()


def render_stacked_days_svg(
    days: Sequence[Mapping[LossCause, int]],
    *,
    title: str = "Fig. 6 — loss composition over days",
    width: int = 900,
    height: int = 460,
    annotations: Optional[Mapping[int, str]] = None,
) -> str:
    """Fig. 6: per-day stacked bars by cause."""
    canvas = SvgCanvas(width, height)
    n = len(days)
    totals = [sum(day.values()) for day in days]
    top = max(totals) if totals else 1
    canvas.extent = Extent(-0.5, max(n - 0.5, 0.5), 0, top * 1.08 or 1)
    canvas.title(title)
    canvas.axes(x_label="day", y_label="losses")
    inner_width = canvas.width - 2 * canvas.margin
    bar_px = max(2.0, inner_width / max(n, 1) * 0.8)
    causes = [c for c in CAUSE_COLORS if any(day.get(c) for day in days)]
    for index, day in enumerate(days):
        stack = 0
        for cause in causes:
            count = day.get(cause, 0)
            if not count:
                continue
            y_top = stack + count
            height_px = canvas.py(stack) - canvas.py(y_top)
            canvas.rect(index - 0.4, y_top, bar_px, height_px, fill=CAUSE_COLORS[cause])
            stack = y_top
        if annotations and index in annotations:
            canvas.text(index, top * 1.04, annotations[index], size=10, anchor="middle")
    _legend(canvas, causes)
    return canvas.to_svg()
