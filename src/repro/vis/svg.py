"""A minimal SVG canvas (no external plotting dependency).

Just enough primitives for the figure renderers: circles, rectangles,
lines, text, and a linear data-to-pixel mapping with margins.
"""

from __future__ import annotations

import html
from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True, slots=True)
class Extent:
    """Data-space bounds mapped onto the drawing area."""

    x_min: float
    x_max: float
    y_min: float
    y_max: float

    def __post_init__(self) -> None:
        if self.x_max <= self.x_min or self.y_max <= self.y_min:
            raise ValueError("extent must have positive span on both axes")


class SvgCanvas:
    """Accumulates SVG elements and serializes to a document."""

    def __init__(
        self,
        width: int = 800,
        height: int = 500,
        *,
        extent: Optional[Extent] = None,
        margin: int = 50,
    ) -> None:
        self.width = width
        self.height = height
        self.margin = margin
        self.extent = extent
        self._elements: list[str] = []

    # ------------------------------------------------------------------ #
    # coordinate mapping (y axis flipped: data up = screen up)

    def px(self, x: float) -> float:
        """Map data x to pixel x."""
        if self.extent is None:
            return x
        span = self.extent.x_max - self.extent.x_min
        inner = self.width - 2 * self.margin
        return self.margin + (x - self.extent.x_min) / span * inner

    def py(self, y: float) -> float:
        """Map data y to pixel y (flipped)."""
        if self.extent is None:
            return y
        span = self.extent.y_max - self.extent.y_min
        inner = self.height - 2 * self.margin
        return self.height - self.margin - (y - self.extent.y_min) / span * inner

    # ------------------------------------------------------------------ #
    # primitives (data coordinates unless suffixed _raw)

    def circle(self, x: float, y: float, r: float, *, fill: str, opacity: float = 1.0) -> None:
        """Filled circle at data coordinates."""
        self._elements.append(
            f'<circle cx="{self.px(x):.1f}" cy="{self.py(y):.1f}" r="{r:.1f}" '
            f'fill="{fill}" fill-opacity="{opacity}"/>'
        )

    def rect(self, x: float, y: float, w_px: float, h_px: float, *, fill: str) -> None:
        """Rectangle anchored at data point (x, y) growing down-right in px."""
        self._elements.append(
            f'<rect x="{self.px(x):.1f}" y="{self.py(y):.1f}" width="{w_px:.1f}" '
            f'height="{h_px:.1f}" fill="{fill}"/>'
        )

    def rect_raw(self, x: float, y: float, w: float, h: float, *, fill: str) -> None:
        """Rectangle in raw pixel coordinates."""
        self._elements.append(
            f'<rect x="{x:.1f}" y="{y:.1f}" width="{w:.1f}" height="{h:.1f}" fill="{fill}"/>'
        )

    def line(self, x1: float, y1: float, x2: float, y2: float, *, stroke: str = "#999", width: float = 1.0) -> None:
        """Line between two data points."""
        self._elements.append(
            f'<line x1="{self.px(x1):.1f}" y1="{self.py(y1):.1f}" '
            f'x2="{self.px(x2):.1f}" y2="{self.py(y2):.1f}" '
            f'stroke="{stroke}" stroke-width="{width}"/>'
        )

    def text(self, x: float, y: float, content: str, *, size: int = 12, anchor: str = "start", raw: bool = False) -> None:
        """Text at data (or raw pixel) coordinates, XML-escaped."""
        sx = x if raw else self.px(x)
        sy = y if raw else self.py(y)
        self._elements.append(
            f'<text x="{sx:.1f}" y="{sy:.1f}" font-size="{size}" '
            f'font-family="sans-serif" text-anchor="{anchor}">{html.escape(content)}</text>'
        )

    def triangle(self, x: float, y: float, size: float, *, fill: str) -> None:
        """Upward triangle marker at data coordinates."""
        cx, cy = self.px(x), self.py(y)
        points = f"{cx},{cy - size} {cx - size},{cy + size} {cx + size},{cy + size}"
        self._elements.append(f'<polygon points="{points}" fill="{fill}"/>')

    def axes(self, *, x_label: str = "", y_label: str = "") -> None:
        """Plot frame with optional axis labels."""
        m = self.margin
        self.rect_raw(m, m, self.width - 2 * m, self.height - 2 * m, fill="none")
        self._elements.append(
            f'<rect x="{m}" y="{m}" width="{self.width - 2 * m}" '
            f'height="{self.height - 2 * m}" fill="none" stroke="#333"/>'
        )
        if x_label:
            self.text(self.width / 2, self.height - 12, x_label, anchor="middle", raw=True)
        if y_label:
            self._elements.append(
                f'<text x="14" y="{self.height / 2:.1f}" font-size="12" '
                f'font-family="sans-serif" text-anchor="middle" '
                f'transform="rotate(-90 14 {self.height / 2:.1f})">{html.escape(y_label)}</text>'
            )

    def title(self, content: str) -> None:
        """Centered title line."""
        self.text(self.width / 2, 24, content, size=15, anchor="middle", raw=True)

    # ------------------------------------------------------------------ #

    def to_svg(self) -> str:
        """Serialize to a standalone SVG document."""
        body = "\n".join(self._elements)
        return (
            f'<svg xmlns="http://www.w3.org/2000/svg" width="{self.width}" '
            f'height="{self.height}" viewBox="0 0 {self.width} {self.height}">\n'
            f'<rect width="{self.width}" height="{self.height}" fill="white"/>\n'
            f"{body}\n</svg>\n"
        )

    def save(self, path) -> None:
        """Write the SVG document to ``path``."""
        from pathlib import Path

        Path(path).write_text(self.to_svg())
