"""Per-node local logs.

A :class:`NodeLog` is the ordered sequence of events one node managed to
record.  The *within-node* order is trustworthy (a node appends to its own
log), the *across-node* order is not — nodes are unsynchronized and REFILL
must recover the global ordering (paper §II, §III "Unsynchronized events").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.events.event import Event
from repro.events.packet import PacketKey


@dataclass(frozen=True, slots=True)
class LogRecord:
    """One surviving log entry: an event plus its position in the node log.

    ``index`` is the append position *in the surviving log* (0-based and
    contiguous); gaps caused by log loss are invisible to the analyzer, which
    is exactly the paper's setting.
    """

    index: int
    event: Event


class NodeLog:
    """Append-only local log of a single node.

    The log preserves append order.  Collected logs may be arbitrarily
    incomplete: records can be missing anywhere (write failures), from the
    tail (crash), or the whole log can be absent (paper Table II, case 1).
    """

    def __init__(self, node: int, events: Iterable[Event] = ()) -> None:
        self.node = int(node)
        self._events: list[Event] = []
        for event in events:
            self.append(event)

    def append(self, event: Event) -> None:
        """Append ``event``; it must belong to this node's location."""
        if event.node != self.node:
            raise ValueError(
                f"event located at node {event.node} cannot be appended to the log of node {self.node}"
            )
        self._events.append(event)

    def records(self) -> list[LogRecord]:
        """Surviving records with their (post-loss) positions."""
        return [LogRecord(i, e) for i, e in enumerate(self._events)]

    @property
    def events(self) -> tuple[Event, ...]:
        return tuple(self._events)

    def packets(self) -> set[PacketKey]:
        """All packet keys mentioned in this log."""
        return {e.packet for e in self._events if e.packet is not None}

    def filtered(self, keep: Iterable[bool]) -> "NodeLog":
        """A copy keeping only events whose ``keep`` flag is true.

        Used by the lossy-log substrate to apply record-level loss while
        preserving order.
        """
        keep = list(keep)
        if len(keep) != len(self._events):
            raise ValueError("keep mask length must equal log length")
        return NodeLog(self.node, (e for e, k in zip(self._events, keep) if k))

    def truncated(self, length: int) -> "NodeLog":
        """A copy keeping only the first ``length`` records (crash tail loss)."""
        if length < 0:
            raise ValueError("length must be non-negative")
        return NodeLog(self.node, self._events[:length])

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self._events)

    def __getitem__(self, index: int) -> Event:
        return self._events[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, NodeLog):
            return NotImplemented
        return self.node == other.node and self._events == other._events

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"NodeLog(node={self.node}, n={len(self)})"
