"""On-disk log store: the directory format shared by the CLI and examples.

A store directory holds one ``node_<id>.log`` text file per node (the
:mod:`repro.events.codec` line format) plus an ``operations.json`` with the
deployment metadata the analysis layer needs (sink/base-station ids, the
sensing period, the server-outage operations log).

Field data is dirty: ``load_store`` defaults to *tolerant* decoding, where
undecodable lines (truncated flash pages, bit flips) are counted and
skipped instead of aborting the whole analysis.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass, field
from typing import Iterator, Mapping

from repro.events.codec import DecodeIssue, encode_log, scan_log_bytes
from repro.events.event import Event
from repro.events.log import NodeLog


@dataclass
class StoreMetadata:
    """Deployment facts recorded alongside the logs."""

    sink: int
    base_station: int
    gen_interval: float
    outages: tuple[tuple[float, float], ...] = ()
    extra: dict = field(default_factory=dict)

    def to_json(self) -> dict:
        return {
            "sink": self.sink,
            "base_station": self.base_station,
            "gen_interval": self.gen_interval,
            "outages": [list(w) for w in self.outages],
            **self.extra,
        }

    @classmethod
    def from_json(cls, data: Mapping) -> "StoreMetadata":
        known = {"sink", "base_station", "gen_interval", "outages"}
        return cls(
            sink=int(data["sink"]),
            base_station=int(data["base_station"]),
            gen_interval=float(data["gen_interval"]),
            outages=tuple((float(a), float(b)) for a, b in data.get("outages", [])),
            extra={k: v for k, v in data.items() if k not in known},
        )


@dataclass
class LoadedStore:
    """Result of reading a store directory."""

    logs: dict[int, NodeLog]
    metadata: StoreMetadata
    #: Per-node count of lines that failed to decode (tolerant mode).
    corrupt_lines: dict[int, int] = field(default_factory=dict)

    @property
    def total_events(self) -> int:
        return sum(len(log) for log in self.logs.values())


def shard_path(directory, node: int) -> pathlib.Path:
    """Path of one node's log shard inside a store directory.

    The single place the ``node_<id>.log`` naming convention lives — the
    store writer/loaders and the fault-injection harness all resolve shard
    files through it.
    """
    return pathlib.Path(directory) / f"node_{node:04d}.log"


def save_store(
    directory, logs: Mapping[int, NodeLog], metadata: StoreMetadata
) -> pathlib.Path:
    """Write logs + metadata; returns the directory path."""
    path = pathlib.Path(directory)
    path.mkdir(parents=True, exist_ok=True)
    for node, log in sorted(logs.items()):
        shard_path(path, node).write_text(encode_log(log) + "\n")
    (path / "operations.json").write_text(
        json.dumps(metadata.to_json(), indent=2) + "\n"
    )
    return path


def load_store_metadata(directory) -> StoreMetadata:
    """Read just the ``operations.json`` of a store directory."""
    path = pathlib.Path(directory)
    return StoreMetadata.from_json(json.loads((path / "operations.json").read_text()))


def _decode_shard(
    file: pathlib.Path, node: int, *, strict: bool
) -> tuple[NodeLog, int]:
    """Decode one ``node_*.log`` file: ``(log, bad_line_count)``."""
    events: list[Event] = []
    bad = 0
    # bytes in, tolerant scan: the ASCII fast path frames and tokenizes the
    # raw buffer without a per-field str decode (see codec.scan_log_bytes)
    for _lineno, decoded in scan_log_bytes(file.read_bytes()):
        if isinstance(decoded, DecodeIssue):
            if strict:
                raise ValueError(decoded.error)
            bad += 1
            continue
        if decoded.node != node:
            if strict:
                raise ValueError(
                    f"event node {decoded.node} in file of node {node}"
                )
            bad += 1
            continue
        events.append(decoded)
    return NodeLog(node, events), bad


def iter_store_logs(
    directory, *, strict: bool = False
) -> Iterator[tuple[int, NodeLog, int]]:
    """Decode one ``node_*.log`` shard at a time: ``(node, log, bad_lines)``.

    Only one shard's events are alive per step — the streaming substrate for
    corpora that do not fit in memory.  ``strict`` matches
    :func:`load_store`: ``False`` skips undecodable / misfiled lines and
    counts them, ``True`` raises on the first.
    """
    path = pathlib.Path(directory)
    for file in sorted(path.glob("node_*.log")):
        node = int(file.stem.split("_")[1])
        log, bad = _decode_shard(file, node, strict=strict)
        yield node, log, bad


def read_complete_lines(file, start_line: int = 0) -> list[str]:
    """Newline-*terminated* lines of a text file, from ``start_line`` (0-based).

    A trailing unterminated line (a writer caught mid-append) is excluded, so
    repeated polls that pass the previous total as ``start_line`` see every
    line exactly once — the offset substrate shared by the serve layer's file
    tailer and the resumable store-push client.  Undecodable bytes are
    replaced rather than raised (the tolerant scanner downstream counts the
    wreckage).
    """
    if start_line < 0:
        raise ValueError("start_line must be >= 0")
    parts = pathlib.Path(file).read_bytes().split(b"\n")
    # after split, the final piece is b"" iff the file ended in a newline;
    # anything else there is an unterminated partial line
    complete = parts[:-1]
    return [
        part.decode("utf-8", errors="replace").rstrip("\r")
        for part in complete[start_line:]
    ]


def load_store(directory, *, strict: bool = False) -> LoadedStore:
    """Read a store directory.

    ``strict=False`` (the default) skips undecodable lines and lines whose
    recorded node id disagrees with the file they sit in, counting them in
    ``corrupt_lines``; ``strict=True`` raises on the first bad line.
    """
    metadata = load_store_metadata(directory)
    logs: dict[int, NodeLog] = {}
    corrupt: dict[int, int] = {}
    for node, log, bad in iter_store_logs(directory, strict=strict):
        logs[node] = log
        if bad:
            corrupt[node] = bad
    return LoadedStore(logs=logs, metadata=metadata, corrupt_lines=corrupt)


class ShardedStore:
    """Re-scannable shard-at-a-time view of a store directory.

    Satisfies the :class:`repro.events.merge.LogSource` protocol: every
    :meth:`iter_logs` call decodes the ``node_*.log`` files afresh, one at a
    time, so a :class:`~repro.core.session.ReconstructionSession` in
    streaming mode can reconstruct a corpus far larger than memory —
    repeated scans trade CPU for a bounded working set.

    ``corrupt_lines`` holds the per-node bad-line counts of the *latest*
    completed pass (tolerant mode only; counts are per pass, not summed).
    """

    def __init__(self, directory, *, strict: bool = False) -> None:
        self.directory = pathlib.Path(directory)
        self.strict = strict
        self.metadata = load_store_metadata(self.directory)
        self.corrupt_lines: dict[int, int] = {}

    def nodes(self) -> list[int]:
        """Node ids present, from file names alone (no decoding)."""
        return sorted(
            int(f.stem.split("_")[1]) for f in self.directory.glob("node_*.log")
        )

    def iter_logs(self) -> Iterator[tuple[int, NodeLog]]:
        corrupt: dict[int, int] = {}
        for node, log, bad in iter_store_logs(self.directory, strict=self.strict):
            if bad:
                corrupt[node] = bad
            yield node, log
        self.corrupt_lines = corrupt

    def load_node(self, node: int) -> NodeLog:
        """Decode a single node's shard (empty log when the file is absent)."""
        file = shard_path(self.directory, node)
        if not file.exists():
            return NodeLog(node)
        log, _bad = _decode_shard(file, node, strict=self.strict)
        return log

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ShardedStore({str(self.directory)!r})"
