"""On-disk log store: the directory format shared by the CLI and examples.

A store directory holds one ``node_<id>.log`` text file per node (the
:mod:`repro.events.codec` line format) plus an ``operations.json`` with the
deployment metadata the analysis layer needs (sink/base-station ids, the
sensing period, the server-outage operations log).

Field data is dirty: ``load_store`` defaults to *tolerant* decoding, where
undecodable lines (truncated flash pages, bit flips) are counted and
skipped instead of aborting the whole analysis.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass, field
from typing import Mapping

from repro.events.codec import DecodeIssue, encode_log, scan_log_text
from repro.events.event import Event
from repro.events.log import NodeLog


@dataclass
class StoreMetadata:
    """Deployment facts recorded alongside the logs."""

    sink: int
    base_station: int
    gen_interval: float
    outages: tuple[tuple[float, float], ...] = ()
    extra: dict = field(default_factory=dict)

    def to_json(self) -> dict:
        return {
            "sink": self.sink,
            "base_station": self.base_station,
            "gen_interval": self.gen_interval,
            "outages": [list(w) for w in self.outages],
            **self.extra,
        }

    @classmethod
    def from_json(cls, data: Mapping) -> "StoreMetadata":
        known = {"sink", "base_station", "gen_interval", "outages"}
        return cls(
            sink=int(data["sink"]),
            base_station=int(data["base_station"]),
            gen_interval=float(data["gen_interval"]),
            outages=tuple((float(a), float(b)) for a, b in data.get("outages", [])),
            extra={k: v for k, v in data.items() if k not in known},
        )


@dataclass
class LoadedStore:
    """Result of reading a store directory."""

    logs: dict[int, NodeLog]
    metadata: StoreMetadata
    #: Per-node count of lines that failed to decode (tolerant mode).
    corrupt_lines: dict[int, int] = field(default_factory=dict)

    @property
    def total_events(self) -> int:
        return sum(len(log) for log in self.logs.values())


def save_store(
    directory, logs: Mapping[int, NodeLog], metadata: StoreMetadata
) -> pathlib.Path:
    """Write logs + metadata; returns the directory path."""
    path = pathlib.Path(directory)
    path.mkdir(parents=True, exist_ok=True)
    for node, log in sorted(logs.items()):
        (path / f"node_{node:04d}.log").write_text(encode_log(log) + "\n")
    (path / "operations.json").write_text(
        json.dumps(metadata.to_json(), indent=2) + "\n"
    )
    return path


def load_store(directory, *, strict: bool = False) -> LoadedStore:
    """Read a store directory.

    ``strict=False`` (the default) skips undecodable lines and lines whose
    recorded node id disagrees with the file they sit in, counting them in
    ``corrupt_lines``; ``strict=True`` raises on the first bad line.
    """
    path = pathlib.Path(directory)
    metadata = StoreMetadata.from_json(
        json.loads((path / "operations.json").read_text())
    )
    logs: dict[int, NodeLog] = {}
    corrupt: dict[int, int] = {}
    for file in sorted(path.glob("node_*.log")):
        node = int(file.stem.split("_")[1])
        events: list[Event] = []
        bad = 0
        for _lineno, decoded in scan_log_text(file.read_text()):
            if isinstance(decoded, DecodeIssue):
                if strict:
                    raise ValueError(decoded.error)
                bad += 1
                continue
            if decoded.node != node:
                if strict:
                    raise ValueError(
                        f"event node {decoded.node} in file of node {node}"
                    )
                bad += 1
                continue
            events.append(decoded)
        logs[node] = NodeLog(node, events)
        if bad:
            corrupt[node] = bad
    return LoadedStore(logs=logs, metadata=metadata, corrupt_lines=corrupt)
