"""The event model ``E = (V, L, I)`` (paper §II, Table I).

``V`` is the event type, ``L`` the location (the node whose log recorded the
event) and ``I`` the related information — for the sender-receiver events of
Table I this is the (sender, receiver) pair plus the packet key.  Occurrence
time is optional: REFILL never requires it, but the simulator attaches true
times so analyses and ground-truth scoring can use them.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace
from typing import Any, Mapping, Optional

from repro.events.packet import PacketKey


class EventType(str, enum.Enum):
    """Event vocabulary used by the CTP forwarding FSM (paper Table I).

    The FSM layer is generic over event labels; these are the concrete labels
    used by the data-collection workload the paper evaluates.
    """

    #: Packet generated at its origin node (application layer). Recorded on
    #: the origin.  Plays the role of "the node has the packet".
    GEN = "gen"
    #: ``n1-n2 recv`` — the packet from ``n1`` is received at ``n2``.
    #: Recorded on ``n2``.
    RECV = "recv"
    #: ``n1-n2 trans`` — the packet is transmitted by ``n1`` to ``n2``.
    #: Recorded on ``n1``.
    TRANS = "trans"
    #: ``n1-n2 ack recvd`` — an acknowledgement for the ``n1``→``n2``
    #: transmission is received.  Recorded on ``n1``.
    ACK = "ack_recvd"
    #: ``n1-n2 dup`` — a duplicated packet is received by ``n2`` from ``n1``
    #: (duplicate-cache hit; often due to routing loops).  Recorded on ``n2``.
    DUP = "dup"
    #: ``n1-n2 overflow`` — no queue space on ``n2`` for the packet from
    #: ``n1``; the packet is discarded.  Recorded on ``n2``.
    OVERFLOW = "overflow"
    #: Retransmission timeout on the sender after the retry budget is
    #: exhausted.  Recorded on the sender.
    TIMEOUT = "timeout"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


#: Event types recorded on (and attributed to) the *sender* of the pair.
SENDER_SIDE_EVENTS = frozenset({EventType.TRANS.value, EventType.ACK.value, EventType.TIMEOUT.value})

#: Event types recorded on (and attributed to) the *receiver* of the pair.
RECEIVER_SIDE_EVENTS = frozenset({EventType.RECV.value, EventType.DUP.value, EventType.OVERFLOW.value})


def _freeze_info(info: Optional[Mapping[str, Any]]) -> tuple[tuple[str, Any], ...]:
    if not info:
        return ()
    return tuple(sorted(info.items()))


@dataclass(frozen=True, slots=True)
class Event:
    """A single logged (or inferred) event.

    Attributes
    ----------
    etype:
        Event type ``V`` (a string label; :class:`EventType` values for the
        data-collection workload, arbitrary labels for custom FSMs).
    node:
        Location ``L``: id of the node whose log the event belongs to.
    src, dst:
        Sender/receiver pair for sender-receiver events (``None`` when the
        event is node-local and has no peer).
    packet:
        Packet the event refers to, when applicable.
    time:
        Optional occurrence time.  True simulator time for ground-truth
        events, *local skewed clock* readings in collected logs, ``None`` for
        inferred events.  Inference never reads this field.
    info:
        Extra related information ``I`` as an immutable sorted tuple of
        ``(key, value)`` pairs.
    """

    etype: str
    node: int
    src: Optional[int] = None
    dst: Optional[int] = None
    packet: Optional[PacketKey] = None
    time: Optional[float] = None
    info: tuple[tuple[str, Any], ...] = ()

    @classmethod
    def make(
        cls,
        etype: str | EventType,
        node: int,
        *,
        src: Optional[int] = None,
        dst: Optional[int] = None,
        packet: Optional[PacketKey] = None,
        time: Optional[float] = None,
        **info: Any,
    ) -> "Event":
        """Build an event, freezing ``info`` keyword arguments."""
        if isinstance(etype, EventType):
            etype = etype.value
        return cls(
            etype=etype,
            node=node,
            src=src,
            dst=dst,
            packet=packet,
            time=time,
            info=_freeze_info(info),
        )

    @property
    def info_dict(self) -> dict[str, Any]:
        """Related information as a plain dict."""
        return dict(self.info)

    @property
    def peer(self) -> Optional[int]:
        """The counterpart node of a sender-receiver event.

        For an event recorded on the sender the peer is the receiver and vice
        versa; ``None`` for node-local events.
        """
        if self.src is None or self.dst is None:
            return None
        return self.dst if self.node == self.src else self.src

    def with_time(self, time: Optional[float]) -> "Event":
        """Copy of this event with a different timestamp."""
        return replace(self, time=time)

    def without_time(self) -> "Event":
        """Copy of this event with the timestamp stripped."""
        return replace(self, time=None)

    def pair_label(self) -> str:
        """Human-readable ``n1-n2 etype`` label matching the paper's notation."""
        name = "ack recvd" if self.etype == EventType.ACK.value else self.etype
        if self.src is not None and self.dst is not None:
            return f"{self.src}-{self.dst} {name}"
        return f"@{self.node} {name}"

    def __str__(self) -> str:  # pragma: no cover - repr convenience
        return self.pair_label()
