"""Packet identity.

CTP data packets carry their origin node id and a per-origin sequence number
(the THL/origin-seqno pair in real CTP headers).  REFILL groups log events by
this identity to reconstruct a per-packet event flow (paper §II: "The event
flow is to recover the correct order of all the events related to the same
packet in the network").
"""

from __future__ import annotations

from typing import NamedTuple


class PacketKey(NamedTuple):
    """Network-wide unique identity of a data packet.

    Attributes
    ----------
    origin:
        Node id of the node that generated the packet.
    seq:
        Monotonically increasing per-origin sequence number.
    """

    origin: int
    seq: int

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"p{self.origin}.{self.seq}"

    @classmethod
    def parse(cls, text: str) -> "PacketKey":
        """Parse the ``p<origin>.<seq>`` form produced by :meth:`__str__`."""
        if not text.startswith("p"):
            raise ValueError(f"not a packet key: {text!r}")
        origin_s, _, seq_s = text[1:].partition(".")
        try:
            return cls(int(origin_s), int(seq_s))
        except ValueError as exc:
            raise ValueError(f"not a packet key: {text!r}") from exc
