"""Event and log model (paper §II).

An event is a tuple ``E = (V, L, I)``: event type, location (the node that
recorded it) and related information (typically the sender/receiver pair and
the packet the event refers to).  Occurrence time is *optional* — REFILL's
inference never relies on it, matching the paper's assumption that nodes are
not synchronized.
"""

from repro.events.event import Event, EventType, SENDER_SIDE_EVENTS, RECEIVER_SIDE_EVENTS
from repro.events.packet import PacketKey
from repro.events.log import LogRecord, NodeLog
from repro.events.codec import encode_event, decode_event, encode_log, decode_log
from repro.events.merge import (
    merge_logs,
    interleave_round_robin,
    group_by_packet,
    iter_packet_groups,
    split_collection_rounds,
)
from repro.events.store import ShardedStore, iter_store_logs, load_store, save_store

__all__ = [
    "iter_packet_groups",
    "split_collection_rounds",
    "ShardedStore",
    "iter_store_logs",
    "load_store",
    "save_store",
    "Event",
    "EventType",
    "SENDER_SIDE_EVENTS",
    "RECEIVER_SIDE_EVENTS",
    "PacketKey",
    "LogRecord",
    "NodeLog",
    "encode_event",
    "decode_event",
    "encode_log",
    "decode_log",
    "merge_logs",
    "interleave_round_robin",
    "group_by_packet",
]
