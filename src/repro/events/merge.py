"""Merging logs from different nodes (paper §IV, step 1).

"Logs containing events from different nodes are first merged with ordering
of events from the same node preserved."  No global clock exists, so the
merge only guarantees per-node subsequence preservation; the transition
algorithm later recovers the true cross-node ordering.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Mapping

from repro.events.event import Event
from repro.events.log import NodeLog
from repro.events.packet import PacketKey


def interleave_round_robin(logs: Mapping[int, NodeLog]) -> list[Event]:
    """Deterministic merge: round-robin over nodes in increasing id order.

    Preserves each node's internal order while making no claim about
    cross-node order — one valid "merged events" view of the collection
    (the reconstructor itself consumes per-node queues via
    :func:`group_by_packet`; this flat view serves inspection and export).
    """
    cursors = {node: 0 for node in sorted(logs)}
    merged: list[Event] = []
    remaining = sum(len(log) for log in logs.values())
    while remaining:
        progressed = False
        for node in sorted(cursors):
            log = logs[node]
            i = cursors[node]
            if i < len(log):
                merged.append(log[i])
                cursors[node] = i + 1
                remaining -= 1
                progressed = True
        if not progressed:  # pragma: no cover - defensive, cannot happen
            break
    return merged


def merge_logs(logs: Mapping[int, NodeLog]) -> dict[int, tuple[Event, ...]]:
    """Normalize a log collection into per-node ordered event tuples."""
    return {node: log.events for node, log in sorted(logs.items())}


def group_by_packet(
    logs: Mapping[int, NodeLog],
) -> dict[PacketKey, dict[int, list[Event]]]:
    """Group events by packet key, preserving per-node order inside groups.

    Events without a packet key (e.g. routing-beacon events) are ignored here;
    REFILL's per-packet flow reconstruction only consumes packet events.
    """
    grouped: dict[PacketKey, dict[int, list[Event]]] = defaultdict(dict)
    for node, log in sorted(logs.items()):
        for event in log:
            if event.packet is None:
                continue
            grouped[event.packet].setdefault(node, []).append(event)
    return dict(grouped)


def packets_in(logs: Mapping[int, NodeLog]) -> list[PacketKey]:
    """All packet keys mentioned anywhere, sorted by (origin, seq)."""
    keys: set[PacketKey] = set()
    for log in logs.values():
        keys |= log.packets()
    return sorted(keys)
