"""Merging logs from different nodes (paper §IV, step 1).

"Logs containing events from different nodes are first merged with ordering
of events from the same node preserved."  No global clock exists, so the
merge only guarantees per-node subsequence preservation; the transition
algorithm later recovers the true cross-node ordering.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterator, Mapping, Protocol, Union, runtime_checkable

from repro.events.event import Event
from repro.events.log import NodeLog
from repro.events.packet import PacketKey

#: One packet's evidence: per-node ordered event lists.
PacketGroup = tuple[PacketKey, dict[int, list[Event]]]


@runtime_checkable
class LogSource(Protocol):
    """Anything that can hand out per-node logs one shard at a time.

    ``iter_logs`` must be *re-iterable* (each call starts a fresh pass) —
    the bounded grouping in :func:`iter_packet_groups` scans the source
    once per key window, which is what lets a corpus larger than memory be
    reconstructed shard by shard (see
    :class:`repro.events.store.ShardedStore`).
    """

    def iter_logs(self) -> Iterator[tuple[int, NodeLog]]: ...


#: What the merge layer accepts: an in-memory collection or a shard source.
Logs = Union[Mapping[int, NodeLog], LogSource]


def iter_node_logs(logs: Logs) -> Iterator[tuple[int, NodeLog]]:
    """One pass over ``logs`` as ``(node, log)`` pairs, node order ascending
    for mappings (shard sources define their own order)."""
    if isinstance(logs, Mapping):
        for node in sorted(logs):
            yield node, logs[node]
    else:
        yield from logs.iter_logs()


def interleave_round_robin(logs: Mapping[int, NodeLog]) -> list[Event]:
    """Deterministic merge: round-robin over nodes in increasing id order.

    Preserves each node's internal order while making no claim about
    cross-node order — one valid "merged events" view of the collection
    (the reconstructor itself consumes per-node queues via
    :func:`group_by_packet`; this flat view serves inspection and export).
    """
    cursors = {node: 0 for node in sorted(logs)}
    merged: list[Event] = []
    remaining = sum(len(log) for log in logs.values())
    while remaining:
        progressed = False
        for node in sorted(cursors):
            log = logs[node]
            i = cursors[node]
            if i < len(log):
                merged.append(log[i])
                cursors[node] = i + 1
                remaining -= 1
                progressed = True
        if not progressed:  # pragma: no cover - defensive, cannot happen
            break
    return merged


def merge_logs(logs: Mapping[int, NodeLog]) -> dict[int, tuple[Event, ...]]:
    """Normalize a log collection into per-node ordered event tuples."""
    return {node: log.events for node, log in sorted(logs.items())}


def group_by_packet(
    logs: Logs,
) -> dict[PacketKey, dict[int, list[Event]]]:
    """Group events by packet key, preserving per-node order inside groups.

    Events without a packet key (e.g. routing-beacon events) are ignored here;
    REFILL's per-packet flow reconstruction only consumes packet events.
    """
    grouped: dict[PacketKey, dict[int, list[Event]]] = defaultdict(dict)
    for node, log in iter_node_logs(logs):
        for event in log:
            if event.packet is None:
                continue
            grouped[event.packet].setdefault(node, []).append(event)
    return dict(grouped)


def packets_in(logs: Logs) -> list[PacketKey]:
    """All packet keys mentioned anywhere, sorted by (origin, seq)."""
    keys: set[PacketKey] = set()
    for _node, log in iter_node_logs(logs):
        keys |= log.packets()
    return sorted(keys)


def iter_packet_groups(
    logs: Logs, *, batch_size: int = 256
) -> Iterator[list[PacketGroup]]:
    """Stream complete packet groups in sorted key order, ``batch_size`` at
    a time, without materializing the whole grouping.

    Pass 1 collects only the packet *keys* (a few dozen bytes per packet);
    each subsequent pass re-scans the logs and extracts the events of one
    key window.  Peak group memory is ``O(batch_size)`` instead of
    ``O(total packets)`` — with a re-scannable shard source
    (:class:`repro.events.store.ShardedStore`) the corpus never has to fit
    in memory at all.  The trade is ``ceil(packets / batch_size)`` scans
    over the logs, so callers pick the batch size to match their memory
    budget (the one-shot session path skips this and groups in one pass).

    Every yielded group is *complete*: all surviving evidence for that
    packet, per node, in log order — exactly what
    :func:`group_by_packet` would have produced for it.
    """
    if batch_size <= 0:
        raise ValueError("batch_size must be positive")
    keys = packets_in(logs)
    for start in range(0, len(keys), batch_size):
        window = keys[start : start + batch_size]
        wanted = set(window)
        grouped: dict[PacketKey, dict[int, list[Event]]] = {k: {} for k in window}
        for node, log in iter_node_logs(logs):
            for event in log:
                if event.packet is not None and event.packet in wanted:
                    grouped[event.packet].setdefault(node, []).append(event)
        yield [(key, grouped[key]) for key in window]


def split_collection_rounds(
    logs: Mapping[int, NodeLog], rounds: int
) -> Iterator[dict[int, list[Event]]]:
    """Split a collected log set into ``rounds`` per-node contiguous chunks.

    Models CTP collection delivering each node's surviving log in several
    round-trips: within one node the chunks preserve log order (round *i*
    holds records before round *i+1*'s), across nodes any interleaving is
    possible.  Feeding every round to a streaming session and refreshing at
    the end reproduces the one-shot reconstruction exactly — per-packet
    independence plus per-node order is all the reconstructor needs.
    """
    if rounds <= 0:
        raise ValueError("rounds must be positive")
    for i in range(rounds):
        batch: dict[int, list[Event]] = {}
        for node, log in sorted(logs.items()):
            n = len(log)
            lo = (n * i) // rounds
            hi = (n * (i + 1)) // rounds
            if hi > lo:
                batch[node] = list(log.events[lo:hi])
        if batch:
            yield batch
