"""Text codec for node logs.

The on-mote "event system" of the paper's implementation emits compact log
statements collected over CTP.  We mirror that with a line-oriented text
format so logs can be written to disk, shipped around and re-parsed:

``node=<L> type=<V> [src=<n1> dst=<n2>] [pkt=p<origin>.<seq>] [t=<time>] [k=v ...]``

Fields after ``type`` are optional; unknown keys round-trip through the
event's ``info`` mapping.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Iterator, Union

from repro.events.event import Event
from repro.events.log import NodeLog
from repro.events.packet import PacketKey

_RESERVED = ("node", "type", "src", "dst", "pkt", "t")


@dataclass(frozen=True, slots=True)
class DecodeIssue:
    """One line that failed tolerant decoding."""

    lineno: int
    line: str
    error: str


def scan_log_text(text: str) -> Iterator[tuple[int, Union[Event, DecodeIssue]]]:
    """Tolerantly decode ``text`` line by line.

    Yields ``(lineno, Event)`` for lines that parse and
    ``(lineno, DecodeIssue)`` for lines that do not (1-based line numbers;
    blank lines are skipped).  This is the shared scanner behind both the
    tolerant store loader and the ``refill check`` corpus lint, so the two
    always agree on what counts as a corrupt line.
    """
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            yield lineno, decode_event(line)
        except ValueError as exc:
            yield lineno, DecodeIssue(lineno, line, str(exc))


class LineAssembler:
    """Reassemble complete text lines from an arbitrary byte-chunk stream.

    Network ingest reads whatever chunk sizes the transport hands over; this
    keeps the unterminated tail until its newline arrives.  :meth:`feed`
    returns the newly *completed* lines, decoded as UTF-8 with undecodable
    bytes replaced — damaged input becomes a :class:`DecodeIssue` downstream
    instead of an exception here.  A line still unterminated when the peer
    disconnects is simply never returned (mid-line disconnects drop the
    fragment, they do not corrupt the stream).
    """

    __slots__ = ("_tail",)

    def __init__(self) -> None:
        self._tail = b""

    def feed(self, chunk: bytes) -> list[str]:
        data = self._tail + chunk
        if b"\n" not in data:
            self._tail = data
            return []
        *complete, self._tail = data.split(b"\n")
        return [
            part.decode("utf-8", errors="replace").rstrip("\r")
            for part in complete
        ]

    @property
    def partial(self) -> bool:
        """Whether a started-but-unterminated line is pending."""
        return bool(self._tail)


def _format_value(value: Any) -> str:
    text = str(value)
    if any(c.isspace() or c == "=" for c in text):
        raise ValueError(f"log value may not contain whitespace or '=': {value!r}")
    return text


def encode_event(event: Event) -> str:
    """Serialize one event to a single log line."""
    parts = [f"node={event.node}", f"type={event.etype}"]
    if event.src is not None:
        parts.append(f"src={event.src}")
    if event.dst is not None:
        parts.append(f"dst={event.dst}")
    if event.packet is not None:
        parts.append(f"pkt={event.packet}")
    if event.time is not None:
        parts.append(f"t={event.time!r}")
    for key, value in event.info:
        if key in _RESERVED:
            raise ValueError(f"info key {key!r} collides with a reserved field")
        parts.append(f"{key}={_format_value(value)}")
    return " ".join(parts)


def decode_event(line: str) -> Event:
    """Parse one log line back into an :class:`Event`.

    Values of unknown keys are kept as strings in ``info``.
    """
    fields: dict[str, str] = {}
    info: dict[str, str] = {}
    for token in line.split():
        key, sep, value = token.partition("=")
        if not sep:
            raise ValueError(f"malformed log token {token!r} in line {line!r}")
        target = fields if key in _RESERVED else info
        if key in target:
            raise ValueError(f"duplicate key {key!r} in line {line!r}")
        target[key] = value
    if "node" not in fields or "type" not in fields:
        raise ValueError(f"log line missing node/type: {line!r}")
    return Event.make(
        fields["type"],
        int(fields["node"]),
        src=int(fields["src"]) if "src" in fields else None,
        dst=int(fields["dst"]) if "dst" in fields else None,
        packet=PacketKey.parse(fields["pkt"]) if "pkt" in fields else None,
        time=float(fields["t"]) if "t" in fields else None,
        **info,
    )


def encode_log(log: NodeLog) -> str:
    """Serialize a whole node log, one event per line."""
    return "\n".join(encode_event(e) for e in log)


def decode_log(node: int, text: str) -> NodeLog:
    """Parse a node log; blank lines are skipped."""
    events = (decode_event(line) for line in text.splitlines() if line.strip())
    return NodeLog(node, events)


def decode_logs(blobs: Iterable[tuple[int, str]]) -> dict[int, NodeLog]:
    """Parse a collection of ``(node, text)`` blobs into logs keyed by node."""
    return {node: decode_log(node, text) for node, text in blobs}
