"""Text codec for node logs.

The on-mote "event system" of the paper's implementation emits compact log
statements collected over CTP.  We mirror that with a line-oriented text
format so logs can be written to disk, shipped around and re-parsed:

``node=<L> type=<V> [src=<n1> dst=<n2>] [pkt=p<origin>.<seq>] [t=<time>] [k=v ...]``

Fields after ``type`` are optional; unknown keys round-trip through the
event's ``info`` mapping.

Decoding is two-tiered.  A fast tokenizer handles the canonical field order
:func:`encode_event` emits (one whitespace split, positional field slices,
no intermediate dicts) and *refuses* anything irregular — out-of-order or
duplicate fields, malformed numbers, non-canonical spacing — by returning
``None``, at which point the legacy token-loop parser re-parses the line
with byte-identical accept/reject semantics and error messages.  The fast
path may only ever produce exactly the event the legacy parser would have
produced; equivalence is pinned by the differential corpus suite and the
Hypothesis properties in ``tests/events/``.
"""

from __future__ import annotations

import re
import sys
from dataclasses import dataclass
from typing import Any, Iterable, Iterator, Optional, Union

from repro.events.event import Event
from repro.events.log import NodeLog
from repro.events.packet import PacketKey

_RESERVED = ("node", "type", "src", "dst", "pkt", "t")
_RESERVED_SET = frozenset(_RESERVED)


@dataclass(frozen=True, slots=True)
class DecodeIssue:
    """One line that failed tolerant decoding."""

    lineno: int
    line: str
    error: str


def scan_log_text(text: str) -> Iterator[tuple[int, Union[Event, DecodeIssue]]]:
    """Tolerantly decode ``text`` line by line.

    Yields ``(lineno, Event)`` for lines that parse and
    ``(lineno, DecodeIssue)`` for lines that do not (1-based line numbers;
    blank lines are skipped).  This is the shared scanner behind both the
    tolerant store loader and the ``refill check`` corpus lint, so the two
    always agree on what counts as a corrupt line.
    """
    fast = _decode_fast
    strict = _decode_event_strict
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line or line.isspace():
            continue
        event = fast(line)
        if event is not None:
            yield lineno, event
        else:
            try:
                yield lineno, strict(line)
            except ValueError as exc:
                yield lineno, DecodeIssue(lineno, line, str(exc))


def scan_log_text_legacy(
    text: str,
) -> Iterator[tuple[int, Union[Event, DecodeIssue]]]:
    """The pre-tokenizer reference scanner (legacy token-loop parser only).

    Semantically identical to :func:`scan_log_text`; kept callable so the
    differential suites can pin the fast tokenizer against it byte for byte.
    """
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            yield lineno, _decode_event_strict(line)
        except ValueError as exc:
            yield lineno, DecodeIssue(lineno, line, str(exc))


#: Bytes whose line-framing or whitespace semantics differ between ``bytes``
#: and ``str`` (``str.splitlines`` breaks on \\v \\f \\x1c-\\x1e, and
#: \\x1c-\\x1f are ``str``-whitespace but not ``bytes``-whitespace).  Any
#: hit sends the whole buffer through the str scanner instead.
_EXOTIC_BYTES = re.compile(rb"[\r\x0b\x0c\x1c\x1d\x1e\x1f]")


def scan_log_bytes(data: bytes) -> Iterator[tuple[int, Union[Event, DecodeIssue]]]:
    """:func:`scan_log_text` over raw bytes, with a bytes-level fast path.

    One pre-scan decides whether the buffer is plain ASCII framed only by
    ``\\n``; if so, lines are framed and tokenized as bytes and each field
    is converted directly (``int``/``float`` accept ASCII bytes), so the
    only per-line str decode is the short event-type label — or, on any
    irregular line, the one-off decode feeding the legacy fallback.
    Buffers that fail the pre-scan take the exact legacy route
    (``data.decode("utf-8")`` + :func:`scan_log_text`), including its
    ``UnicodeDecodeError`` on undecodable input.
    """
    if not data.isascii() or _EXOTIC_BYTES.search(data) is not None:
        yield from scan_log_text(data.decode("utf-8"))
        return
    fast = _decode_fast_bytes
    strict = _decode_event_strict
    for lineno, raw in enumerate(data.split(b"\n"), start=1):
        if not raw or raw.isspace():
            continue
        event = fast(raw)
        if event is not None:
            yield lineno, event
        else:
            line = raw.decode("ascii")
            try:
                yield lineno, strict(line)
            except ValueError as exc:
                yield lineno, DecodeIssue(lineno, line, str(exc))


class LineAssembler:
    """Reassemble complete text lines from an arbitrary byte-chunk stream.

    Network ingest reads whatever chunk sizes the transport hands over; this
    keeps the unterminated tail until its newline arrives.  :meth:`feed`
    returns the newly *completed* lines, decoded as UTF-8 with undecodable
    bytes replaced — damaged input becomes a :class:`DecodeIssue` downstream
    instead of an exception here.  A line still unterminated when the peer
    disconnects is simply never returned (mid-line disconnects drop the
    fragment, they do not corrupt the stream).
    """

    __slots__ = ("_tail",)

    def __init__(self) -> None:
        self._tail = b""

    def feed(self, chunk: bytes) -> list[str]:
        data = self._tail + chunk
        if b"\n" not in data:
            self._tail = data
            return []
        *complete, self._tail = data.split(b"\n")
        return [
            part.decode("utf-8", errors="replace").rstrip("\r")
            for part in complete
        ]

    @property
    def partial(self) -> bool:
        """Whether a started-but-unterminated line is pending."""
        return bool(self._tail)


def _format_value(value: Any) -> str:
    text = str(value)
    if any(c.isspace() or c == "=" for c in text):
        raise ValueError(f"log value may not contain whitespace or '=': {value!r}")
    return text


def encode_event(event: Event) -> str:
    """Serialize one event to a single log line."""
    parts = [f"node={event.node}", f"type={event.etype}"]
    if event.src is not None:
        parts.append(f"src={event.src}")
    if event.dst is not None:
        parts.append(f"dst={event.dst}")
    if event.packet is not None:
        parts.append(f"pkt={event.packet}")
    if event.time is not None:
        parts.append(f"t={event.time!r}")
    for key, value in event.info:
        if key in _RESERVED:
            raise ValueError(f"info key {key!r} collides with a reserved field")
        parts.append(f"{key}={_format_value(value)}")
    return " ".join(parts)


def decode_event(line: str) -> Event:
    """Parse one log line back into an :class:`Event`.

    Values of unknown keys are kept as strings in ``info``.  Canonical
    lines take the fast tokenizer; anything irregular falls back to the
    legacy parser, which raises the same ``ValueError`` it always has.
    """
    event = _decode_fast(line)
    if event is not None:
        return event
    return _decode_event_strict(line)


def _decode_event_strict(line: str) -> Event:
    """The legacy token-loop parser — the codec's semantic reference.

    Every irregular line ends up here, so its accept/reject behavior and
    error messages define the format; the fast tokenizer may only shortcut
    lines this parser would accept with the identical result.
    """
    fields: dict[str, str] = {}
    info: dict[str, str] = {}
    for token in line.split():
        key, sep, value = token.partition("=")
        if not sep:
            raise ValueError(f"malformed log token {token!r} in line {line!r}")
        target = fields if key in _RESERVED else info
        if key in target:
            raise ValueError(f"duplicate key {key!r} in line {line!r}")
        target[key] = value
    if "node" not in fields or "type" not in fields:
        raise ValueError(f"log line missing node/type: {line!r}")
    return Event.make(
        fields["type"],
        int(fields["node"]),
        src=int(fields["src"]) if "src" in fields else None,
        dst=int(fields["dst"]) if "dst" in fields else None,
        packet=PacketKey.parse(fields["pkt"]) if "pkt" in fields else None,
        time=float(fields["t"]) if "t" in fields else None,
        **info,
    )


#: Interned event-type vocabulary: every decoded label becomes the one
#: shared string object, so downstream ``(state, label)`` table lookups hit
#: pointer-equality fast paths.  Sessions pre-register their template's
#: labels via :func:`intern_vocabulary`.
_LABELS: dict[Union[str, bytes], str] = {}

#: Memoized ``p<origin>.<seq>`` parses (``str`` and ``bytes`` spellings).
#: A corpus mentions each packet on many lines; parsing each key once makes
#: the pkt field a dict hit.  Bounded defensively — a long-lived daemon
#: fed unbounded distinct keys must not grow without limit.
_PACKETS: dict[Union[str, bytes], PacketKey] = {}
_PACKETS_MAX = 1 << 16


def intern_vocabulary(labels: Iterable[str]) -> None:
    """Pre-register event-type labels in the decoder's intern table."""
    for label in labels:
        label = sys.intern(label)
        _LABELS[label] = label
        if label.isascii():
            _LABELS[label.encode("ascii")] = label


def _intern_label(text: Union[str, bytes]) -> str:
    label = _LABELS.get(text)
    if label is None:
        label = sys.intern(text if isinstance(text, str) else text.decode("ascii"))
        if len(_LABELS) < _PACKETS_MAX:
            _LABELS[text] = label
    return label


def _parse_packet(text: Union[str, bytes]) -> PacketKey:
    packet = _PACKETS.get(text)
    if packet is None:
        if len(_PACKETS) >= _PACKETS_MAX:
            _PACKETS.clear()
        spelled = text if isinstance(text, str) else text.decode("ascii")
        packet = PacketKey.parse(spelled)  # ValueError falls through
        _PACKETS[text] = packet
    return packet


def _decode_fast(line: str) -> Optional[Event]:
    """Decode a canonical-order line in one pass; ``None`` defers to the
    legacy parser (never-wrong contract: any returned event is exactly what
    :func:`_decode_event_strict` would produce for the same line)."""
    tokens = line.split()
    n = len(tokens)
    if n < 2:
        return None
    t0, t1 = tokens[0], tokens[1]
    if t0[:5] != "node=" or t1[:5] != "type=":
        return None
    try:
        node = int(t0[5:])
    except ValueError:
        return None
    etype = _intern_label(t1[5:])
    src = dst = packet = time_ = None
    i = 2
    try:
        if i < n and tokens[i][:4] == "src=":
            src = int(tokens[i][4:])
            i += 1
        if i < n and tokens[i][:4] == "dst=":
            dst = int(tokens[i][4:])
            i += 1
        if i < n and tokens[i][:4] == "pkt=":
            packet = _parse_packet(tokens[i][4:])
            i += 1
        if i < n and tokens[i][:2] == "t=":
            time_ = float(tokens[i][2:])
            i += 1
    except ValueError:
        return None
    if i == n:
        return Event(etype, node, src, dst, packet, time_)
    info: list[tuple[str, str]] = []
    keys: list[str] = []
    for token in tokens[i:]:
        eq = token.find("=")
        if eq < 1:
            return None
        key = token[:eq]
        if key in _RESERVED_SET or key in keys:
            return None  # non-canonical order or duplicate: legacy decides
        keys.append(key)
        info.append((key, token[eq + 1 :]))
    info.sort()
    return Event(etype, node, src, dst, packet, time_, tuple(info))


def _decode_fast_bytes(raw: bytes) -> Optional[Event]:
    """Bytes twin of :func:`_decode_fast` for the ASCII corpus fast path.

    Numeric fields convert straight from bytes (``int``/``float`` accept
    ASCII digits); only the event-type label and any info tail are decoded
    to str.  Caller guarantees ``raw`` is ASCII with no exotic whitespace,
    which makes ``bytes.split`` agree with ``str.split`` exactly.
    """
    tokens = raw.split()
    n = len(tokens)
    if n < 2:
        return None
    t0, t1 = tokens[0], tokens[1]
    if t0[:5] != b"node=" or t1[:5] != b"type=":
        return None
    try:
        node = int(t0[5:])
    except ValueError:
        return None
    etype = _intern_label(t1[5:])
    src = dst = packet = time_ = None
    i = 2
    try:
        if i < n and tokens[i][:4] == b"src=":
            src = int(tokens[i][4:])
            i += 1
        if i < n and tokens[i][:4] == b"dst=":
            dst = int(tokens[i][4:])
            i += 1
        if i < n and tokens[i][:4] == b"pkt=":
            packet = _parse_packet(tokens[i][4:])
            i += 1
        if i < n and tokens[i][:2] == b"t=":
            time_ = float(tokens[i][2:])
            i += 1
    except ValueError:
        return None
    if i == n:
        return Event(etype, node, src, dst, packet, time_)
    info: list[tuple[str, str]] = []
    keys: list[str] = []
    for token in tokens[i:]:
        eq = token.find(b"=")
        if eq < 1:
            return None
        key = token[:eq].decode("ascii")
        if key in _RESERVED_SET or key in keys:
            return None
        keys.append(key)
        info.append((key, token[eq + 1 :].decode("ascii")))
    info.sort()
    return Event(etype, node, src, dst, packet, time_, tuple(info))


def encode_log(log: NodeLog) -> str:
    """Serialize a whole node log, one event per line."""
    return "\n".join(encode_event(e) for e in log)


def decode_log(node: int, text: str) -> NodeLog:
    """Parse a node log; blank lines are skipped."""
    events = (decode_event(line) for line in text.splitlines() if line.strip())
    return NodeLog(node, events)


def decode_logs(blobs: Iterable[tuple[int, str]]) -> dict[int, NodeLog]:
    """Parse a collection of ``(node, text)`` blobs into logs keyed by node."""
    return {node: decode_log(node, text) for node, text in blobs}
