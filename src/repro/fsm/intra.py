"""Intra-node transition derivation (paper §IV-B, "Intra-node transition").

Given an event label ``e``, consider all normal transitions
``s_i1 -> s_j1, ..., s_im -> s_jm`` carrying ``e``.  For a state ``s_x``, if
there is **one and only one** state ``s_jc`` among the (distinct) targets
``{s_j1, ..., s_jm}`` that is reachable from ``s_x``, an intra-node
transition ``s_x --e--> s_jc`` is added: observing ``e`` at ``s_x`` can only
mean the engine actually reached ``s_jc`` and the events on the skipped
normal path were lost.

The derivation is purely structural, so it is computed once per graph.  The
*inferred path* (which concrete lost events to emit) is context dependent —
templates may veto edges (e.g. ``gen`` on a non-origin node) — so it is
resolved lazily at processing time via :class:`~repro.fsm.reachability.Reachability`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.fsm.graph import TransitionGraph
from repro.fsm.reachability import Reachability


@dataclass(frozen=True, slots=True)
class Selection:
    """Outcome of transition selection for an event label at a state.

    Selection depends only on the template (normal transitions shadow
    derived jumps), so templates precompute one frozen instance per
    ``(state, label)`` pair and every engine shares the table.
    """

    #: ``"normal"`` or ``"intra"``.
    kind: str
    #: Destination state.
    target: str


@dataclass(frozen=True, slots=True)
class IntraTransition:
    """A derived jump transition ``src --event--> dst``.

    ``dst`` is the unique reachable target among the normal transitions
    carrying ``event``.
    """

    src: str
    dst: str
    event: str

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"{self.src} ~~{self.event}~~> {self.dst}"


def derive_intra_transitions(
    graph: TransitionGraph,
    reach: Optional[Reachability] = None,
) -> dict[tuple[str, str], IntraTransition]:
    """Derive all intra-node transitions of ``graph``.

    Returns a mapping ``(state, event) -> IntraTransition``.  A pair is
    present iff the uniqueness condition holds at that state for that event.
    States that already have a normal transition for the event are included
    too — at processing time normal transitions take precedence, but the
    derived jump documents the full relation and is exercised by tests.
    """
    reach = reach or Reachability(graph)
    derived: dict[tuple[str, str], IntraTransition] = {}
    for event in graph.events:
        targets = list(dict.fromkeys(t.dst for t in graph.transitions_with_event(event)))
        for state in graph.states:
            reachable_targets = [s for s in targets if reach.reachable(state, s)]
            if len(reachable_targets) == 1:
                derived[(state, event)] = IntraTransition(state, reachable_targets[0], event)
    return derived
