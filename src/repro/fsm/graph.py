"""Transition graph ``G = (S, T, E)`` (paper §IV-A).

States are vertices, transitions are directed edges and each edge carries an
event label.  Multiple transitions may carry the same label ("an event may
lead to different transitions"), and between two states there is at most one
transition per label.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable


@dataclass(frozen=True, slots=True)
class Transition:
    """Directed edge ``s_i -> s_j`` carrying event label ``event``."""

    src: str
    dst: str
    event: str

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"{self.src} --{self.event}--> {self.dst}"


class TransitionGraph:
    """The FSM of one inference engine as a directed labelled multigraph.

    Parameters
    ----------
    states:
        The vertex set ``S``.  Must contain ``initial``.
    transitions:
        The edge set ``T`` with labels ``E``; the *normal transitions* of the
        original program FSM (solid edges in paper Fig. 2).
    initial:
        The engine's start state.
    """

    def __init__(
        self,
        states: Iterable[str],
        transitions: Iterable[Transition | tuple[str, str, str]],
        initial: str,
    ) -> None:
        self._states: tuple[str, ...] = tuple(dict.fromkeys(states))
        state_set = set(self._states)
        if not self._states:
            raise ValueError("a transition graph needs at least one state")
        if initial not in state_set:
            raise ValueError(f"initial state {initial!r} is not in the state set")
        self.initial = initial

        edges: list[Transition] = []
        seen: set[tuple[str, str, str]] = set()
        for t in transitions:
            if not isinstance(t, Transition):
                t = Transition(*t)
            if t.src not in state_set or t.dst not in state_set:
                raise ValueError(f"transition {t} references unknown state")
            key = (t.src, t.dst, t.event)
            if key in seen:
                raise ValueError(f"duplicate transition {t}")
            seen.add(key)
            edges.append(t)
        self._transitions: tuple[Transition, ...] = tuple(edges)

        self._out: dict[str, dict[str, list[Transition]]] = {s: {} for s in self._states}
        self._by_event: dict[str, list[Transition]] = {}
        for t in self._transitions:
            self._out[t.src].setdefault(t.event, []).append(t)
            self._by_event.setdefault(t.event, []).append(t)

    # ------------------------------------------------------------------ #
    # accessors

    @property
    def states(self) -> tuple[str, ...]:
        return self._states

    @property
    def transitions(self) -> tuple[Transition, ...]:
        return self._transitions

    @property
    def events(self) -> tuple[str, ...]:
        """All distinct event labels appearing on edges."""
        return tuple(self._by_event)

    def outgoing(self, state: str) -> list[Transition]:
        """All transitions leaving ``state``."""
        self._check_state(state)
        return [t for group in self._out[state].values() for t in group]

    def transitions_from(self, state: str, event: str) -> list[Transition]:
        """Normal transitions leaving ``state`` with label ``event``."""
        self._check_state(state)
        return list(self._out[state].get(event, ()))

    def transitions_with_event(self, event: str) -> list[Transition]:
        """All transitions (anywhere) carrying label ``event``."""
        return list(self._by_event.get(event, ()))

    def has_state(self, state: str) -> bool:
        return state in self._out

    def _check_state(self, state: str) -> None:
        if state not in self._out:
            raise KeyError(f"unknown state {state!r}")

    def successors(self, state: str) -> list[str]:
        """Distinct successor states of ``state``."""
        self._check_state(state)
        seen = dict.fromkeys(t.dst for group in self._out[state].values() for t in group)
        return list(seen)

    def to_dot(self, name: str = "fsm") -> str:
        """Graphviz DOT rendering (documentation / debugging aid)."""
        lines = [f"digraph {name} {{", "  rankdir=LR;"]
        for state in self._states:
            shape = "doublecircle" if state == self.initial else "circle"
            lines.append(f'  "{state}" [shape={shape}];')
        for t in self._transitions:
            lines.append(f'  "{t.src}" -> "{t.dst}" [label="{t.event}"];')
        lines.append("}")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TransitionGraph(states={len(self._states)}, "
            f"transitions={len(self._transitions)}, initial={self.initial!r})"
        )
