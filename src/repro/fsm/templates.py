"""Concrete FSM templates (paper §IV-A, Fig. 2; §V-A workload).

A :class:`FsmTemplate` bundles everything an inference engine needs:

- the normal-transition graph,
- the derived intra-node jump table,
- the inter-node prerequisite rules,
- an *admissibility* predicate restricting which edges may appear on
  inference paths (e.g. a ``gen`` event can only be inferred on the packet's
  origin node),
- a *realizer* turning an inferred edge label into a concrete
  :class:`~repro.events.event.Event` using what is already known about the
  packet's neighbours.

Two families are provided: :func:`forwarder_template` — the CTP
data-collection FSM used throughout the paper's evaluation — and
:func:`chain_template` — minimal per-node FSMs for the synthetic topologies
of paper Fig. 3 (cascading, 1-to-many, many-to-1 and mixed inter-node
transitions).
"""

from __future__ import annotations

from typing import Callable, Mapping, Optional, Protocol, Sequence

from repro.events.event import Event, EventType
from repro.events.packet import PacketKey
from repro.fsm.graph import Transition, TransitionGraph
from repro.fsm.intra import IntraTransition, Selection, derive_intra_transitions
from repro.fsm.prerequisites import Peer, PrereqRule
from repro.fsm.reachability import CompiledReachability, Reachability

#: Hoisted label constants: ``EventType.X.value`` is an enum descriptor
#: access, measurably hot when realizers/admissibility run per inferred
#: event — the hot paths compare against these plain strings instead.
_GEN = EventType.GEN.value
_RECV = EventType.RECV.value
_TRANS = EventType.TRANS.value
_ACK = EventType.ACK.value
_DUP = EventType.DUP.value
_OVERFLOW = EventType.OVERFLOW.value
_TIMEOUT = EventType.TIMEOUT.value


class NeighborContext(Protocol):
    """What a realizer may know about a packet's per-node neighbours."""

    def upstream(self, node: int) -> Optional[int]:
        """Known sender that forwarded the packet to ``node`` (or ``None``)."""

    def downstream(self, node: int) -> Optional[int]:
        """Known next hop ``node`` forwards the packet to (or ``None``)."""


#: ``admissible(transition, node, packet, ctx) -> bool``
AdmissibleFn = Callable[[Transition, int, Optional[PacketKey], NeighborContext], bool]
#: ``realize(label, node, packet, ctx) -> Event``
RealizeFn = Callable[[str, int, Optional[PacketKey], NeighborContext], Event]


class FsmTemplate:
    """An FSM plus its derived inference machinery, shared by many engines."""

    def __init__(
        self,
        name: str,
        graph: TransitionGraph,
        prereqs: Mapping[str, Sequence[PrereqRule]] | None = None,
        *,
        admissible: Optional[AdmissibleFn] = None,
        realize: Optional[RealizeFn] = None,
        initial_for: Optional[Callable[[int, Optional[PacketKey]], str]] = None,
    ) -> None:
        self.name = name
        self.graph = graph
        self.reach = Reachability(graph)
        self.intra: dict[tuple[str, str], IntraTransition] = derive_intra_transitions(
            graph, self.reach
        )
        self.prereqs: dict[str, tuple[PrereqRule, ...]] = {
            label: tuple(rules) for label, rules in (prereqs or {}).items()
        }
        self._admissible = admissible
        self._realize = realize
        self._initial_for = initial_for
        #: Compiled shortest-path tables shared by every engine instance.
        self.compiled = CompiledReachability(graph)
        #: Precomputed transition selection: normal transitions shadow
        #: derived jumps, and among normal transitions the first declared
        #: per (state, label) wins — the same precedence engines used to
        #: re-derive on every select call.
        self.select_table: dict[tuple[str, str], Selection] = {}
        for t in graph.transitions:
            self.select_table.setdefault((t.src, t.event), Selection("normal", t.dst))
        for key, jump in self.intra.items():
            self.select_table.setdefault(key, Selection("intra", jump.dst))

    # ------------------------------------------------------------------ #

    @property
    def has_admissibility(self) -> bool:
        """Whether the template restricts which edges may be inferred.

        Static analyses use this to soften ambiguity findings: a tie among
        shortest inferred paths may be resolved at inference time by the
        admissibility predicate (e.g. ``gen`` only at the packet's origin).
        """
        return self._admissible is not None

    def initial_state(self, node: int, packet: Optional[PacketKey]) -> str:
        """Start state of ``node``'s engine for ``packet``."""
        if self._initial_for is not None:
            return self._initial_for(node, packet)
        return self.graph.initial

    def edge_admissible(
        self,
        transition: Transition,
        node: int,
        packet: Optional[PacketKey],
        ctx: NeighborContext,
    ) -> bool:
        """Whether ``transition`` may appear on an inference path for ``node``."""
        if self._admissible is None:
            return True
        return self._admissible(transition, node, packet, ctx)

    def realize_event(
        self,
        label: str,
        node: int,
        packet: Optional[PacketKey],
        ctx: NeighborContext,
    ) -> Event:
        """Concrete inferred event for edge ``label`` on ``node``."""
        if self._realize is None:
            return Event.make(label, node, packet=packet)
        return self._realize(label, node, packet, ctx)

    def prereq_rules(self, label: str) -> tuple[PrereqRule, ...]:
        return self.prereqs.get(label, ())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FsmTemplate({self.name!r}, {self.graph!r})"


# ---------------------------------------------------------------------- #
# CTP forwarder template (paper Table I / Fig. 2 / §V-A)

#: States of the per-(node, packet) forwarding FSM.
IDLE = "IDLE"
RECEIVED = "RECEIVED"
SENT = "SENT"
ACKED = "ACKED"
DROPPED_TIMEOUT = "DROPPED_TIMEOUT"
DROPPED_OVERFLOW = "DROPPED_OVERFLOW"

FORWARDER_STATES = (IDLE, RECEIVED, SENT, ACKED, DROPPED_TIMEOUT, DROPPED_OVERFLOW)


def _forwarder_graph(with_gen: bool) -> TransitionGraph:
    e = EventType
    edges: list[tuple[str, str, str]] = []
    if with_gen:
        # Declared before the recv acquisition edge so that, at the origin,
        # shortest-path ties break toward `gen`.
        edges.append((IDLE, RECEIVED, e.GEN.value))
    edges += [
        (IDLE, RECEIVED, e.RECV.value),
        (IDLE, DROPPED_OVERFLOW, e.OVERFLOW.value),
        (DROPPED_OVERFLOW, RECEIVED, e.RECV.value),
        (RECEIVED, SENT, e.TRANS.value),
        (RECEIVED, RECEIVED, e.DUP.value),
        (SENT, SENT, e.TRANS.value),
        (SENT, SENT, e.DUP.value),
        (SENT, ACKED, e.ACK.value),
        (SENT, DROPPED_TIMEOUT, e.TIMEOUT.value),
        (ACKED, SENT, e.TRANS.value),
        (ACKED, RECEIVED, e.RECV.value),
        (ACKED, ACKED, e.DUP.value),
    ]
    return TransitionGraph(FORWARDER_STATES, edges, IDLE)


def _forwarder_prereqs() -> dict[str, tuple[PrereqRule, ...]]:
    e = EventType
    return {
        # A receive implies the sender transmitted (paper Fig. 2).
        e.RECV.value: (PrereqRule(Peer.SRC, SENT),),
        e.DUP.value: (PrereqRule(Peer.SRC, SENT),),
        e.OVERFLOW.value: (PrereqRule(Peer.SRC, SENT),),
        # An ack implies the receiver got the packet at the PHY (paper Table
        # II case 2: `1-2 trans, [1-2 recv], 1-2 ack recvd`).  A queue
        # overflow also satisfies it: the radio acked, the routing layer
        # dropped (paper §V-D5: hardware acks precede upper-layer delivery).
        e.ACK.value: (PrereqRule(Peer.DST, RECEIVED, alt_states=(DROPPED_OVERFLOW,)),),
    }


def _forwarder_admissible(
    t: Transition, node: int, packet: Optional[PacketKey], ctx: NeighborContext
) -> bool:
    if t.event == _GEN:
        return packet is not None and node == packet.origin
    if t.event == _RECV and packet is not None and node == packet.origin:
        # The origin can only "receive" its own packet through a routing
        # loop, which requires a known upstream sender.
        return ctx.upstream(node) is not None
    return True


def _forwarder_realize(
    label: str, node: int, packet: Optional[PacketKey], ctx: NeighborContext
) -> Event:
    if label == _GEN:
        return Event.make(label, node, packet=packet)
    if label in (_RECV, _DUP, _OVERFLOW):
        return Event.make(label, node, src=ctx.upstream(node), dst=node, packet=packet)
    if label in (_TRANS, _ACK, _TIMEOUT):
        return Event.make(label, node, src=node, dst=ctx.downstream(node), packet=packet)
    return Event.make(label, node, packet=packet)


def forwarder_template(with_gen: bool = True) -> FsmTemplate:
    """The CTP data-collection forwarding FSM.

    Parameters
    ----------
    with_gen:
        When true (the simulator workload), packets start life with an
        explicit ``gen`` event at the origin and every engine starts at
        ``IDLE``.  When false (the paper's Table II examples, where no
        generation event exists), the origin's engine starts directly at
        ``RECEIVED`` ("has the packet").
    """

    def initial_for(node: int, packet: Optional[PacketKey]) -> str:
        if not with_gen and packet is not None and node == packet.origin:
            return RECEIVED
        return IDLE

    return FsmTemplate(
        name="ctp-forwarder" + ("" if with_gen else "-nogen"),
        graph=_forwarder_graph(with_gen),
        prereqs=_forwarder_prereqs(),
        admissible=_forwarder_admissible,
        realize=_forwarder_realize,
        initial_for=initial_for,
    )


# ---------------------------------------------------------------------- #
# Dissemination template (paper Fig. 3b/d: "node 2 waiting to check whether
# node 1 and node 3 have received data")

#: Seeder states.
SEED_IDLE = "SEED_IDLE"
ADVERTISED = "ADVERTISED"
COMPLETE = "COMPLETE"
#: Receiver states.
RX_IDLE = "RX_IDLE"
UPDATED = "UPDATED"
ACKED_BACK = "ACKED_BACK"


def dissemination_templates(seeder: int) -> Callable[[int], "FsmTemplate"]:
    """Per-role FSMs for a one-round dissemination protocol.

    The seeder broadcasts an update (``adv``, carrying its target list in
    the related information), every receiver applies it (``update_recv``)
    and confirms (``update_ack``); the seeder records ``complete`` once all
    targets confirmed.  Inter-node wiring:

    - ``update_recv`` requires the seeder to have ``ADVERTISED``
      (many-to-1: one broadcast serves every receiver);
    - ``complete`` requires *each* listed target to have ``ACKED_BACK``
      (1-to-many via :attr:`Peer.TARGETS`).

    Returns a ``template_for(node)`` factory for the connected engines.
    """

    def realize_rx(label: str, node: int, packet, ctx) -> Event:
        if label == "update_recv":
            return Event.make(label, node, src=seeder, dst=node, packet=packet)
        if label == "update_ack":
            return Event.make(label, node, src=node, dst=seeder, packet=packet)
        return Event.make(label, node, packet=packet)

    seeder_template = FsmTemplate(
        "dissemination-seeder",
        TransitionGraph(
            [SEED_IDLE, ADVERTISED, COMPLETE],
            [
                (SEED_IDLE, ADVERTISED, "adv"),
                (ADVERTISED, ADVERTISED, "adv"),  # re-broadcast rounds
                (ADVERTISED, COMPLETE, "complete"),
            ],
            SEED_IDLE,
        ),
        prereqs={"complete": (PrereqRule(Peer.TARGETS, ACKED_BACK),)},
    )
    receiver_template = FsmTemplate(
        "dissemination-receiver",
        TransitionGraph(
            [RX_IDLE, UPDATED, ACKED_BACK],
            [
                (RX_IDLE, UPDATED, "update_recv"),
                (UPDATED, ACKED_BACK, "update_ack"),
                (ACKED_BACK, ACKED_BACK, "update_recv"),  # duplicate rounds
                (ACKED_BACK, ACKED_BACK, "update_ack"),   # re-confirmations
            ],
            RX_IDLE,
        ),
        prereqs={"update_recv": (PrereqRule(Peer.SRC, ADVERTISED),)},
        realize=realize_rx,
    )

    def template_for(node: int) -> FsmTemplate:
        return seeder_template if node == seeder else receiver_template

    return template_for


# ---------------------------------------------------------------------- #
# Query-flood template (the Fig. 3d negotiation shape over a routing tree)

Q_IDLE = "Q_IDLE"
HEARD = "HEARD"
FORWARDED = "FORWARDED"


def query_templates(origin: int) -> Callable[[int], "FsmTemplate"]:
    """Per-node FSMs for a tree-flooded query.

    A node hears the query from its parent (``query_recv``, prerequisite:
    the parent has ``FORWARDED``) and may rebroadcast it to its children
    (``query_fwd``).  The origin starts at ``HEARD`` (it owns the query).
    A surviving ``query_recv`` deep in the tree therefore re-derives the
    whole lost forwarding chain above it, cascade-style (paper Fig. 3a).
    """

    def realize(label: str, node: int, packet, ctx) -> Event:
        if label == "query_recv":
            return Event.make(label, node, src=ctx.upstream(node), dst=node, packet=packet)
        return Event.make(label, node, packet=packet)

    template = FsmTemplate(
        "query-flood",
        TransitionGraph(
            [Q_IDLE, HEARD, FORWARDED],
            [
                (Q_IDLE, HEARD, "query_recv"),
                (HEARD, FORWARDED, "query_fwd"),
                (HEARD, HEARD, "query_recv"),       # duplicate hears
                (FORWARDED, FORWARDED, "query_recv"),
            ],
            Q_IDLE,
        ),
        prereqs={"query_recv": (PrereqRule(Peer.SRC, FORWARDED),)},
        realize=realize,
        initial_for=lambda node, packet: HEARD if node == origin else Q_IDLE,
    )
    return lambda node: template


# ---------------------------------------------------------------------- #
# Chain templates for the Fig. 3 synthetic topologies


def chain_template(
    name: str,
    labels: Sequence[str],
    prereqs: Mapping[str, Sequence[PrereqRule]] | None = None,
    *,
    first_state: int = 0,
) -> FsmTemplate:
    """A linear FSM ``s<k> --labels[0]--> s<k+1> --...--> s<k+N>``.

    Used to build the per-node engines of paper Fig. 3 (which numbers states
    globally: node 1 has s1..s3, node 2 has s4..s6, ...); ``first_state``
    sets ``k``.  Events are node-local (no sender/receiver pair); inter-node
    transitions are expressed with explicit node-id :class:`PrereqRule`\\ s.
    """
    states = [f"s{first_state + i}" for i in range(len(labels) + 1)]
    edges = [(states[i], states[i + 1], label) for i, label in enumerate(labels)]
    graph = TransitionGraph(states, edges, states[0])
    return FsmTemplate(name, graph, prereqs)
