"""Inter-node prerequisite transitions (paper Def. 4.1, §IV-B).

A transition ``t2`` on engine ``F2`` is a *prerequisite* of transition ``t1``
on engine ``F1`` when ``t1`` can only occur after ``t2`` has occurred.  The
connected-engine layer uses these rules to (a) order events across nodes and
(b) infer lost events: before ``t1`` fires, every prerequisite engine is
driven to its prerequisite state, emitting inferred events for any normal
transitions it had to take.

Rules are attached to event labels and resolve their target engine through a
:class:`Peer` selector, so one rule covers every node running the same FSM
template ("a receive on any node requires the sender to have reached SENT").
A transition may have several prerequisite rules (1-to-many / many-to-1
patterns of paper Fig. 3b–d).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Sequence, Union

from repro.events.event import Event


class Peer(enum.Enum):
    """How a prerequisite rule locates the engine(s) it constrains."""

    #: The sender of the event's sender-receiver pair (``event.src``).
    SRC = "src"
    #: The receiver of the event's sender-receiver pair (``event.dst``).
    DST = "dst"
    #: The counterpart of the recording node (src if recorded on dst, etc.).
    COUNTERPART = "counterpart"
    #: Every node listed in the event's ``targets`` related information —
    #: the 1-to-many case: a broadcast completion waits on all recipients
    #: (paper Fig. 3b/d).
    TARGETS = "targets"


@dataclass(frozen=True, slots=True)
class PrereqRule:
    """One prerequisite: engine ``peer`` must have visited ``state``.

    Attributes
    ----------
    peer:
        A :class:`Peer` selector or an explicit node id (used by the custom
        per-node FSMs of paper Fig. 3).
    state:
        The prerequisite state on the peer engine (the *destination* of the
        prerequisite transition, called the "prerequisite state" in §IV-B).
    alt_states:
        Additional states that equally satisfy the prerequisite.  The
        canonical case: a hardware ack proves *PHY reception*, which both a
        routing-layer ``RECEIVED`` and a queue-overflow drop satisfy.
    """

    peer: Union[Peer, int]
    state: str
    alt_states: tuple[str, ...] = ()

    @property
    def states(self) -> tuple[str, ...]:
        """All acceptable prerequisite states (primary first)."""
        return (self.state, *self.alt_states)

    def resolve_node(self, event: Event) -> Optional[int]:
        """Single constrained node (``None`` when unresolvable).

        Returns ``None`` when the event lacks the information needed to
        resolve the peer (e.g. a node-local event with no sender/receiver) —
        such rules are skipped with an anomaly note rather than crashing,
        since collected logs can be arbitrarily degraded.  For
        :attr:`Peer.TARGETS` use :meth:`resolve_nodes`.
        """
        nodes = self.resolve_nodes(event)
        return nodes[0] if len(nodes) == 1 else None

    def resolve_nodes(self, event: Event) -> tuple[int, ...]:
        """All nodes this rule constrains for ``event`` (possibly empty)."""
        if isinstance(self.peer, int):
            return (self.peer,)
        if self.peer is Peer.SRC:
            return (event.src,) if event.src is not None else ()
        if self.peer is Peer.DST:
            return (event.dst,) if event.dst is not None else ()
        if self.peer is Peer.COUNTERPART:
            return (event.peer,) if event.peer is not None else ()
        if self.peer is Peer.TARGETS:
            raw = event.info_dict.get("targets")
            if raw is None:
                return ()
            if isinstance(raw, str):
                return tuple(int(part) for part in raw.split(",") if part)
            return tuple(int(n) for n in raw)
        raise AssertionError(f"unhandled peer selector {self.peer!r}")


def rules_for(
    table: dict[str, Sequence[PrereqRule]], event_label: str
) -> tuple[PrereqRule, ...]:
    """Prerequisite rules registered for ``event_label`` (possibly empty)."""
    return tuple(table.get(event_label, ()))
