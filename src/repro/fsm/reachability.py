"""Reachability and shortest normal-transition paths (paper §IV-A).

``s_i ≻ s_j`` holds iff there is a non-empty transition sequence from
``s_i`` to ``s_j`` following *normal* transitions.  Shortest paths are used
to enumerate the prerequisite (inferred lost) events skipped by an intra-node
jump and to drive an engine to an inter-node prerequisite state.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Optional

from repro.fsm.graph import Transition, TransitionGraph

#: Predicate deciding whether an edge may appear on an *inference* path.
#: Templates use it to rule out semantically impossible inferred events
#: (e.g. a ``gen`` event on a node that is not the packet's origin).
EdgeFilter = Callable[[Transition], bool]


class Reachability:
    """Precomputed reachability over a transition graph.

    The relation is irreflexive unless the state lies on a cycle, matching
    the paper's definition (a transition sequence has at least one
    transition).
    """

    def __init__(self, graph: TransitionGraph) -> None:
        self.graph = graph
        self._reach: dict[str, frozenset[str]] = {}
        for state in graph.states:
            self._reach[state] = frozenset(self._bfs_states(state))

    def _bfs_states(self, start: str) -> set[str]:
        seen: set[str] = set()
        queue: deque[str] = deque(self.graph.successors(start))
        seen.update(queue)
        while queue:
            state = queue.popleft()
            for nxt in self.graph.successors(state):
                if nxt not in seen:
                    seen.add(nxt)
                    queue.append(nxt)
        return seen

    def reachable(self, src: str, dst: str) -> bool:
        """Whether ``src ≻ dst`` (via at least one normal transition)."""
        return dst in self._reach[src]

    def reachable_set(self, src: str) -> frozenset[str]:
        """All states reachable from ``src`` by non-empty paths."""
        return self._reach[src]

    def shortest_path(
        self,
        src: str,
        dst: str,
        edge_filter: Optional[EdgeFilter] = None,
    ) -> Optional[list[Transition]]:
        """Shortest sequence of normal transitions from ``src`` to ``dst``.

        Returns ``None`` when no admissible path exists, ``[]`` when
        ``src == dst`` (already there).  Ties are broken deterministically by
        edge declaration order.
        """
        if src == dst:
            return []
        parent: dict[str, Transition] = {}
        queue: deque[str] = deque([src])
        visited = {src}
        while queue:
            state = queue.popleft()
            for t in self.graph.outgoing(state):
                if edge_filter is not None and not edge_filter(t):
                    continue
                if t.dst in visited:
                    continue
                parent[t.dst] = t
                if t.dst == dst:
                    return self._unwind(parent, src, dst)
                visited.add(t.dst)
                queue.append(t.dst)
        return None

    def shortest_path_stats(
        self,
        src: str,
        edge_filter: Optional[EdgeFilter] = None,
    ) -> tuple[dict[str, int], dict[str, int]]:
        """BFS distances and *shortest-path counts* from ``src``.

        Returns ``(dist, count)`` where ``dist[s]`` is the length of the
        shortest normal-transition sequence ``src ⇝ s`` and ``count[s]`` how
        many distinct shortest sequences achieve it (``dist[src] == 0``,
        ``count[src] == 1``).  Unreachable states are absent from both maps.
        Used by the static analyzer to flag ambiguous jump derivations:
        ``count > 1`` means :meth:`shortest_path` picked among several
        equally short inferred-event sequences by declaration order alone.
        """
        dist: dict[str, int] = {src: 0}
        count: dict[str, int] = {src: 1}
        queue: deque[str] = deque([src])
        while queue:
            state = queue.popleft()
            for t in self.graph.outgoing(state):
                if edge_filter is not None and not edge_filter(t):
                    continue
                nxt = t.dst
                if nxt not in dist:
                    dist[nxt] = dist[state] + 1
                    count[nxt] = count[state]
                    queue.append(nxt)
                elif dist[nxt] == dist[state] + 1:
                    count[nxt] += count[state]
        return dist, count

    @staticmethod
    def _unwind(parent: dict[str, Transition], src: str, dst: str) -> list[Transition]:
        path: list[Transition] = []
        cur = dst
        while cur != src:
            t = parent[cur]
            path.append(t)
            cur = t.src
        path.reverse()
        return path

    def shortest_path_via_event(
        self,
        src: str,
        target: str,
        event: str,
        edge_filter: Optional[EdgeFilter] = None,
    ) -> Optional[list[Transition]]:
        """Shortest path ``src ⇝ s_ic --event--> target``.

        Among all transitions with label ``event`` whose destination is
        ``target``, pick the one whose source minimizes the normal-transition
        path from ``src``; the returned path *excludes* that final ``event``
        edge (its label corresponds to the real, observed event — only the
        prefix is made of inferred lost events, paper §IV-B).
        """
        best: Optional[list[Transition]] = None
        for t in self.graph.transitions_with_event(event):
            if t.dst != target:
                continue
            if edge_filter is not None and not edge_filter(t):
                continue
            prefix = self.shortest_path(src, t.src, edge_filter)
            if prefix is None:
                continue
            if best is None or len(prefix) < len(best):
                best = prefix
        return best


class CompiledReachability:
    """Dense-index shortest-path tables, built once per template graph.

    :class:`Reachability` answers every query with a fresh BFS plus a
    Python-level predicate call per considered edge; the hot reconstruction
    loop asks the same handful of questions thousands of times per corpus.
    This compiles the graph once — states interned to dense integer ids,
    adjacency in exactly :meth:`TransitionGraph.outgoing` order — and keys
    whole BFS trees (distance + parent-edge arrays) by ``(source state,
    admissible-edge bitmask)``.  Admissibility is evaluated once per mask as
    a bitmask over the declaration-ordered edge list, so repeat queries under
    the same context become two list lookups and an unwind.

    Equivalence with the legacy walks is exact, not approximate: a full BFS
    assigns each state the parent edge it is *first* discovered through, and
    with identical FIFO order, identical adjacency order, and identical edge
    admissibility that parent equals the one the legacy early-exit BFS
    records — pinned by the jump-table property test in ``tests/fsm``.
    """

    def __init__(self, graph: TransitionGraph) -> None:
        self.graph = graph
        states = graph.states
        self.index: dict[str, int] = {s: i for i, s in enumerate(states)}
        self.states = states
        self.edges: tuple[Transition, ...] = graph.transitions
        edge_index = {t: i for i, t in enumerate(self.edges)}
        #: Per state (dense id): ``(edge bit, dst id, transition)`` in the
        #: exact order ``graph.outgoing`` scans them.
        self.outgoing: list[list[tuple[int, int, Transition]]] = [
            [(edge_index[t], self.index[t.dst], t) for t in graph.outgoing(s)]
            for s in states
        ]
        #: Per label: ``(edge bit, src id, dst id, transition)`` in edge
        #: declaration order (``transitions_with_event`` order).
        self.by_event: dict[str, list[tuple[int, int, int, Transition]]] = {}
        for i, t in enumerate(self.edges):
            self.by_event.setdefault(t.event, []).append(
                (i, self.index[t.src], self.index[t.dst], t)
            )
        #: Mask with every edge admissible (templates without a predicate).
        self.full_mask: int = (1 << len(self.edges)) - 1
        self._trees: dict[
            tuple[int, int],
            tuple[list[Optional[int]], list[Optional[Transition]]],
        ] = {}

    def compute_mask(self, admissible: EdgeFilter) -> int:
        """Admissible-edge bitmask for a bound predicate (bit i = edge i)."""
        mask = 0
        bit = 1
        for t in self.edges:
            if admissible(t):
                mask |= bit
            bit <<= 1
        return mask

    def compute_mask_of(self, admissible, node, packet, ctx) -> int:
        """:meth:`compute_mask` for a template-style 4-argument predicate.

        Same bit layout; skips the per-edge closure a bound
        :data:`EdgeFilter` would cost in the engines' hot path.
        """
        mask = 0
        bit = 1
        for t in self.edges:
            if admissible(t, node, packet, ctx):
                mask |= bit
            bit <<= 1
        return mask

    def _tree(
        self, src: int, mask: int
    ) -> tuple[list[Optional[int]], list[Optional[Transition]]]:
        """Cached full-BFS distances and first-discovery parent edges."""
        key = (src, mask)
        tree = self._trees.get(key)
        if tree is None:
            dist: list[Optional[int]] = [None] * len(self.states)
            parent: list[Optional[Transition]] = [None] * len(self.states)
            dist[src] = 0
            queue = [src]
            outgoing = self.outgoing
            for state in queue:  # FIFO: appends only, scanned left to right
                d = dist[state] + 1  # type: ignore[operator]
                for edge_bit, dst, t in outgoing[state]:
                    if not (mask >> edge_bit) & 1 or dist[dst] is not None:
                        continue
                    dist[dst] = d
                    parent[dst] = t
                    queue.append(dst)
            # the source keeps dist 0 / no parent: like the legacy BFS it
            # starts "visited", so paths back into it are never recorded
            self._trees[key] = tree = (dist, parent)
        return tree

    def dist(self, src: int, dst: int, mask: int) -> Optional[int]:
        """Shortest admissible path length, ``None`` when unreachable.

        ``0`` when ``src == dst`` (already there), matching
        :meth:`Reachability.shortest_path` returning ``[]``.
        """
        if src == dst:
            return 0
        return self._tree(src, mask)[0][dst]

    def path(self, src: int, dst: int, mask: int) -> Optional[list[Transition]]:
        """Shortest admissible path as transitions; ``[]`` when ``src == dst``."""
        if src == dst:
            return []
        dist, parent = self._tree(src, mask)
        if dist[dst] is None:
            return None
        out: list[Transition] = []
        index = self.index
        cur = dst
        while cur != src:
            t = parent[cur]
            assert t is not None
            out.append(t)
            cur = index[t.src]
        out.reverse()
        return out

    def path_via_event(
        self, src: int, target: int, event: str, mask: int
    ) -> Optional[list[Transition]]:
        """Compiled :meth:`Reachability.shortest_path_via_event`.

        Ties break to the first candidate in edge declaration order (strict
        ``<``), exactly like the legacy scan over ``transitions_with_event``.
        """
        candidates = self.by_event.get(event)
        if not candidates:
            return None
        dist, _parent = self._tree(src, mask)
        best_src: Optional[int] = None
        best_len: Optional[int] = None
        for edge_bit, src_i, dst_i, _t in candidates:
            if dst_i != target or not (mask >> edge_bit) & 1:
                continue
            d = 0 if src_i == src else dist[src_i]
            if d is None:
                continue
            if best_len is None or d < best_len:
                best_src, best_len = src_i, d
        if best_src is None:
            return None
        return self.path(src, best_src, mask)
