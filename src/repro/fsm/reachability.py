"""Reachability and shortest normal-transition paths (paper §IV-A).

``s_i ≻ s_j`` holds iff there is a non-empty transition sequence from
``s_i`` to ``s_j`` following *normal* transitions.  Shortest paths are used
to enumerate the prerequisite (inferred lost) events skipped by an intra-node
jump and to drive an engine to an inter-node prerequisite state.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Optional

from repro.fsm.graph import Transition, TransitionGraph

#: Predicate deciding whether an edge may appear on an *inference* path.
#: Templates use it to rule out semantically impossible inferred events
#: (e.g. a ``gen`` event on a node that is not the packet's origin).
EdgeFilter = Callable[[Transition], bool]


class Reachability:
    """Precomputed reachability over a transition graph.

    The relation is irreflexive unless the state lies on a cycle, matching
    the paper's definition (a transition sequence has at least one
    transition).
    """

    def __init__(self, graph: TransitionGraph) -> None:
        self.graph = graph
        self._reach: dict[str, frozenset[str]] = {}
        for state in graph.states:
            self._reach[state] = frozenset(self._bfs_states(state))

    def _bfs_states(self, start: str) -> set[str]:
        seen: set[str] = set()
        queue: deque[str] = deque(self.graph.successors(start))
        seen.update(queue)
        while queue:
            state = queue.popleft()
            for nxt in self.graph.successors(state):
                if nxt not in seen:
                    seen.add(nxt)
                    queue.append(nxt)
        return seen

    def reachable(self, src: str, dst: str) -> bool:
        """Whether ``src ≻ dst`` (via at least one normal transition)."""
        return dst in self._reach[src]

    def reachable_set(self, src: str) -> frozenset[str]:
        """All states reachable from ``src`` by non-empty paths."""
        return self._reach[src]

    def shortest_path(
        self,
        src: str,
        dst: str,
        edge_filter: Optional[EdgeFilter] = None,
    ) -> Optional[list[Transition]]:
        """Shortest sequence of normal transitions from ``src`` to ``dst``.

        Returns ``None`` when no admissible path exists, ``[]`` when
        ``src == dst`` (already there).  Ties are broken deterministically by
        edge declaration order.
        """
        if src == dst:
            return []
        parent: dict[str, Transition] = {}
        queue: deque[str] = deque([src])
        visited = {src}
        while queue:
            state = queue.popleft()
            for t in self.graph.outgoing(state):
                if edge_filter is not None and not edge_filter(t):
                    continue
                if t.dst in visited:
                    continue
                parent[t.dst] = t
                if t.dst == dst:
                    return self._unwind(parent, src, dst)
                visited.add(t.dst)
                queue.append(t.dst)
        return None

    def shortest_path_stats(
        self,
        src: str,
        edge_filter: Optional[EdgeFilter] = None,
    ) -> tuple[dict[str, int], dict[str, int]]:
        """BFS distances and *shortest-path counts* from ``src``.

        Returns ``(dist, count)`` where ``dist[s]`` is the length of the
        shortest normal-transition sequence ``src ⇝ s`` and ``count[s]`` how
        many distinct shortest sequences achieve it (``dist[src] == 0``,
        ``count[src] == 1``).  Unreachable states are absent from both maps.
        Used by the static analyzer to flag ambiguous jump derivations:
        ``count > 1`` means :meth:`shortest_path` picked among several
        equally short inferred-event sequences by declaration order alone.
        """
        dist: dict[str, int] = {src: 0}
        count: dict[str, int] = {src: 1}
        queue: deque[str] = deque([src])
        while queue:
            state = queue.popleft()
            for t in self.graph.outgoing(state):
                if edge_filter is not None and not edge_filter(t):
                    continue
                nxt = t.dst
                if nxt not in dist:
                    dist[nxt] = dist[state] + 1
                    count[nxt] = count[state]
                    queue.append(nxt)
                elif dist[nxt] == dist[state] + 1:
                    count[nxt] += count[state]
        return dist, count

    @staticmethod
    def _unwind(parent: dict[str, Transition], src: str, dst: str) -> list[Transition]:
        path: list[Transition] = []
        cur = dst
        while cur != src:
            t = parent[cur]
            path.append(t)
            cur = t.src
        path.reverse()
        return path

    def shortest_path_via_event(
        self,
        src: str,
        target: str,
        event: str,
        edge_filter: Optional[EdgeFilter] = None,
    ) -> Optional[list[Transition]]:
        """Shortest path ``src ⇝ s_ic --event--> target``.

        Among all transitions with label ``event`` whose destination is
        ``target``, pick the one whose source minimizes the normal-transition
        path from ``src``; the returned path *excludes* that final ``event``
        edge (its label corresponds to the real, observed event — only the
        prefix is made of inferred lost events, paper §IV-B).
        """
        best: Optional[list[Transition]] = None
        for t in self.graph.transitions_with_event(event):
            if t.dst != target:
                continue
            if edge_filter is not None and not edge_filter(t):
                continue
            prefix = self.shortest_path(src, t.src, edge_filter)
            if prefix is None:
                continue
            if best is None or len(prefix) < len(best):
                best = prefix
        return best
