"""Template linting (paper §IV-A: FSMs are hand-written or mined — check them).

Hand-written FSMs drift from the protocol and mined FSMs inherit trace
noise; either way a broken template silently degrades inference.  The
validator checks the structural properties the engine relies on:

- **determinism** — at most one normal transition per (state, label);
- **connectivity** — every state reachable from the initial state;
- **liveness** — every non-terminal state has an outgoing transition
  (reported as info, not an error: drop states are legitimately terminal);
- **prerequisite sanity** — every rule references states that exist in the
  graph (for explicit-node rules, the peer's template must be checked by
  the caller, since templates are per-role);
- **intra coverage** — which labels are dead at which states (neither a
  normal transition nor a derived jump), i.e. where logs will be omitted.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.fsm.templates import FsmTemplate


@dataclass
class ValidationReport:
    """Findings for one template."""

    errors: list[str] = field(default_factory=list)
    warnings: list[str] = field(default_factory=list)
    #: (state, label) pairs where an observed event would be omitted.
    dead_pairs: list[tuple[str, str]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.errors


def validate_template(template: FsmTemplate) -> ValidationReport:
    """Lint ``template``; see module docstring for the checks."""
    report = ValidationReport()
    graph = template.graph

    # determinism per (state, label)
    for state in graph.states:
        for label in graph.events:
            edges = graph.transitions_from(state, label)
            if len(edges) > 1:
                report.errors.append(
                    f"nondeterministic: {len(edges)} transitions for "
                    f"({state!r}, {label!r})"
                )

    # connectivity from the initial state
    reachable = {graph.initial} | set(template.reach.reachable_set(graph.initial))
    for state in graph.states:
        if state not in reachable:
            report.errors.append(f"state {state!r} unreachable from {graph.initial!r}")

    # liveness info
    for state in graph.states:
        if not graph.outgoing(state):
            report.warnings.append(f"state {state!r} is terminal")

    # prerequisite sanity: referenced states exist *somewhere sensible*.
    # Rules usually point at the same template (uniform-role protocols);
    # unknown states are warnings because multi-role wiring is legal.
    for label, rules in template.prereqs.items():
        if label not in graph.events:
            report.warnings.append(
                f"prerequisite rule for unknown label {label!r}"
            )
        for rule in rules:
            for state in rule.states:
                if not graph.has_state(state):
                    report.warnings.append(
                        f"prerequisite state {state!r} (label {label!r}) is not "
                        "a state of this template (multi-role wiring?)"
                    )

    # dead (state, label) pairs
    for state in graph.states:
        for label in graph.events:
            if graph.transitions_from(state, label):
                continue
            if (state, label) in template.intra:
                continue
            report.dead_pairs.append((state, label))

    return report


def validate_role_family(
    templates: Sequence[FsmTemplate],
) -> ValidationReport:
    """Validate a set of role templates together.

    Cross-role prerequisite states are resolved against *any* template in
    the family, clearing the per-template warnings when they match.
    """
    combined = ValidationReport()
    all_states = {s for t in templates for s in t.graph.states}
    for template in templates:
        single = validate_template(template)
        combined.errors.extend(f"{template.name}: {e}" for e in single.errors)
        combined.dead_pairs.extend(single.dead_pairs)
        for warning in single.warnings:
            if "multi-role wiring" in warning:
                state = warning.split("'")[1]
                if state in all_states:
                    continue  # resolved by a sibling role
            combined.warnings.append(f"{template.name}: {warning}")
    return combined
