"""Template linting (paper §IV-A: FSMs are hand-written or mined — check them).

Hand-written FSMs drift from the protocol and mined FSMs inherit trace
noise; either way a broken template silently degrades inference.  The
validator checks the structural properties the engine relies on:

- **determinism** — at most one normal transition per (state, label);
- **connectivity** — every state reachable from the initial state;
- **liveness** — every non-terminal state has an outgoing transition
  (reported as info, not an error: drop states are legitimately terminal);
- **prerequisite sanity** — every rule references states that exist in the
  graph (explicit-node rules against the *peer* node's template are
  resolved by :func:`validate_role_family` / the cross-FSM analyzer in
  :mod:`repro.check.crossfsm`);
- **intra coverage** — which labels are dead at which states (neither a
  normal transition nor a derived jump), i.e. where logs will be omitted.

Findings are reported twice, deliberately: the legacy ``errors`` /
``warnings`` string lists (kept for existing callers) and the shared
:class:`~repro.check.findings.Finding` model with stable ``TP*`` rule
codes, so old and new checks report uniformly through ``refill check``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional, Sequence

from repro.check.findings import Finding, Severity
from repro.fsm.templates import FsmTemplate


@dataclass
class ValidationReport:
    """Findings for one template (or a role family)."""

    errors: list[str] = field(default_factory=list)
    warnings: list[str] = field(default_factory=list)
    #: (state, label) pairs where an observed event would be omitted.
    dead_pairs: list[tuple[str, str]] = field(default_factory=list)
    #: The same findings through the shared model (stable ``TP*`` codes).
    findings: list[Finding] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.errors

    def _add(
        self, severity: Severity, code: str, location: str, message: str
    ) -> None:
        self.findings.append(Finding(severity, code, location, message))
        if severity is Severity.ERROR:
            self.errors.append(message)
        elif severity is Severity.WARNING:
            self.warnings.append(message)


def validate_template(template: FsmTemplate) -> ValidationReport:
    """Lint ``template``; see module docstring for the checks."""
    report = ValidationReport()
    graph = template.graph
    loc = f"template {template.name!r}"

    # determinism per (state, label)
    for state in graph.states:
        for label in graph.events:
            edges = graph.transitions_from(state, label)
            if len(edges) > 1:
                report._add(
                    Severity.ERROR,
                    "TP001",
                    loc,
                    f"nondeterministic: {len(edges)} transitions for "
                    f"({state!r}, {label!r})",
                )

    # connectivity from the initial state
    reachable = {graph.initial} | set(template.reach.reachable_set(graph.initial))
    for state in graph.states:
        if state not in reachable:
            report._add(
                Severity.ERROR,
                "TP002",
                loc,
                f"state {state!r} unreachable from {graph.initial!r}",
            )

    # liveness info
    for state in graph.states:
        if not graph.outgoing(state):
            report._add(Severity.WARNING, "TP003", loc, f"state {state!r} is terminal")

    # prerequisite sanity: referenced states exist *somewhere sensible*.
    # Rules usually point at the same template (uniform-role protocols);
    # unknown states are warnings because multi-role wiring is legal —
    # family-level resolution happens in validate_role_family / refill check.
    for label, rules in template.prereqs.items():
        if label not in graph.events:
            report._add(
                Severity.WARNING,
                "TP004",
                loc,
                f"prerequisite rule for unknown label {label!r}",
            )
        for rule in rules:
            for state in rule.states:
                if not graph.has_state(state):
                    report._add(
                        Severity.WARNING,
                        "TP004",
                        loc,
                        f"prerequisite state {state!r} (label {label!r}) is not "
                        "a state of this template (multi-role wiring?)",
                    )

    # dead (state, label) pairs
    for state in graph.states:
        for label in graph.events:
            if graph.transitions_from(state, label):
                continue
            if (state, label) in template.intra:
                continue
            report.dead_pairs.append((state, label))
            report.findings.append(
                Finding(
                    Severity.INFO,
                    "TP005",
                    loc,
                    f"dead pair: {label!r} at {state!r} would be omitted",
                )
            )

    return report


def validate_role_family(
    templates: Sequence[FsmTemplate],
    *,
    node_templates: Optional[Mapping[int, FsmTemplate]] = None,
) -> ValidationReport:
    """Validate a set of role templates together.

    Cross-role prerequisite states are resolved against *any* template in
    the family, clearing the per-template warnings when they match.
    Explicit-node rules are held to a stricter standard: a referenced state
    absent from the peer node's template (``node_templates`` when given,
    otherwise every template in the family) is an **error** — such a rule
    can never be satisfied and would silently suppress inference.
    """
    combined = ValidationReport()
    all_states = {s for t in templates for s in t.graph.states}
    for template in templates:
        single = validate_template(template)
        combined.errors.extend(f"{template.name}: {e}" for e in single.errors)
        combined.dead_pairs.extend(single.dead_pairs)
        for finding in single.findings:
            if finding.code == "TP004" and "multi-role wiring" in finding.message:
                continue  # superseded by the family-level resolution below
            if finding.severity is Severity.WARNING:
                combined.warnings.append(f"{template.name}: {finding.message}")
            combined.findings.append(finding)
        family = _resolve_family_prereqs(template, all_states, node_templates)
        combined.findings.extend(family)
        combined.errors.extend(
            f.message for f in family if f.severity is Severity.ERROR
        )
        combined.warnings.extend(
            f.message for f in family if f.severity is Severity.WARNING
        )
    return combined


def _resolve_family_prereqs(
    template: FsmTemplate,
    all_states: set[str],
    node_templates: Optional[Mapping[int, FsmTemplate]],
) -> list[Finding]:
    """Family-wide prerequisite-state resolution for one template.

    Selector rules (``Peer.SRC`` etc.) may point at any role, so a state
    found in *some* template resolves; absent everywhere is an error
    (``XF001``).  Explicit-node rules resolve against the mapped peer
    template when ``node_templates`` names one (``XF005`` on miss),
    otherwise against the whole family.
    """
    findings: list[Finding] = []
    loc = f"template {template.name!r}"
    for label, rules in sorted(template.prereqs.items()):
        for rule in rules:
            peer = rule.peer
            peer_template = (
                node_templates.get(peer)
                if node_templates is not None and isinstance(peer, int)
                else None
            )
            for state in rule.states:
                if peer_template is not None:
                    if not peer_template.graph.has_state(state):
                        findings.append(
                            Finding(
                                Severity.ERROR,
                                "XF005",
                                loc,
                                f"{template.name}: prerequisite state {state!r} "
                                f"(label {label!r}) is not a state of node "
                                f"{peer}'s template {peer_template.name!r}",
                            )
                        )
                elif state not in all_states:
                    code = "XF005" if isinstance(peer, int) else "XF001"
                    findings.append(
                        Finding(
                            Severity.ERROR,
                            code,
                            loc,
                            f"{template.name}: prerequisite state {state!r} "
                            f"(label {label!r}, peer {peer!r}) does not exist in "
                            "any template of the family",
                        )
                    )
    return findings
