"""Mining an FSM from complete example traces (paper §IV-A).

"The FSM can be generated manually [21] or with automatic tools [6]" — this
module is the automatic tool: given complete per-node event-label traces
(e.g. from a testbed run with reliable logging, or the simulator's ground
truth), it infers a transition graph by prefix-tree construction followed by
state merging on k-future equivalence (a classic passive automaton-learning
scheme à la k-tails).

The mined template can then run as an inference engine on *lossy* field
logs — tested round-trip against the hand-written forwarder FSM.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable, Sequence

from repro.fsm.graph import Transition, TransitionGraph


def mine_fsm(
    traces: Iterable[Sequence[str]],
    *,
    k: int = 2,
    initial_name: str = "q0",
) -> TransitionGraph:
    """Infer a transition graph from complete label sequences.

    Parameters
    ----------
    traces:
        Event-label sequences, each a complete episode starting from the
        (common) initial state.
    k:
        Future horizon for state merging: two states merge when the sets of
        length-≤k label sequences leaving them are equal (k-tails).  Larger
        ``k`` merges less and yields bigger machines.
    """
    traces = [tuple(t) for t in traces]
    if not traces:
        raise ValueError("need at least one trace")
    if any(len(t) == 0 for t in traces):
        raise ValueError("traces must be non-empty")

    # 1. prefix tree: state = id, edges labelled
    children: dict[int, dict[str, int]] = defaultdict(dict)
    next_id = 1
    for trace in traces:
        state = 0
        for label in trace:
            nxt = children[state].get(label)
            if nxt is None:
                nxt = next_id
                next_id += 1
                children[state][label] = nxt
            state = nxt

    # 2. k-futures per state
    def futures(state: int, depth: int) -> frozenset[tuple[str, ...]]:
        if depth == 0:
            return frozenset({()})
        out = {()}
        for label, nxt in children[state].items():
            for tail in futures(nxt, depth - 1):
                out.add((label, *tail))
        return frozenset(out)

    signature = {state: futures(state, k) for state in range(next_id)}

    # 3. merge states by signature; iterate because merging can expose new
    # equivalences through the representative map
    representative: dict[int, int] = {}
    by_signature: dict[frozenset, int] = {}
    for state in range(next_id):
        sig = signature[state]
        if sig in by_signature:
            representative[state] = by_signature[sig]
        else:
            by_signature[sig] = state
            representative[state] = state

    # 4. build the merged graph
    merged_edges: set[tuple[int, int, str]] = set()
    for state in range(next_id):
        for label, nxt in children[state].items():
            merged_edges.add((representative[state], representative[nxt], label))

    kept = sorted({representative[s] for s in range(next_id)})
    names = {state: (initial_name if state == representative[0] else f"q{state}") for state in kept}
    transitions = [
        Transition(names[a], names[b], label) for a, b, label in sorted(merged_edges)
    ]
    return TransitionGraph([names[s] for s in kept], transitions, names[representative[0]])


def traces_from_flows(
    label_sequences: Iterable[Sequence[str]],
) -> list[tuple[str, ...]]:
    """Normalize/validate trace input (deduplicated, order kept)."""
    seen: dict[tuple[str, ...], None] = {}
    for seq in label_sequences:
        seen[tuple(seq)] = None
    return list(seen)


def accepts(graph: TransitionGraph, trace: Sequence[str]) -> bool:
    """Whether the graph can replay ``trace`` from its initial state.

    State merging can leave multiple same-label edges from one state, so the
    replay is a nondeterministic subset simulation.
    """
    states = {graph.initial}
    for label in trace:
        states = {t.dst for s in states for t in graph.transitions_from(s, label)}
        if not states:
            return False
    return True
