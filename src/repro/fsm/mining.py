"""Mining an FSM from complete example traces (paper §IV-A).

.. deprecated::
    This module is a compatibility shim.  The mining implementation moved to
    :mod:`repro.learn.ktails` when the ``refill learn`` subsystem landed —
    the learner needed determinization, canonical state naming, and replay
    helpers that belong with the rest of the model-inference pipeline.
    Import :func:`mine_fsm`, :func:`accepts`, and :func:`traces_from_flows`
    from :mod:`repro.learn.ktails` in new code; these re-exports are kept so
    existing callers keep working unchanged.
"""

from __future__ import annotations

from repro.learn.ktails import accepts, mine_fsm, traces_from_flows

__all__ = ["accepts", "mine_fsm", "traces_from_flows"]
