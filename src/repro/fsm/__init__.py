"""Finite-state-machine substrate for the inference engines (paper §IV-A/B).

The transition graph ``G = (S, T, E)`` is a directed multigraph whose edges
carry event labels; several edges may carry the same label.  On top of the
raw graph this package derives:

- reachability and shortest normal-transition paths
  (:mod:`repro.fsm.reachability`),
- *intra-node* jump transitions, which let an engine skip over lost events
  when the target state is unambiguous (:mod:`repro.fsm.intra`),
- *inter-node* prerequisite transitions connecting FSMs of different nodes
  (:mod:`repro.fsm.prerequisites`),
- concrete templates: the CTP forwarding FSM of the evaluation workload and
  small dissemination FSMs exercising 1-to-many / many-to-1 inter-node
  transitions (:mod:`repro.fsm.templates`).
"""

from repro.fsm.graph import Transition, TransitionGraph
from repro.fsm.reachability import Reachability
from repro.fsm.intra import IntraTransition, derive_intra_transitions
from repro.fsm.prerequisites import PrereqRule, Peer
from repro.fsm.templates import (
    FsmTemplate,
    chain_template,
    dissemination_templates,
    forwarder_template,
    query_templates,
)
from repro.fsm.mining import accepts, mine_fsm
from repro.fsm.validate import validate_role_family, validate_template

__all__ = [
    "Transition",
    "TransitionGraph",
    "Reachability",
    "IntraTransition",
    "derive_intra_transitions",
    "PrereqRule",
    "Peer",
    "FsmTemplate",
    "forwarder_template",
    "chain_template",
    "dissemination_templates",
    "query_templates",
    "mine_fsm",
    "accepts",
    "validate_template",
    "validate_role_family",
]
