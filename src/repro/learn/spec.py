"""The serialized product of ``refill learn``: a declarative deployment spec.

A :class:`LearnedSpec` is everything the learner inferred — the mined
transition graph, role-specific initial states, label-side classification,
prerequisite rules with their supporting evidence, and corpus statistics —
packaged as a plain-JSON document (``docs/LEARNING.md`` describes every
field).  Serialization is canonical (:func:`repro.core.serialize.dumps_canonical`),
so the same corpus and flags always produce byte-identical files and a
load/save round trip is the identity.

A spec *realizes* into the live model types the rest of the toolchain
consumes: :meth:`LearnedSpec.realize_template` builds an
:class:`~repro.fsm.templates.FsmTemplate` (with a generic side-based
realizer and an origin-only admissibility predicate) and
:meth:`LearnedSpec.deployment_spec` wraps it for the static analyzer, which
is how ``refill check --spec learned.json`` and
``refill analyze --spec learned.json`` close the learn → check → analyze
loop.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Mapping, Optional, Sequence

from repro.core.serialize import dumps_canonical
from repro.events.event import Event
from repro.events.packet import PacketKey
from repro.fsm.graph import Transition, TransitionGraph
from repro.fsm.prerequisites import Peer, PrereqRule
from repro.fsm.templates import FsmTemplate, NeighborContext
from repro.learn.prereqs import MinedRule
from repro.learn.traces import TraceCorpus

#: Format tag carried by every serialized spec.
SPEC_FORMAT = "refill/learned-spec-v1"

#: Top-level JSON fields of a serialized spec, in canonical (sorted) order.
#: ``docs/LEARNING.md`` documents each one; the doc-coverage test enforces it.
SPEC_FIELDS = (
    "deployment",
    "format",
    "fsm",
    "k",
    "labels",
    "min_support",
    "name",
    "prereqs",
    "stats",
)


@dataclass(frozen=True)
class LearnedSpec:
    """A learned deployment model, JSON-round-trippable byte-for-byte."""

    name: str
    k: int
    min_support: float
    initial: str
    states: tuple[str, ...]
    #: ``(src, label, dst)`` triples in canonical graph order.
    transitions: tuple[tuple[str, str, str], ...]
    #: Role → non-default start state (empty for single-initial models).
    initials: Mapping[str, str] = field(default_factory=dict)
    sender_side: tuple[str, ...] = ()
    receiver_side: tuple[str, ...] = ()
    local_labels: tuple[str, ...] = ()
    origin_only: tuple[str, ...] = ()
    aux_labels: tuple[str, ...] = ()
    prereqs: tuple[MinedRule, ...] = ()
    sink: Optional[int] = None
    base_station: Optional[int] = None
    #: Corpus statistics (integers only, for byte-stable serialization).
    stats: Mapping[str, object] = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    # serialization

    def to_json(self) -> dict:
        return {
            "format": SPEC_FORMAT,
            "name": self.name,
            "k": self.k,
            "min_support": self.min_support,
            "fsm": {
                "initial": self.initial,
                "states": list(self.states),
                "transitions": [list(t) for t in self.transitions],
                "initials": dict(self.initials),
            },
            "labels": {
                "sender_side": list(self.sender_side),
                "receiver_side": list(self.receiver_side),
                "local": list(self.local_labels),
                "origin_only": list(self.origin_only),
                "aux": list(self.aux_labels),
            },
            "prereqs": [
                {
                    "label": r.label,
                    "peer": r.peer,
                    "state": r.state,
                    "alt_states": list(r.alt_states),
                    "supported": r.supported,
                    "observations": r.observations,
                }
                for r in self.prereqs
            ],
            "deployment": {"sink": self.sink, "base_station": self.base_station},
            "stats": dict(self.stats),
        }

    def to_json_str(self) -> str:
        """Canonical serialization: sorted keys, minimal separators."""
        return dumps_canonical(self.to_json()) + "\n"

    @classmethod
    def from_json(cls, data: Mapping) -> "LearnedSpec":
        if data.get("format") != SPEC_FORMAT:
            raise ValueError(
                f"not a learned spec (format={data.get('format')!r}, "
                f"expected {SPEC_FORMAT!r})"
            )
        fsm = data["fsm"]
        labels = data["labels"]
        deployment = data.get("deployment", {})
        return cls(
            name=data["name"],
            k=data["k"],
            min_support=data["min_support"],
            initial=fsm["initial"],
            states=tuple(fsm["states"]),
            transitions=tuple((t[0], t[1], t[2]) for t in fsm["transitions"]),
            initials=dict(fsm.get("initials", {})),
            sender_side=tuple(labels["sender_side"]),
            receiver_side=tuple(labels["receiver_side"]),
            local_labels=tuple(labels["local"]),
            origin_only=tuple(labels["origin_only"]),
            aux_labels=tuple(labels["aux"]),
            prereqs=tuple(
                MinedRule(
                    label=r["label"],
                    peer=r["peer"],
                    state=r["state"],
                    alt_states=tuple(r["alt_states"]),
                    supported=r["supported"],
                    observations=r["observations"],
                )
                for r in data.get("prereqs", ())
            ),
            sink=deployment.get("sink"),
            base_station=deployment.get("base_station"),
            stats=dict(data.get("stats", {})),
        )

    # ------------------------------------------------------------------ #
    # realization

    def graph(self) -> TransitionGraph:
        return TransitionGraph(
            list(self.states),
            [Transition(src, dst, label) for src, label, dst in self.transitions],
            self.initial,
        )

    def realize_template(self) -> FsmTemplate:
        """A runnable :class:`FsmTemplate` for the learned model.

        The realizer is generic over the label-side classification:
        receiver-side labels are recorded at the pair's receiver (sender is
        the packet's known upstream), sender-side at the sender (receiver is
        the known downstream), local labels carry no pair.  Admissibility
        restricts origin-only labels (``gen``-like) to the packet's origin;
        ``initial_for`` applies the learned role-specific start states.
        """
        graph = self.graph()
        receiver = frozenset(self.receiver_side)
        sender = frozenset(self.sender_side)
        origin_only = frozenset(self.origin_only)
        prereqs = {
            rule.label: (
                PrereqRule(Peer(rule.peer), rule.state, alt_states=rule.alt_states),
            )
            for rule in self.prereqs
        }

        def admissible(
            t: Transition, node: int, packet: Optional[PacketKey], ctx: NeighborContext
        ) -> bool:
            if t.event in origin_only:
                return packet is not None and node == packet.origin
            return True

        def realize(
            label: str, node: int, packet: Optional[PacketKey], ctx: NeighborContext
        ) -> Event:
            if label in receiver:
                return Event.make(
                    label, node, src=ctx.upstream(node), dst=node, packet=packet
                )
            if label in sender:
                return Event.make(
                    label, node, src=node, dst=ctx.downstream(node), packet=packet
                )
            return Event.make(label, node, packet=packet)

        initial_for = None
        if self.initials:
            initials = dict(self.initials)
            sink, base_station = self.sink, self.base_station

            def initial_for(node: int, packet: Optional[PacketKey]) -> str:
                if packet is not None and node == packet.origin:
                    role = "origin"
                elif base_station is not None and node == base_station:
                    role = "delivery"
                elif sink is not None and node == sink:
                    role = "sink"
                else:
                    role = "forwarder"
                return initials.get(role, graph.initial)

        return FsmTemplate(
            name=self.name,
            graph=graph,
            prereqs=prereqs,
            admissible=admissible if origin_only else None,
            realize=realize,
            initial_for=initial_for,
        )

    def deployment_spec(self):
        """Wrap the realized template for the static analyzer / check CLI."""
        from repro.check.crossfsm import DeploymentSpec

        return DeploymentSpec(
            roles={self.name: self.realize_template()},
            aux_labels=frozenset(self.aux_labels),
        )


def build_spec(
    corpus: TraceCorpus,
    graph: TransitionGraph,
    rules: Sequence[MinedRule],
    *,
    initials: Mapping[str, str],
    name: str,
    k: int,
    min_support: float,
) -> LearnedSpec:
    """Package the outputs of the three learning stages into a spec."""
    return LearnedSpec(
        name=name,
        k=k,
        min_support=min_support,
        initial=graph.initial,
        states=tuple(graph.states),
        transitions=tuple((t.src, t.event, t.dst) for t in graph.transitions),
        initials=dict(initials),
        sender_side=tuple(sorted(corpus.sender_side)),
        receiver_side=tuple(sorted(corpus.receiver_side)),
        local_labels=tuple(sorted(corpus.local_labels)),
        origin_only=tuple(sorted(corpus.origin_only)),
        aux_labels=tuple(sorted(corpus.aux_labels)),
        prereqs=tuple(rules),
        sink=corpus.sink,
        base_station=corpus.base_station,
        stats={
            "packets": corpus.packets,
            "traces": len(corpus.traces),
            "unique_sequences": len(corpus.support),
            "dropped_traces": corpus.dropped_traces,
            "nodes": len(corpus.nodes),
            "roles": corpus.role_counts(),
        },
    )


def load_learned_spec(path: str | Path) -> LearnedSpec:
    """Load a serialized spec from ``path``."""
    return LearnedSpec.from_json(json.loads(Path(path).read_text()))


def save_learned_spec(spec: LearnedSpec, path: str | Path) -> None:
    """Write ``spec`` to ``path`` in canonical byte-stable form."""
    Path(path).write_text(spec.to_json_str())
