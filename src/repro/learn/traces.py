"""Trace extraction: a log corpus as per-(packet, node) label sequences.

The first stage of the ``refill learn`` pipeline.  Events are grouped by
packet (:func:`repro.events.merge.group_by_packet`), each node's events for
a packet are projected to their label sequence in append order, and every
sequence is tagged with the node's *role* for that packet:

- ``origin`` — the node that generated the packet (``packet.origin``);
- ``delivery`` — the base station (when known from store metadata);
- ``sink`` — the sink node (when known);
- ``forwarder`` — everything else.

Alongside the sequences the corpus records what the later stages need:
support counts (how often each distinct sequence occurred), label *side*
classification (recorded on the pair's sender vs receiver — the basis for
the learned realizer and the prerequisite miner's direction heuristic),
origin-only labels (the basis for the learned admissibility predicate), and
aux labels (events without a packet key, which drive no FSM).

**Lossy-trace filtering.**  Field corpora are dirty; two deterministic
filters keep damaged sequences from training the model:

- traces from nodes with undecodable log lines are dropped (a corrupt shard
  may have lost records *between* this packet's events, so its sequences
  cannot be trusted as complete episodes);
- unique sequences below ``min_trace_support`` occurrences are deweighted
  out of FSM training (damage produces rare one-off orderings; real
  protocol behavior repeats).

**Multi-initial mining.**  :meth:`TraceCorpus.mine` wraps the k-tails miner
with role-aware initial-state refinement: a role whose exclusive sequences
can be fully replayed from some *existing* state of the machine mined from
the remaining traces is given that state as its initial (recorded in the
spec's ``initials``) instead of polluting the common initial with its
edges.  The CTP no-gen corpus is the canonical case: origin traces start
mid-protocol (``trans ...``), and the refinement recovers the hand-written
``initial_for`` that starts origins at RECEIVED.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Mapping, Optional

from repro.events.event import Event
from repro.events.log import NodeLog
from repro.events.merge import group_by_packet
from repro.events.packet import PacketKey
from repro.fsm.graph import TransitionGraph
from repro.learn.ktails import mine_fsm, replay_states

#: Role tags in refinement order: packet-scoped origin first, then the
#: deployment-scoped delivery (base station) and sink roles.
ROLES = ("origin", "delivery", "sink", "forwarder")


@dataclass(frozen=True)
class ExtractionOptions:
    """Knobs of the lossy-trace filter (all deterministic)."""

    #: Drop every trace from nodes whose shard had undecodable lines.
    filter_corrupt_nodes: bool = True
    #: Unique sequences occurring fewer times than this are excluded from
    #: FSM training (1 keeps everything — the clean-corpus default).
    min_trace_support: int = 1


@dataclass(frozen=True)
class NodeTrace:
    """One (packet, node) projection: the node's events in append order."""

    packet: PacketKey
    node: int
    role: str
    labels: tuple[str, ...]
    events: tuple[Event, ...]


@dataclass
class TraceCorpus:
    """Everything the mining and stitching stages consume."""

    traces: list[NodeTrace]
    #: Occurrences per distinct label sequence (over kept traces).
    support: Counter = field(default_factory=Counter)
    #: Distinct label sequences per role.
    role_sequences: dict[str, set[tuple[str, ...]]] = field(default_factory=dict)
    sender_side: frozenset = frozenset()
    receiver_side: frozenset = frozenset()
    local_labels: frozenset = frozenset()
    origin_only: frozenset = frozenset()
    aux_labels: frozenset = frozenset()
    sink: Optional[int] = None
    base_station: Optional[int] = None
    packets: int = 0
    nodes: frozenset = frozenset()
    #: Nodes whose (uncorrupted) logs are present in the corpus — the
    #: prerequisite miner only counts a missing peer co-event against a
    #: candidate rule when the peer's log actually survived.
    log_nodes: frozenset = frozenset()
    #: Traces dropped by the corrupt-node filter.
    dropped_traces: int = 0
    options: ExtractionOptions = ExtractionOptions()

    def by_packet(self) -> dict[PacketKey, dict[int, NodeTrace]]:
        """Kept traces indexed ``packet -> node -> trace``."""
        out: dict[PacketKey, dict[int, NodeTrace]] = {}
        for trace in self.traces:
            out.setdefault(trace.packet, {})[trace.node] = trace
        return out

    def role_counts(self) -> dict[str, int]:
        """Kept trace count per role (zero-count roles omitted)."""
        counts = Counter(t.role for t in self.traces)
        return {role: counts[role] for role in ROLES if counts[role]}

    def training_sequences(self) -> list[tuple[str, ...]]:
        """Distinct sequences above the support threshold, sorted."""
        floor = max(1, self.options.min_trace_support)
        return sorted(s for s, n in self.support.items() if n >= floor)

    # ------------------------------------------------------------------ #

    def mine(self, *, k: int = 2) -> tuple[TransitionGraph, dict[str, str]]:
        """Mine the per-node FSM with multi-initial role refinement.

        Returns ``(graph, initials)`` where ``initials`` maps role names to
        non-default start states (empty for single-initial corpora).
        """
        training = set(self.training_sequences())
        if not training:
            raise ValueError("no traces survived filtering; nothing to mine")
        by_role = {
            role: set(self.role_sequences.get(role, ())) & training
            for role in ROLES
        }
        # Sequences exclusive to one role are candidates for re-rooting.
        exclusive: dict[str, set[tuple[str, ...]]] = {}
        for role in ("origin", "delivery", "sink"):
            others = set()
            for other in ROLES:
                if other != role:
                    others |= by_role[other]
            exclusive[role] = by_role[role] - others

        pending: dict[str, set[tuple[str, ...]]] = {}
        for role in ("origin", "delivery", "sink"):
            seqs = exclusive[role]
            if not seqs or seqs == training:
                continue
            trial = training - seqs
            graph = mine_fsm(sorted(trial), k=k)
            if _common_start(graph, seqs) is not None:
                training = trial
                pending[role] = seqs

        # Re-verify every pending role against the final machine; a role
        # whose sequences stopped replaying (a later exclusion removed the
        # behavior they relied on) folds back into the common initial.
        while True:
            graph = mine_fsm(sorted(training), k=k)
            initials: dict[str, str] = {}
            failed = None
            for role in ("origin", "delivery", "sink"):
                if role not in pending:
                    continue
                start = _common_start(graph, pending[role])
                if start is None:
                    failed = role
                    break
                if start != graph.initial:
                    initials[role] = start
            if failed is None:
                return graph, initials
            training |= pending.pop(failed)


def _common_start(
    graph: TransitionGraph, sequences: set
) -> Optional[str]:
    """First state (canonical order) that replays every sequence, if any."""
    for state in graph.states:
        if all(
            replay_states(graph, seq, start=state) is not None
            for seq in sorted(sequences)
        ):
            return state
    return None


def extract_traces(
    logs: Mapping[int, NodeLog],
    *,
    sink: Optional[int] = None,
    base_station: Optional[int] = None,
    corrupt_lines: Optional[Mapping[int, int]] = None,
    options: ExtractionOptions = ExtractionOptions(),
) -> TraceCorpus:
    """Project a log collection into a :class:`TraceCorpus`."""
    corrupt = {
        node for node, bad in (corrupt_lines or {}).items() if bad > 0
    } if options.filter_corrupt_nodes else set()

    grouped = group_by_packet(logs)
    traces: list[NodeTrace] = []
    support: Counter = Counter()
    role_sequences: dict[str, set[tuple[str, ...]]] = {role: set() for role in ROLES}
    dropped = 0
    origin_nodes: dict[str, set[bool]] = {}
    sender_counts: Counter = Counter()
    receiver_counts: Counter = Counter()
    pair_labels: set[str] = set()
    all_labels: set[str] = set()

    for packet in sorted(grouped):
        per_node = grouped[packet]
        for node in sorted(per_node):
            events = tuple(per_node[node])
            if node in corrupt:
                dropped += 1
                continue
            labels = tuple(e.etype for e in events)
            role = _role_of(node, packet, sink=sink, base_station=base_station)
            traces.append(NodeTrace(packet, node, role, labels, events))
            support[labels] += 1
            role_sequences[role].add(labels)
            for event in events:
                all_labels.add(event.etype)
                origin_nodes.setdefault(event.etype, set()).add(
                    event.node == packet.origin
                )
                if event.src is not None and event.dst is not None:
                    pair_labels.add(event.etype)
                    if event.node == event.src:
                        sender_counts[event.etype] += 1
                    elif event.node == event.dst:
                        receiver_counts[event.etype] += 1

    aux: set[str] = set()
    for node in sorted(logs):
        if node in corrupt:
            continue
        for event in logs[node]:
            if event.packet is None:
                aux.add(event.etype)

    sender_side = frozenset(
        label for label in pair_labels
        if sender_counts[label] > 0 and receiver_counts[label] == 0
    )
    receiver_side = frozenset(
        label for label in pair_labels
        if receiver_counts[label] > 0 and sender_counts[label] == 0
    )
    local = frozenset(all_labels) - sender_side - receiver_side
    origin_only = frozenset(
        label for label, flags in origin_nodes.items() if flags == {True}
    )

    return TraceCorpus(
        traces=traces,
        support=support,
        role_sequences=role_sequences,
        sender_side=sender_side,
        receiver_side=receiver_side,
        local_labels=local,
        origin_only=origin_only,
        aux_labels=frozenset(aux),
        sink=sink,
        base_station=base_station,
        packets=len(grouped),
        nodes=frozenset(t.node for t in traces),
        log_nodes=frozenset(set(logs) - corrupt),
        dropped_traces=dropped,
        options=options,
    )


def _role_of(
    node: int,
    packet: PacketKey,
    *,
    sink: Optional[int],
    base_station: Optional[int],
) -> str:
    if node == packet.origin:
        return "origin"
    if base_station is not None and node == base_station:
        return "delivery"
    if sink is not None and node == sink:
        return "sink"
    return "forwarder"
