"""Prerequisite mining: PRINS-style stitching of per-node FSMs.

The third stage of ``refill learn``: given the mined per-node machine and
the trace corpus, propose inter-node :class:`~repro.fsm.prerequisites`
rules ("downstream ``recv`` requires the upstream engine to have visited
SENT") from cross-node ordering support.  Clock readings are never
compared — collected logs carry offsets of minutes and independent drift —
so every signal below is structural:

**Direction.**  A label recorded on the pair's *receiver* (``node == dst``)
always gets a candidate ``Peer.SRC`` rule: the packet demonstrably came
from the sender, so the sender's engine moved first.  A label recorded on
the *sender* (``node == src``) gets a candidate ``Peer.DST`` rule only when
it is a *confirmation* label — (almost) every occurrence is preceded, in
the same node's own log for the same packet and pair, by an earlier
same-pair event.  An ``ack_recvd`` is always preceded by its ``trans`` and
confirms something happened at the receiver; a first ``trans`` is preceded
by nothing and asserts nothing about its receiver.  This same-log ordering
is exact (single-node order survives collection) and keeps causally
reversed rules like "``trans`` requires the receiver to have RECEIVED" out
of the candidate set.

**Support.**  Each occurrence of a candidate label is checked against the
peer's trace for the same packet: does it contain a same-``(src, dst)``
co-event?  Occurrences whose peer log is missing from the corpus are
skipped (absence of evidence), while a surviving peer log with no co-event
counts against the rule — that is exactly the ``timeout`` signature, where
the receiver usually never saw the packet.  Delivery-hop occurrences (the
base station's serial link, whose sender side is physically unloggable)
are excluded from the statistics; the emitted selector rules still apply
network-wide at inference time, which is what lets the engine re-derive
the unloggable serial ``trans``.

**Prerequisite state.**  For supported occurrences the peer's trace is
replayed through the mined deterministic machine (role-aware initial) and
the state reached immediately after the *first* co-event is recorded — the
weakest state the peer must have visited.  The most common state becomes
the rule's primary state; other observed states become ``alt_states``
(the learned analog of "a queue overflow also satisfies an ack's
prerequisite").
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Mapping

from repro.fsm.graph import TransitionGraph
from repro.learn.ktails import replay_states
from repro.learn.traces import NodeTrace, TraceCorpus


@dataclass(frozen=True)
class MinedRule:
    """One learned prerequisite with its supporting evidence."""

    label: str
    #: Peer selector: ``"src"`` or ``"dst"``.
    peer: str
    state: str
    alt_states: tuple[str, ...] = ()
    #: Occurrences whose peer trace contained a same-pair co-event.
    supported: int = 0
    #: All occurrences counted (peer log present, replay resolvable).
    observations: int = 0

    @property
    def support(self) -> float:
        return self.supported / self.observations if self.observations else 0.0


def mine_prereqs(
    corpus: TraceCorpus,
    graph: TransitionGraph,
    initials: Mapping[str, str],
    *,
    min_support: float = 0.9,
    min_observations: int = 3,
) -> list[MinedRule]:
    """Propose prerequisite rules for the mined machine.

    Returns rules sorted by label for deterministic serialization; only
    candidates with ``observations >= min_observations`` and a supported
    fraction ``>= min_support`` are emitted.
    """
    if not 0.0 < min_support <= 1.0:
        raise ValueError("min_support must be in (0, 1]")
    by_packet = corpus.by_packet()
    state_index = {state: i for i, state in enumerate(graph.states)}
    replay_cache: dict[tuple[tuple[str, ...], str], list[str] | None] = {}

    def states_of(trace: NodeTrace) -> list[str] | None:
        start = initials.get(trace.role, graph.initial)
        key = (trace.labels, start)
        if key not in replay_cache:
            replay_cache[key] = replay_states(graph, trace.labels, start=start)
        return replay_cache[key]

    confirmations = _confirmation_labels(corpus, min_fraction=min_support)
    candidates = sorted(
        [(label, "src") for label in corpus.receiver_side]
        + [(label, "dst") for label in corpus.sender_side if label in confirmations]
    )

    rules: list[MinedRule] = []
    for label, peer_side in candidates:
        supported = 0
        unsupported = 0
        state_counts: Counter = Counter()
        for trace in corpus.traces:
            if trace.role == "delivery":
                continue  # serial hop: the peer's send side is unloggable
            for event in trace.events:
                if event.etype != label or event.src is None or event.dst is None:
                    continue
                peer = event.src if peer_side == "src" else event.dst
                if peer == corpus.base_station:
                    continue  # serial hop, other direction
                if peer not in corpus.log_nodes:
                    continue  # peer log lost: absence of evidence
                peer_trace = by_packet.get(trace.packet, {}).get(peer)
                co_index = _first_co_event(peer_trace, event.src, event.dst)
                if co_index is None:
                    unsupported += 1
                    continue
                peer_states = states_of(peer_trace)  # type: ignore[arg-type]
                if peer_states is None:
                    continue  # peer trace not explained by the machine
                supported += 1
                state_counts[peer_states[co_index + 1]] += 1
        observations = supported + unsupported
        if observations < min_observations or not state_counts:
            continue
        if supported / observations < min_support:
            continue
        ranked = sorted(
            state_counts.items(), key=lambda item: (-item[1], state_index[item[0]])
        )
        rules.append(
            MinedRule(
                label=label,
                peer=peer_side,
                state=ranked[0][0],
                alt_states=tuple(state for state, _count in ranked[1:]),
                supported=supported,
                observations=observations,
            )
        )
    return rules


def _first_co_event(
    peer_trace: NodeTrace | None, src: int, dst: int
) -> int | None:
    """Index of the peer's first event with the same ``(src, dst)`` pair."""
    if peer_trace is None:
        return None
    for i, event in enumerate(peer_trace.events):
        if event.src == src and event.dst == dst:
            return i
    return None


def _confirmation_labels(
    corpus: TraceCorpus, *, min_fraction: float
) -> frozenset[str]:
    """Sender-side labels whose occurrences follow a same-pair event.

    Fractions are measured within each node's own log (exact ordering):
    ``ack_recvd``/``timeout`` always follow their ``trans`` (fraction 1.0)
    while a ``trans`` opens its pair most of the time (fraction well below
    any sensible threshold), so only genuine confirmations survive.
    """
    preceded: Counter = Counter()
    total: Counter = Counter()
    for trace in corpus.traces:
        seen_pairs: set[tuple[int, int]] = set()
        for event in trace.events:
            if event.src is None or event.dst is None:
                continue
            if event.etype in corpus.sender_side:
                total[event.etype] += 1
                if (event.src, event.dst) in seen_pairs:
                    preceded[event.etype] += 1
            seen_pairs.add((event.src, event.dst))
    return frozenset(
        label
        for label in corpus.sender_side
        if total[label] and preceded[label] / total[label] >= min_fraction
    )
