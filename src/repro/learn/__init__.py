"""Model inference: learn FSM templates and prerequisites from log corpora.

The ``refill learn`` subsystem (see ``docs/LEARNING.md``) turns a clean or
lightly lossy log corpus into a runnable, serializable deployment spec:

- :mod:`repro.learn.traces` — per-(packet, node) label-trace extraction
  with role tagging, label-side classification, and a lossy-trace filter;
- :mod:`repro.learn.ktails` — deterministic, determinizing k-tails mining
  (the single implementation behind :mod:`repro.fsm.mining`);
- :mod:`repro.learn.prereqs` — PRINS-style stitching of inter-node
  prerequisite rules from cross-node ordering support;
- :mod:`repro.learn.spec` — the JSON-round-trippable
  :class:`~repro.learn.spec.LearnedSpec` that realizes into
  :class:`~repro.fsm.templates.FsmTemplate` /
  :class:`~repro.check.crossfsm.DeploymentSpec`;
- :mod:`repro.learn.evaluate` — graph similarity vs the ground-truth
  template and reconstruction accuracy on a held-out lossy corpus.

:func:`learn_from_store` is the one-call pipeline the CLI verb wraps.
"""

from __future__ import annotations

from typing import Mapping, Optional

from repro.events.log import NodeLog
from repro.learn.ktails import accepts, mine_fsm, replay_states, traces_from_flows
from repro.learn.prereqs import mine_prereqs
from repro.learn.spec import LearnedSpec, build_spec, load_learned_spec
from repro.learn.traces import ExtractionOptions, TraceCorpus, extract_traces

__all__ = [
    "ExtractionOptions",
    "LearnedSpec",
    "TraceCorpus",
    "accepts",
    "build_spec",
    "extract_traces",
    "learn_from_logs",
    "learn_from_store",
    "load_learned_spec",
    "mine_fsm",
    "mine_prereqs",
    "replay_states",
    "traces_from_flows",
]


def learn_from_logs(
    logs: Mapping[int, NodeLog],
    *,
    k: int = 2,
    min_support: float = 0.9,
    name: str = "learned",
    sink: Optional[int] = None,
    base_station: Optional[int] = None,
    corrupt_lines: Optional[Mapping[int, int]] = None,
    options: ExtractionOptions = ExtractionOptions(),
) -> LearnedSpec:
    """The full learning pipeline over an in-memory log collection.

    extract → mine (with multi-initial refinement) → stitch prerequisites →
    package as a :class:`LearnedSpec`.  Deterministic: the same logs and
    flags produce a byte-identical serialized spec.
    """
    corpus = extract_traces(
        logs,
        sink=sink,
        base_station=base_station,
        corrupt_lines=corrupt_lines,
        options=options,
    )
    graph, initials = corpus.mine(k=k)
    rules = mine_prereqs(corpus, graph, initials, min_support=min_support)
    return build_spec(
        corpus,
        graph,
        rules,
        initials=initials,
        name=name,
        k=k,
        min_support=min_support,
    )


def learn_from_store(
    store,
    *,
    k: int = 2,
    min_support: float = 0.9,
    name: str = "learned",
    options: ExtractionOptions = ExtractionOptions(),
) -> LearnedSpec:
    """:func:`learn_from_logs` over a :class:`~repro.events.store.LoadedStore`.

    Pulls the sink/base-station ids from the store metadata and feeds the
    per-node corrupt-line counts to the lossy-trace filter.
    """
    return learn_from_logs(
        store.logs,
        k=k,
        min_support=min_support,
        name=name,
        sink=store.metadata.sink,
        base_station=store.metadata.base_station,
        corrupt_lines=store.corrupt_lines,
        options=options,
    )
