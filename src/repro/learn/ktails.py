"""k-tails passive automaton learning (paper §IV-A's "automatic tools").

The single mining implementation behind both :mod:`repro.fsm.mining` (thin
re-exports kept for compatibility) and the ``refill learn`` pipeline.  Given
complete per-node event-label traces it infers a transition graph by:

1. **canonicalization** — traces are deduplicated and sorted, so the result
   is byte-identical no matter what order the corpus handed them over;
2. **prefix-tree construction** — one state per distinct trace prefix;
3. **k-tails merging** — states whose sets of length-≤k outgoing label
   sequences are equal are merged (classic k-tails: merging only ever grows
   the accepted language, so every training trace stays accepted);
4. **determinization** — merged states can carry several same-label edges,
   which the template validator flags as a model error (``TP001``) and the
   inference engine cannot drive; same-``(state, label)`` successors are
   therefore merged to a fixpoint;
5. **canonical renaming** — states are renamed ``q0, q1, ...`` in BFS order
   with label-sorted edge traversal, making state names (and therefore
   serialized :class:`~repro.learn.spec.LearnedSpec` files) stable.

The mined graph is deterministic, fully reachable from its initial state,
and ready to wrap in an :class:`~repro.fsm.templates.FsmTemplate`.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable, Sequence

from repro.fsm.graph import Transition, TransitionGraph


def mine_fsm(
    traces: Iterable[Sequence[str]],
    *,
    k: int = 2,
    initial_name: str = "q0",
) -> TransitionGraph:
    """Infer a deterministic transition graph from complete label sequences.

    Parameters
    ----------
    traces:
        Event-label sequences, each a complete episode starting from the
        (common) initial state.  Order and multiplicity do not matter: the
        input is deduplicated and sorted before mining, so any shuffling of
        the same corpus yields a byte-identical graph.
    k:
        Future horizon for state merging: two states merge when the sets of
        length-≤k label sequences leaving them are equal (k-tails).  Larger
        ``k`` merges less and yields bigger machines.
    initial_name:
        Name given to the initial state; the remaining states are named
        ``q1, q2, ...`` in canonical BFS order.
    """
    material = [tuple(t) for t in traces]
    if not material:
        raise ValueError("need at least one trace")
    if any(len(t) == 0 for t in material):
        raise ValueError("traces must be non-empty")
    if k < 0:
        raise ValueError("k must be non-negative")
    ordered = sorted(set(material))

    # 1. prefix tree: state = int id, edges labelled
    children: dict[int, dict[str, int]] = defaultdict(dict)
    next_id = 1
    for trace in ordered:
        state = 0
        for label in trace:
            nxt = children[state].get(label)
            if nxt is None:
                nxt = next_id
                next_id += 1
                children[state][label] = nxt
            state = nxt

    # 2. k-futures signature per tree state (memoized; k is small)
    memo: dict[tuple[int, int], frozenset[tuple[str, ...]]] = {}

    def futures(state: int, depth: int) -> frozenset[tuple[str, ...]]:
        key = (state, depth)
        cached = memo.get(key)
        if cached is not None:
            return cached
        if depth == 0:
            out = frozenset({()})
        else:
            acc = {()}
            for label, nxt in children[state].items():
                for tail in futures(nxt, depth - 1):
                    acc.add((label, *tail))
            out = frozenset(acc)
        memo[key] = out
        return out

    # 3. merge states by signature (first state in tree order represents)
    parent = list(range(next_id))

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    def union(a: int, b: int) -> None:
        ra, rb = find(a), find(b)
        if ra != rb:
            lo, hi = (ra, rb) if ra < rb else (rb, ra)
            parent[hi] = lo

    by_signature: dict[frozenset, int] = {}
    for state in range(next_id):
        sig = futures(state, k)
        rep = by_signature.setdefault(sig, state)
        union(rep, state)

    # 4. determinize: merge same-(state, label) successor sets to fixpoint.
    # Merging only unions outgoing behavior, so the language keeps growing —
    # training traces remain accepted — and the engine-facing graph satisfies
    # the validator's TP001 determinism requirement.
    def current_edges() -> set[tuple[int, str, int]]:
        return {
            (find(src), label, find(dst))
            for src, out in children.items()
            for label, dst in out.items()
        }

    while True:
        outgoing: dict[tuple[int, str], set[int]] = defaultdict(set)
        for src, label, dst in current_edges():
            outgoing[(src, label)].add(dst)
        conflicts = sorted(
            (key, sorted(dsts)) for key, dsts in outgoing.items() if len(dsts) > 1
        )
        if not conflicts:
            break
        for _key, dsts in conflicts:
            for other in dsts[1:]:
                union(dsts[0], other)

    edges = current_edges()
    adjacency: dict[int, dict[str, int]] = defaultdict(dict)
    for src, label, dst in edges:
        adjacency[src][label] = dst

    # 5. canonical rename: BFS from the initial, labels in sorted order
    root = find(0)
    order: list[int] = [root]
    seen = {root}
    cursor = 0
    while cursor < len(order):
        state = order[cursor]
        cursor += 1
        for label in sorted(adjacency.get(state, ())):
            dst = adjacency[state][label]
            if dst not in seen:
                seen.add(dst)
                order.append(dst)
    index = {state: i for i, state in enumerate(order)}
    names = {
        state: (initial_name if i == 0 else f"q{i}") for state, i in index.items()
    }
    transitions = [
        Transition(names[src], names[dst], label)
        for src, label, dst in sorted(
            edges, key=lambda e: (index[e[0]], e[1], index[e[2]])
        )
    ]
    return TransitionGraph([names[s] for s in order], transitions, names[root])


def traces_from_flows(
    label_sequences: Iterable[Sequence[str]],
) -> list[tuple[str, ...]]:
    """Normalize/validate trace input (deduplicated, order kept)."""
    seen: dict[tuple[str, ...], None] = {}
    for seq in label_sequences:
        seen[tuple(seq)] = None
    return list(seen)


def accepts(graph: TransitionGraph, trace: Sequence[str]) -> bool:
    """Whether the graph can replay ``trace`` from its initial state.

    Works for any transition graph: mined graphs are deterministic, but the
    replay is a nondeterministic subset simulation so hand-written graphs
    with same-label edge fans are handled too.
    """
    states = {graph.initial}
    for label in trace:
        states = {t.dst for s in states for t in graph.transitions_from(s, label)}
        if not states:
            return False
    return True


def replay_states(
    graph: TransitionGraph, trace: Sequence[str], *, start: str | None = None
) -> list[str] | None:
    """The state sequence a *deterministic* graph visits replaying ``trace``.

    Returns ``[start, s1, ..., sN]`` (one state per consumed label) or
    ``None`` when some label has no outgoing transition — the caller treats
    that trace as unexplainable rather than guessing.  Used by the
    prerequisite miner to ask "what state had the peer reached right after
    its n-th event".
    """
    state = graph.initial if start is None else start
    visited = [state]
    for label in trace:
        candidates = graph.transitions_from(state, label)
        if not candidates:
            return None
        state = candidates[0].dst
        visited.append(state)
    return visited
