"""Scoring a learned spec: graph fidelity and end-to-end reconstruction.

Two complementary measures close the learning loop:

- **graph similarity** — the learned transition graph is compared against a
  reference (normally :func:`repro.simnet.truth.ground_truth_template`) by
  their bounded-depth *path languages*: every label sequence of length ≤
  ``depth`` walkable from the initial state.  State names are irrelevant
  (the learner invents ``q0..qN``); language overlap is what determines
  whether inference paths exist.  Precision is the fraction of learned
  behavior the reference admits (low = hallucinated transitions), recall
  the fraction of reference behavior the learner captured (low = missing
  protocol paths).

- **reconstruction accuracy** — the realized template is dropped into the
  full REFILL pipeline (:func:`repro.analysis.pipeline.evaluate`) over a
  *held-out* lossy corpus (different collection seed than any corpus the
  spec was trained on) and scored against ground truth with
  :func:`repro.analysis.accuracy.score_run`.  This is the measure that
  matters: a learned model is good iff it reconstructs flows and diagnoses
  losses about as well as the hand-written template it replaces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.fsm.graph import TransitionGraph
from repro.learn.spec import LearnedSpec

#: Path-language depth: deep enough to cover every interesting forwarder
#: cycle (recv → trans* → ack/timeout with retries) while staying small.
DEFAULT_DEPTH = 6

#: Cap on enumerated sequences per graph — cycles make languages infinite in
#: length but bounded depth keeps them finite; the cap guards pathological
#: graphs (and is logged in the result when hit).
MAX_SEQUENCES = 200_000


@dataclass(frozen=True)
class GraphSimilarity:
    """Bounded-depth language overlap between two transition graphs."""

    precision: float
    recall: float
    depth: int
    learned_sequences: int
    reference_sequences: int
    #: True when either enumeration hit :data:`MAX_SEQUENCES` (scores are
    #: then lower bounds over the enumerated portion).
    truncated: bool = False

    @property
    def f1(self) -> float:
        p, r = self.precision, self.recall
        return 2 * p * r / (p + r) if (p + r) else 0.0


def graph_language(
    graph: TransitionGraph,
    *,
    depth: int = DEFAULT_DEPTH,
    start: Optional[str] = None,
    limit: int = MAX_SEQUENCES,
) -> tuple[frozenset, bool]:
    """All label sequences of length ≤ ``depth`` walkable from ``start``.

    Returns ``(sequences, truncated)``; deterministic (labels explored in
    sorted order, breadth-first) so equal graphs give equal languages.
    """
    initial = graph.initial if start is None else start
    sequences: set[tuple[str, ...]] = {()}
    frontier: list[tuple[str, tuple[str, ...]]] = [(initial, ())]
    for _ in range(depth):
        nxt: list[tuple[str, tuple[str, ...]]] = []
        for state, prefix in frontier:
            for t in sorted(graph.outgoing(state), key=lambda t: (t.event, t.dst)):
                seq = (*prefix, t.event)
                if len(sequences) >= limit:
                    return frozenset(sequences), True
                sequences.add(seq)
                nxt.append((t.dst, seq))
        frontier = nxt
    return frozenset(sequences), False


def graph_similarity(
    learned: TransitionGraph,
    reference: TransitionGraph,
    *,
    depth: int = DEFAULT_DEPTH,
) -> GraphSimilarity:
    """Language precision/recall of ``learned`` against ``reference``."""
    learned_lang, lt = graph_language(learned, depth=depth)
    reference_lang, rt = graph_language(reference, depth=depth)
    overlap = len(learned_lang & reference_lang)
    return GraphSimilarity(
        precision=overlap / len(learned_lang) if learned_lang else 0.0,
        recall=overlap / len(reference_lang) if reference_lang else 0.0,
        depth=depth,
        learned_sequences=len(learned_lang),
        reference_sequences=len(reference_lang),
        truncated=lt or rt,
    )


@dataclass(frozen=True)
class LearnEvaluation:
    """Combined score of a learned spec."""

    similarity: GraphSimilarity
    #: ``AccuracyReport`` from the held-out reconstruction run.
    accuracy: object
    heldout_seed: int
    loss_factor: float

    def summary(self) -> dict:
        """Flat numbers for benchmarks / CI gates."""
        acc = self.accuracy
        return {
            "graph_precision": round(self.similarity.precision, 4),
            "graph_recall": round(self.similarity.recall, 4),
            "graph_f1": round(self.similarity.f1, 4),
            "coverage": round(acc.coverage, 4),
            "cause_accuracy": round(acc.cause_accuracy, 4),
            "event_precision": round(acc.event_precision, 4),
            "event_recall": round(acc.event_recall, 4),
            "ordering_accuracy": round(acc.ordering_accuracy, 4),
        }


def evaluate_spec(
    spec: LearnedSpec,
    params,
    *,
    heldout_seed: int = 424242,
    loss_factor: float = 0.5,
    sim=None,
    depth: int = DEFAULT_DEPTH,
    reference: Optional[TransitionGraph] = None,
) -> LearnEvaluation:
    """Score ``spec`` end to end on a held-out lossy corpus.

    ``params`` is a scenario (:class:`~repro.simnet.scenarios.ScenarioParams`)
    — pass ``sim`` to reuse a cached simulation.  ``heldout_seed`` seeds the
    lossy collection (pick one the learner never saw); ``loss_factor``
    scales the default loss spec (0 = lossless, 1 = full CitySee loss).
    """
    from repro.analysis.accuracy import score_run
    from repro.analysis.pipeline import default_loss_spec, evaluate, run_simulation
    from repro.simnet.truth import ground_truth_template

    if sim is None:
        sim = run_simulation(params)
    if reference is None:
        reference = ground_truth_template().graph
    similarity = graph_similarity(spec.graph(), reference, depth=depth)

    template = spec.realize_template()
    result = evaluate(
        params,
        collection_seed=heldout_seed,
        loss_spec=default_loss_spec(sim).scaled(loss_factor),
        sim=sim,
        template=template,
    )
    accuracy = score_run(
        result.flows,
        result.reports,
        result.collected_logs,
        sim.truth,
        sink=sim.sink,
    )
    return LearnEvaluation(
        similarity=similarity,
        accuracy=accuracy,
        heldout_seed=heldout_seed,
        loss_factor=loss_factor,
    )
