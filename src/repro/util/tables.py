"""Minimal ASCII table rendering for benchmark/report output."""

from __future__ import annotations

from typing import Any, Sequence


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.3f}" if abs(value) < 1000 else f"{value:.1f}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    *,
    title: str | None = None,
) -> str:
    """Render rows as a fixed-width ASCII table."""
    cells = [[_fmt(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(parts: Sequence[str]) -> str:
        return " | ".join(p.ljust(w) for p, w in zip(parts, widths))

    out = []
    if title:
        out.append(title)
    out.append(line(headers))
    out.append("-+-".join("-" * w for w in widths))
    out.extend(line(row) for row in cells)
    return "\n".join(out)
