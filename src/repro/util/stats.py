"""Shared statistics helpers for the analysis layer."""

from __future__ import annotations

from collections import Counter
from typing import Callable, Hashable, Iterable, Mapping, Sequence, TypeVar

T = TypeVar("T")

import numpy as np


def percentage_breakdown(counts: Mapping[Hashable, int]) -> dict[Hashable, float]:
    """Normalize counts into percentages summing to ~100 (empty -> empty)."""
    total = sum(counts.values())
    if total == 0:
        return {k: 0.0 for k in counts}
    return {k: 100.0 * v / total for k, v in counts.items()}


def histogram(values: Iterable[float], edges: Sequence[float]) -> list[int]:
    """Counts of values per ``[edges[i], edges[i+1])`` bucket (vectorized)."""
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        return [0] * (len(edges) - 1)
    counts, _ = np.histogram(arr, bins=np.asarray(edges, dtype=float))
    return counts.astype(int).tolist()


def time_buckets(start: float, end: float, width: float) -> list[float]:
    """Bucket edges covering ``[start, end]`` with the given width."""
    if width <= 0:
        raise ValueError("bucket width must be positive")
    if end < start:
        raise ValueError("end must be >= start")
    n = max(1, int(np.ceil((end - start) / width)))
    return [start + i * width for i in range(n + 1)]


def count_by(items: Iterable[T], key: Callable[[T], Hashable]) -> Counter:
    """Counter over ``key(item)``."""
    counter: Counter = Counter()
    for item in items:
        counter[key(item)] += 1
    return counter
