"""Deterministic named RNG streams.

Simulation components each draw from their own stream so that adding draws
in one component never perturbs another (a standard reproducibility idiom in
discrete-event simulation).  Streams are ``random.Random`` instances —
scalar draws dominate in a control-flow-heavy DES, where the stdlib
generator is faster than ``numpy`` scalar calls.
"""

from __future__ import annotations

import hashlib
import random


class RngStreams:
    """A family of independent, named, deterministic RNG streams."""

    def __init__(self, seed: int) -> None:
        self.seed = int(seed)
        self._streams: dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """The stream for ``name`` (created on first use)."""
        rng = self._streams.get(name)
        if rng is None:
            digest = hashlib.sha256(f"{self.seed}:{name}".encode()).digest()
            rng = random.Random(int.from_bytes(digest[:8], "big"))
            self._streams[name] = rng
        return rng

    def spawn(self, name: str) -> "RngStreams":
        """A child family, independent of this one's streams."""
        digest = hashlib.sha256(f"{self.seed}/{name}".encode()).digest()
        return RngStreams(int.from_bytes(digest[:8], "big"))
