"""Small shared helpers: deterministic RNG streams, ASCII tables, stats."""

from repro.util.rng import RngStreams
from repro.util.tables import render_table
from repro.util.stats import histogram, percentage_breakdown, time_buckets

__all__ = [
    "RngStreams",
    "render_table",
    "histogram",
    "percentage_breakdown",
    "time_buckets",
]
