"""Before/after comparison of loss diagnoses (the paper's day-23 story).

"After the 23th day, we changed the sink and its connection to the mesh
node.  We can see packet losses are significantly reduced."  Operators ask
this question constantly — did the intervention work? — so the comparison
is a first-class object: split the diagnosis at a time boundary (or any
two windows), compare loss rates and cause compositions, and surface what
changed.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Mapping, Optional

from repro.core.diagnosis import LossCause, LossReport
from repro.events.packet import PacketKey
from repro.util.tables import render_table


@dataclass
class WindowDiagnosis:
    """Diagnosis restricted to one time window."""

    label: str
    start: float
    end: float
    packets: int
    lost: int
    causes: Counter

    @property
    def loss_rate(self) -> float:
        return self.lost / self.packets if self.packets else 0.0

    def cause_share(self, cause: LossCause) -> float:
        return self.causes.get(cause, 0) / self.lost if self.lost else 0.0


@dataclass
class DeltaReport:
    """What changed between two windows."""

    before: WindowDiagnosis
    after: WindowDiagnosis

    @property
    def loss_rate_change(self) -> float:
        """after − before (negative = improvement)."""
        return self.after.loss_rate - self.before.loss_rate

    @property
    def improvement_factor(self) -> Optional[float]:
        """before/after loss-rate ratio (>1 = fewer losses after)."""
        if self.after.loss_rate == 0:
            return None if self.before.loss_rate == 0 else float("inf")
        return self.before.loss_rate / self.after.loss_rate

    def cause_deltas(self) -> dict[LossCause, float]:
        """Per-cause change in per-packet loss probability."""
        out: dict[LossCause, float] = {}
        for cause in set(self.before.causes) | set(self.after.causes):
            b = self.before.causes.get(cause, 0) / max(self.before.packets, 1)
            a = self.after.causes.get(cause, 0) / max(self.after.packets, 1)
            out[cause] = a - b
        return out

    def biggest_mover(self) -> Optional[LossCause]:
        deltas = self.cause_deltas()
        if not deltas:
            return None
        return max(deltas, key=lambda c: abs(deltas[c]))

    def render(self) -> str:
        rows = []
        for window in (self.before, self.after):
            rows.append(
                (
                    window.label,
                    window.packets,
                    window.lost,
                    f"{window.loss_rate:.1%}",
                    ", ".join(
                        f"{cause}={count}" for cause, count in window.causes.most_common(3)
                    ),
                )
            )
        table = render_table(
            ["window", "packets", "lost", "loss_rate", "top causes"],
            rows,
            title="Before/after comparison",
        )
        factor = self.improvement_factor
        verdict = (
            "no losses either side"
            if factor is None
            else f"loss rate changed x{1 / factor:.2f} (before -> after)"
        )
        return f"{table}\n{verdict}"


def window_diagnosis(
    reports: Mapping[PacketKey, LossReport],
    est_times: Mapping[PacketKey, Optional[float]],
    *,
    label: str,
    start: float,
    end: float,
) -> WindowDiagnosis:
    """Restrict a diagnosis to packets whose estimated time is in a window.

    Packets without an estimate are excluded (both sides, symmetrically).
    """
    packets = lost = 0
    causes: Counter = Counter()
    for packet, report in reports.items():
        t = est_times.get(packet)
        if t is None or not start <= t < end:
            continue
        packets += 1
        if report.lost:
            lost += 1
            causes[report.cause] += 1
    return WindowDiagnosis(label, start, end, packets, lost, causes)


def compare_windows(
    reports: Mapping[PacketKey, LossReport],
    est_times: Mapping[PacketKey, Optional[float]],
    *,
    boundary: float,
    start: float = 0.0,
    end: float = float("inf"),
) -> DeltaReport:
    """Split at ``boundary`` and compare the two sides."""
    if not start < boundary < end:
        raise ValueError("boundary must lie strictly inside [start, end)")
    return DeltaReport(
        before=window_diagnosis(
            reports, est_times, label="before", start=start, end=boundary
        ),
        after=window_diagnosis(
            reports, est_times, label="after", start=boundary, end=end
        ),
    )
