"""Scoring REFILL against the simulator's ground truth.

The paper's deployment had no ground truth, so its accuracy claims are
qualitative.  The simulator records the authoritative fate and the full
true event sequence of every packet, which lets us measure:

- **cause accuracy** — does the diagnosed (cause, position) match what
  actually killed the packet?  True causes map to the *observable* causes a
  perfect observer would report (e.g. a silent serial drop at the sink can
  only ever look like a received or acked loss at the sink);
- **event recovery** — precision/recall of the inferred lost events against
  the events that were truly logged-then-lost (or never logged);
- **ordering accuracy** — fraction of event pairs whose reconstructed
  relative order matches true chronology.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Mapping, Optional

from repro.core.diagnosis import LossCause, LossReport
from repro.core.event_flow import EventFlow
from repro.events.event import Event
from repro.events.log import NodeLog
from repro.events.packet import PacketKey
from repro.simnet.truth import GroundTruth, TrueCause, TrueFate


@dataclass
class AccuracyReport:
    """Aggregate reconstruction quality for one run."""

    #: Fraction of true packets that had at least one surviving log record
    #: (and therefore a flow at all).
    coverage: float = 0.0
    #: Fraction of covered packets with an acceptable (cause, position).
    cause_accuracy: float = 0.0
    #: Fraction of covered *lost* packets whose loss position is exact.
    position_accuracy: float = 0.0
    #: Micro-averaged precision/recall of inferred lost events.
    event_precision: float = 0.0
    event_recall: float = 0.0
    #: Fraction of real-event pairs ordered consistently with true time.
    ordering_accuracy: float = 0.0
    #: (true cause, diagnosed cause) confusion counts.
    confusion: Counter = field(default_factory=Counter)

    def summary_rows(self) -> list[tuple[str, float]]:
        return [
            ("coverage", self.coverage),
            ("cause_accuracy", self.cause_accuracy),
            ("position_accuracy", self.position_accuracy),
            ("event_precision", self.event_precision),
            ("event_recall", self.event_recall),
            ("ordering_accuracy", self.ordering_accuracy),
        ]


# --------------------------------------------------------------------- #
# cause scoring


def acceptable_causes(
    fate: TrueFate, *, sink: int, outage_attributed: bool = True
) -> set[tuple[LossCause, Optional[int]]]:
    """(cause, position) pairs a perfect observer could report for ``fate``.

    ``position=None`` entries accept any position.
    """
    cause, node = fate.cause, fate.position
    if cause is TrueCause.DELIVERED:
        return {(LossCause.DELIVERED, None)}
    if cause is TrueCause.SERIAL:
        return {(LossCause.RECEIVED_LOSS, sink), (LossCause.ACKED_LOSS, sink)}
    if cause is TrueCause.OUTAGE:
        if outage_attributed:
            return {(LossCause.SERVER_OUTAGE, None)}
        return {(LossCause.RECEIVED_LOSS, sink), (LossCause.ACKED_LOSS, sink)}
    if cause is TrueCause.IN_NODE:
        return {(LossCause.RECEIVED_LOSS, node), (LossCause.ACKED_LOSS, node)}
    if cause is TrueCause.TIMEOUT:
        return {(LossCause.TIMEOUT_LOSS, node)}
    if cause is TrueCause.DUPLICATE:
        return {(LossCause.DUP_LOSS, node)}
    if cause is TrueCause.OVERFLOW:
        return {(LossCause.OVERFLOW_LOSS, node)}
    if cause is TrueCause.CRASH:
        # the dead node's receive (and often the sender's ack) was logged;
        # a mid-flight death can also leave only a dangling trans
        return {
            (LossCause.RECEIVED_LOSS, node),
            (LossCause.ACKED_LOSS, node),
            (LossCause.UNKNOWN, None),
        }
    # TTL / NO_ROUTE: undetectable from logs; UNKNOWN is the honest answer
    return {(LossCause.UNKNOWN, None)}


def cause_accuracy(
    reports: Mapping[PacketKey, LossReport],
    truth: GroundTruth,
    *,
    sink: int,
    outage_attributed: bool = True,
) -> tuple[float, float, Counter]:
    """(cause accuracy, loss-position accuracy, confusion counter)."""
    confusion: Counter = Counter()
    correct = scored = 0
    position_correct = position_scored = 0
    for packet, report in reports.items():
        fate = truth.fates.get(packet)
        if fate is None:
            continue
        scored += 1
        confusion[(fate.cause, report.cause)] += 1
        acceptable = acceptable_causes(fate, sink=sink, outage_attributed=outage_attributed)
        ok = any(
            report.cause is cause and (position is None or report.position == position)
            for cause, position in acceptable
        )
        correct += ok
        if not fate.delivered and fate.cause not in (TrueCause.TTL, TrueCause.NO_ROUTE):
            position_scored += 1
            expected_position = sink if fate.cause in (TrueCause.SERIAL, TrueCause.OUTAGE) else fate.position
            if fate.cause is TrueCause.OUTAGE and outage_attributed:
                position_correct += report.cause is LossCause.SERVER_OUTAGE
            else:
                position_correct += report.position == expected_position
    return (
        correct / scored if scored else 0.0,
        position_correct / position_scored if position_scored else 0.0,
        confusion,
    )


# --------------------------------------------------------------------- #
# event recovery


def _signature(event: Event) -> tuple:
    return (event.etype, event.node, event.src, event.dst)


def event_recovery(
    flows: Mapping[PacketKey, EventFlow],
    collected: Mapping[int, NodeLog],
    truth: GroundTruth,
) -> tuple[float, float]:
    """Micro-averaged precision/recall of inferred lost events.

    A true event is *lost* when its signature count in the collected logs
    falls short of its count in the true record; an inferred event is
    correct when it fills such a gap.
    """
    collected_counts: dict[PacketKey, Counter] = {}
    for log in collected.values():
        for event in log:
            if event.packet is not None:
                collected_counts.setdefault(event.packet, Counter())[_signature(event)] += 1

    inferred_total = inferred_correct = lost_total = 0
    for packet, flow in flows.items():
        true_events = truth.events.get(packet, [])
        true_counter = Counter(_signature(e) for e in true_events)
        have = collected_counts.get(packet, Counter())
        lost_counter = true_counter - have
        lost_total += sum(lost_counter.values())
        inferred_counter = Counter(_signature(e) for e in flow.inferred_events())
        inferred_total += sum(inferred_counter.values())
        inferred_correct += sum((inferred_counter & lost_counter).values())
    precision = inferred_correct / inferred_total if inferred_total else 1.0
    recall = inferred_correct / lost_total if lost_total else 1.0
    return precision, recall


# --------------------------------------------------------------------- #
# ordering accuracy


def ordering_accuracy(
    flows: Mapping[PacketKey, EventFlow], truth: GroundTruth
) -> float:
    """Pairwise order agreement between flows and true chronology.

    Only real events whose signature is unique within the packet's true
    record are matched (repeating signatures — retransmissions — cannot be
    aligned unambiguously under loss).
    """
    agree = total = 0
    for packet, flow in flows.items():
        true_events = truth.events.get(packet)
        if not true_events:
            continue
        sig_counts = Counter(_signature(e) for e in true_events)
        true_time = {
            _signature(e): e.time
            for e in true_events
            if sig_counts[_signature(e)] == 1 and e.time is not None
        }
        matched = [
            true_time[_signature(entry.event)]
            for entry in flow.entries
            if not entry.inferred and _signature(entry.event) in true_time
        ]
        for i in range(len(matched)):
            for j in range(i + 1, len(matched)):
                total += 1
                agree += matched[i] <= matched[j]
    return agree / total if total else 1.0


# --------------------------------------------------------------------- #


def score_run(
    flows: Mapping[PacketKey, EventFlow],
    reports: Mapping[PacketKey, LossReport],
    collected: Mapping[int, NodeLog],
    truth: GroundTruth,
    *,
    sink: int,
    outage_attributed: bool = True,
) -> AccuracyReport:
    """Full accuracy report for one pipeline run."""
    report = AccuracyReport()
    if truth.fates:
        report.coverage = sum(1 for p in truth.fates if p in flows) / len(truth.fates)
    cause_acc, position_acc, confusion = cause_accuracy(
        reports, truth, sink=sink, outage_attributed=outage_attributed
    )
    report.cause_accuracy = cause_acc
    report.position_accuracy = position_acc
    report.confusion = confusion
    report.event_precision, report.event_recall = event_recovery(flows, collected, truth)
    report.ordering_accuracy = ordering_accuracy(flows, truth)
    return report
