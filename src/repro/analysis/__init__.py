"""Evaluation analytics: the data behind every table and figure (paper §V).

- :mod:`repro.analysis.pipeline` — the canonical simulate → collect →
  reconstruct → diagnose pipeline shared by examples and benchmarks;
- :mod:`repro.analysis.causes` — server-outage attribution, cause shares
  (Fig. 9, §V-C), per-day composition (Fig. 6);
- :mod:`repro.analysis.temporal` — loss scatter series and burstiness
  (Figs. 4/5);
- :mod:`repro.analysis.spatial` — spatial received-loss distribution
  (Fig. 8);
- :mod:`repro.analysis.accuracy` — scoring reconstruction against the
  simulator's ground truth (the ablation benchmarks);
- :mod:`repro.analysis.report` — ASCII rendering of figure data.
"""

from repro.analysis.pipeline import EvalResult, default_loss_spec, evaluate
from repro.analysis.causes import (
    attribute_server_outages,
    cause_shares,
    daily_composition,
    sink_split,
)
from repro.analysis.temporal import (
    burstiness,
    concentration_gini,
    loss_scatter,
)
from repro.analysis.spatial import received_loss_map
from repro.analysis.accuracy import (
    AccuracyReport,
    cause_accuracy,
    event_recovery,
    ordering_accuracy,
    score_run,
)
from repro.analysis.routes import (
    RouteTimeline,
    churn_hotspots,
    network_churn,
    route_timelines,
)
from repro.analysis.implications import (
    Implications,
    check_citysee_pathologies,
    derive_implications,
)
from repro.analysis.comparison import ComparisonResult, compare_analyzers
from repro.analysis.linkquality import LinkObservation, observe_links, worst_links
from repro.analysis.deltas import DeltaReport, compare_windows, window_diagnosis
from repro.analysis.sweeps import SweepResult, accuracy_metrics, delivery_metrics, run_sweep

__all__ = [
    "ComparisonResult",
    "compare_analyzers",
    "LinkObservation",
    "observe_links",
    "worst_links",
    "DeltaReport",
    "compare_windows",
    "window_diagnosis",
    "SweepResult",
    "accuracy_metrics",
    "delivery_metrics",
    "run_sweep",
    "RouteTimeline",
    "churn_hotspots",
    "network_churn",
    "route_timelines",
    "Implications",
    "check_citysee_pathologies",
    "derive_implications",
    "EvalResult",
    "default_loss_spec",
    "evaluate",
    "attribute_server_outages",
    "cause_shares",
    "daily_composition",
    "sink_split",
    "burstiness",
    "concentration_gini",
    "loss_scatter",
    "received_loss_map",
    "AccuracyReport",
    "cause_accuracy",
    "event_recovery",
    "ordering_accuracy",
    "score_run",
]
