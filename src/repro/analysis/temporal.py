"""Temporal loss analytics (paper Figs. 4 and 5).

Fig. 4 plots lost packets as (estimated loss time, *source* node id) —
losses look evenly spread over sources but temporally bursty.  Fig. 5 plots
(time, *loss position*) from REFILL — positions concentrate on few nodes
with the sink band on top, and timeout/duplicate losses cluster in time
(the circled bursts).  The quantitative assertions behind those pictures:

- source spread vs position concentration: Gini coefficient of per-node
  loss counts (low for sources, high for positions);
- burstiness: fraction of a cause's losses inside its busiest few windows.
"""

from __future__ import annotations

from collections import Counter
from typing import Mapping, Optional, Sequence

import numpy as np

from repro.core.diagnosis import LossCause, LossReport
from repro.events.packet import PacketKey


def loss_scatter(
    reports: Mapping[PacketKey, LossReport],
    est_times: Mapping[PacketKey, Optional[float]],
    *,
    axis: str = "source",
) -> list[tuple[float, int, LossCause]]:
    """The scatter series behind Fig. 4 (``axis="source"``) / Fig. 5
    (``axis="position"``): (time, node, cause) per lost packet."""
    if axis not in ("source", "position"):
        raise ValueError("axis must be 'source' or 'position'")
    points: list[tuple[float, int, LossCause]] = []
    for packet, report in reports.items():
        if not report.lost:
            continue
        t = est_times.get(packet)
        if t is None:
            continue
        node = packet.origin if axis == "source" else report.position
        if node is None:
            continue
        points.append((t, node, report.cause))
    points.sort()
    return points


def concentration_gini(counts: Mapping[int, int] | Sequence[int]) -> float:
    """Gini coefficient of a count distribution (0 = even, →1 = concentrated).

    Used to quantify "sources of lost packets are evenly distributed, the
    loss positions are on a small portion of nodes" (§V-B1).  Zero-count
    nodes must be included by the caller for a fair comparison.
    """
    values = np.asarray(
        sorted(counts.values() if isinstance(counts, Mapping) else counts), dtype=float
    )
    if values.size == 0 or values.sum() == 0:
        return 0.0
    n = values.size
    index = np.arange(1, n + 1)
    return float((2 * (index * values).sum() / (n * values.sum())) - (n + 1) / n)


def per_node_loss_counts(
    points: Sequence[tuple[float, int, LossCause]],
    all_nodes: Sequence[int],
) -> dict[int, int]:
    """Losses per node, including zero-count nodes."""
    counts = Counter(node for _, node, _ in points)
    return {node: counts.get(node, 0) for node in all_nodes}


def burstiness(
    points: Sequence[tuple[float, int, LossCause]],
    cause: LossCause,
    *,
    window: float,
    top_k: int = 3,
) -> float:
    """Fraction of ``cause``'s losses inside its ``top_k`` busiest windows.

    Near 1.0 means the cause occurs in bursts ("timeout and duplicated
    losses are bursty as shown in those ellipses", §V-B1); a uniform
    process over N windows would give ~``top_k/N``.
    """
    times = [t for t, _, c in points if c is cause]
    if not times:
        return 0.0
    buckets = Counter(int(t // window) for t in times)
    top = sorted(buckets.values(), reverse=True)[:top_k]
    return sum(top) / len(times)


def cause_marker_counts(
    points: Sequence[tuple[float, int, LossCause]]
) -> dict[LossCause, int]:
    """How many scatter markers each cause contributes (figure legends)."""
    return dict(Counter(cause for _, _, cause in points))
