"""Side-by-side analyzer comparison harness (benchmark A2 as a library).

Runs REFILL and the related-work baselines over the *same* collected logs
and scores each against the same ground truth — the apples-to-apples
comparison the paper argues qualitatively in §III/§V-D/§VI.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.accuracy import cause_accuracy
from repro.analysis.pipeline import EvalResult
from repro.baselines.netcheck import NetCheckAnalyzer
from repro.baselines.time_correlation import TimeCorrelationDiagnosis
from repro.baselines.wit import WitMerger
from repro.core.diagnosis import LossReport
from repro.events.packet import PacketKey
from repro.util.tables import render_table


@dataclass(frozen=True, slots=True)
class AnalyzerScore:
    """One analyzer's marks on a shared trace."""

    name: str
    cause_accuracy: float
    position_accuracy: float
    note: str = ""


@dataclass
class ComparisonResult:
    """All analyzers' scores plus the Wit merge feasibility."""

    scores: list[AnalyzerScore]
    wit_mergeable_fraction: float

    def by_name(self, name: str) -> AnalyzerScore:
        for score in self.scores:
            if score.name == name:
                return score
        raise KeyError(name)

    def refill_dominates(self, margin: float = 0.0) -> bool:
        """REFILL beats every baseline on both axes by ``margin``."""
        refill = self.by_name("REFILL")
        others = [s for s in self.scores if s.name != "REFILL"]
        return all(
            refill.cause_accuracy >= s.cause_accuracy + margin
            and refill.position_accuracy >= s.position_accuracy + margin
            for s in others
        )

    def render(self) -> str:
        rows = [
            (s.name, round(s.cause_accuracy, 3), round(s.position_accuracy, 3), s.note)
            for s in self.scores
        ]
        rows.append(
            (
                "Wit-style",
                "-",
                "-",
                f"unmergeable ({self.wit_mergeable_fraction:.0%} of log pairs share events)",
            )
        )
        return render_table(
            ["analyzer", "cause_acc", "position_acc", "note"],
            rows,
            title="Analyzer comparison (same logs, same ground truth)",
        )


def compare_analyzers(result: EvalResult) -> ComparisonResult:
    """Score REFILL, NetCheck-style and time-correlation on ``result``."""
    sim = result.sim
    truth = sim.truth
    logs = result.collected_logs

    refill_acc, refill_pos, _ = cause_accuracy(result.reports, truth, sink=sim.sink)

    netcheck = NetCheckAnalyzer()
    nc_reports = netcheck.diagnose(
        netcheck.reconstruct(logs), delivery_node=sim.base_station_node
    )
    nc_acc, nc_pos, _ = cause_accuracy(
        nc_reports, truth, sink=sim.sink, outage_attributed=False
    )

    tc_reports = _time_correlation_reports(result)
    tc_acc, tc_pos, _ = cause_accuracy(
        tc_reports, truth, sink=sim.sink, outage_attributed=False
    )

    wit = WitMerger().merge(logs)
    n = len(logs)
    wit_fraction = wit.mergeable_fraction(n * (n - 1) // 2) if n > 1 else 0.0

    return ComparisonResult(
        scores=[
            AnalyzerScore("REFILL", refill_acc, refill_pos),
            AnalyzerScore(
                "NetCheck-style", nc_acc, nc_pos, "per-node replay, naive loss rule"
            ),
            AnalyzerScore(
                "time-correlation", tc_acc, tc_pos, "co-temporal event voting"
            ),
        ],
        wit_mergeable_fraction=wit_fraction,
    )


def _time_correlation_reports(result: EvalResult) -> dict[PacketKey, LossReport]:
    """Time-correlation diagnosis with fair delivery knowledge."""
    lost_times = {
        packet: result.est_loss_times.get(packet)
        for packet, report in result.raw_reports.items()
        if report.lost
    }
    reports = dict(result.raw_reports)
    reports.update(
        TimeCorrelationDiagnosis(result.collected_logs).diagnose(lost_times)
    )
    for packet, report in result.raw_reports.items():
        if not report.lost:
            reports[packet] = report  # the sink view knows what arrived
    return reports
