"""The canonical evaluation pipeline (paper Fig. 1, applied to §V).

simulate → collect lossy logs → REFILL reconstruction → diagnosis →
server-outage attribution.  Examples and benchmarks all run through
:func:`evaluate`; a small in-process cache keeps multiple benchmarks over
the same scenario from re-simulating.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional

from repro.baselines.sink_view import SinkView
from repro.core.backends import ExecutionBackend, make_backend
from repro.core.diagnosis import LossReport
from repro.core.event_flow import EventFlow
from repro.core.session import ReconstructionSession, RefillOptions
from repro.events.log import NodeLog
from repro.events.packet import PacketKey
from repro.lognet.collector import collect_logs
from repro.lognet.loss import LogLossSpec
from repro.simnet.network import Network, ScenarioParams, SimulationResult
from repro.analysis.causes import attribute_server_outages
from repro.obs.spans import span
from repro.obs.structlog import get_logger

_log = get_logger("repro.pipeline")

#: The sink drops most of its own log writes under forwarding load — the
#: source of the paper's acked-vs-received split at the sink (Figs. 6/9).
SINK_WRITE_FAIL_P = 0.6


def default_loss_spec(sim: SimulationResult) -> LogLossSpec:
    """The CitySee-plausible log degradation used throughout §V."""
    return LogLossSpec(
        write_fail_p=0.02,
        crash_p=0.015,
        chunk_loss_p=0.025,
        node_loss_p=0.006,
        immune=frozenset({sim.base_station_node}),
        write_fail_overrides=((sim.sink, SINK_WRITE_FAIL_P),),
    )


@dataclass
class EvalResult:
    """Everything the figure analytics consume."""

    sim: SimulationResult
    collected_logs: dict[int, NodeLog]
    flows: dict[PacketKey, EventFlow]
    #: REFILL diagnosis before outage attribution.
    raw_reports: dict[PacketKey, LossReport]
    #: After server-outage attribution from the operations log (§V-C).
    reports: dict[PacketKey, LossReport]
    sink_view: SinkView
    #: Estimated loss times (sink-view recipe; None when inestimable).
    est_loss_times: dict[PacketKey, Optional[float]]

    @property
    def sink(self) -> int:
        return self.sim.sink

    @property
    def base_station(self) -> int:
        return self.sim.base_station_node

    def lost_reports(self) -> dict[PacketKey, LossReport]:
        return {p: r for p, r in self.reports.items() if r.lost}


def evaluate(
    params: ScenarioParams,
    *,
    collection_seed: int = 99,
    loss_spec: Optional[LogLossSpec] = None,
    refill_options: RefillOptions = RefillOptions(),
    sim: Optional[SimulationResult] = None,
    preflight: bool = True,
    backend: ExecutionBackend | str | None = None,
    template=None,
) -> EvalResult:
    """Run the whole pipeline for one scenario.

    Pass ``sim`` to reuse an existing simulation (the benchmarks share one
    trace across figures, like the paper's single deployment dataset).

    ``preflight`` (on by default, mirroring the CLI's ``--no-check``) runs
    the static analyzer over the inference template before reconstruction
    and raises :class:`~repro.check.runner.PreflightError` on model errors
    — a broken FSM silently corrupts every reconstructed flow, so the
    pipeline refuses to start from one.

    ``backend`` selects the execution strategy for the reconstruction
    session — an :class:`~repro.core.backends.ExecutionBackend` instance or
    a registry name (``"serial"`` | ``"process"`` | ``"incremental"``);
    the default is serial.  Results are backend-independent by contract.

    ``template`` overrides the inference model (default: the hand-written
    CTP forwarder) — this is how learned specs are scored against held-out
    corpora (:mod:`repro.learn.evaluate`).
    """
    if isinstance(backend, str):
        backend = make_backend(backend)
    session = ReconstructionSession(
        template, options=refill_options, backend=backend
    )
    if preflight:  # fail fast on a broken model, before paying for simulation
        session.preflight()
    if sim is None:
        with span("pipeline.simulate"):
            sim = run_simulation(params)
    session.delivery_node = sim.base_station_node
    spec = loss_spec if loss_spec is not None else default_loss_spec(sim)
    with span("pipeline.collect"):
        collected = collect_logs(
            sim.true_logs,
            spec,
            collection_seed,
            perfect_clocks=frozenset({sim.base_station_node}),
        )
    with span("pipeline.reconstruct"):
        flows = session.reconstruct(collected)
    with span("pipeline.diagnose"):
        raw_reports = session.diagnose(flows)
    sink_view = SinkView(sim.bs_arrivals, params.gen_interval)
    with span("pipeline.attribute"):
        est_times = _estimate_times(sink_view, raw_reports, collected)
        reports = attribute_server_outages(
            raw_reports,
            est_times,
            outages=sim.params.base_station.outages,
            sink=sim.sink,
            base_station=sim.base_station_node,
        )
    _log.debug(
        "pipeline.evaluated",
        nodes=len(collected),
        packets=len(flows),
        lost=sum(1 for r in reports.values() if r.lost),
    )
    return EvalResult(
        sim=sim,
        collected_logs=collected,
        flows=flows,
        raw_reports=raw_reports,
        reports=reports,
        sink_view=sink_view,
        est_loss_times=est_times,
    )


def _estimate_times(
    sink_view: SinkView,
    reports: Mapping[PacketKey, LossReport],
    collected: Mapping[int, NodeLog],
) -> dict[PacketKey, Optional[float]]:
    """Loss-time estimates for every analyzed packet.

    Primary: the sink-view sequence-gap recipe.  Fallback: the packet's own
    logged generation record (a local, skewed clock — still useful for
    bucketing into days).
    """
    gen_times: dict[PacketKey, float] = {}
    for log in collected.values():
        for event in log:
            if event.etype == "gen" and event.packet is not None and event.time is not None:
                gen_times[event.packet] = event.time
    out: dict[PacketKey, Optional[float]] = {}
    for packet in reports:
        estimate = sink_view.estimate_loss_time(packet)
        if estimate is None:
            estimate = gen_times.get(packet)
        out[packet] = estimate
    return out


# --------------------------------------------------------------------- #
# simulation cache (benchmarks share traces; keyed by scenario params)

_SIM_CACHE: dict[tuple, SimulationResult] = {}


def run_simulation(params: ScenarioParams, *, cache: bool = True) -> SimulationResult:
    """Run (or reuse) the simulation for ``params``."""
    key = _cache_key(params)
    if cache and key in _SIM_CACHE:
        return _SIM_CACHE[key]
    result = Network(params).run()
    if cache:
        _SIM_CACHE[key] = result
    return result


def _cache_key(params: ScenarioParams) -> tuple:
    return (
        params.n_nodes,
        params.duration,
        params.gen_interval,
        params.gen_sync_window,
        params.seed,
        params.link,
        params.disturbances,
        params.mac,
        params.ctp,
        params.node,
        params.serial,
        params.base_station,
    )
