"""Route evolution from event flows (paper §II "the path of the packet";
§VI's path-tracking discussion of DTrack [2]).

Each packet's reconstructed flow yields its path; comparing consecutive
packets of the same origin reveals parent switches and route churn over
time — the per-origin route timeline an operator uses to correlate routing
instability with loss bursts (the duplicate-loss episodes of Fig. 5 are
route changes caught mid-flight).
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field
from typing import Mapping, Optional

from repro.core.event_flow import EventFlow
from repro.core.tracing import trace_packet
from repro.events.packet import PacketKey


@dataclass(frozen=True, slots=True)
class RouteChange:
    """One observed path switch for an origin."""

    origin: int
    seq: int
    old_path: tuple[int, ...]
    new_path: tuple[int, ...]

    @property
    def divergence_hop(self) -> int:
        """Index of the first hop where the paths differ."""
        for i, (a, b) in enumerate(zip(self.old_path, self.new_path)):
            if a != b:
                return i
        return min(len(self.old_path), len(self.new_path))


@dataclass
class RouteTimeline:
    """Per-origin route history."""

    origin: int
    #: (seq, path) in sequence order; only packets with a non-trivial path.
    observations: list[tuple[int, tuple[int, ...]]] = field(default_factory=list)
    changes: list[RouteChange] = field(default_factory=list)

    @property
    def churn(self) -> float:
        """Fraction of consecutive observations that switched paths."""
        if len(self.observations) < 2:
            return 0.0
        return len(self.changes) / (len(self.observations) - 1)

    def dominant_path(self) -> Optional[tuple[int, ...]]:
        if not self.observations:
            return None
        counts = Counter(path for _, path in self.observations)
        return counts.most_common(1)[0][0]


def route_timelines(
    flows: Mapping[PacketKey, EventFlow],
    *,
    exclude: frozenset[int] = frozenset(),
    min_hops: int = 1,
) -> dict[int, RouteTimeline]:
    """Build per-origin route timelines from reconstructed flows.

    ``exclude`` drops pseudo-nodes (the base station) from paths; flows
    whose reconstructed path is shorter than ``min_hops`` hops are skipped
    (nothing to compare).
    """
    by_origin: dict[int, list[tuple[int, tuple[int, ...]]]] = defaultdict(list)
    for packet, flow in flows.items():
        path = tuple(n for n in trace_packet(flow).path if n not in exclude)
        if len(path) - 1 < min_hops:
            continue
        by_origin[packet.origin].append((packet.seq, path))

    timelines: dict[int, RouteTimeline] = {}
    for origin, observations in by_origin.items():
        observations.sort()
        timeline = RouteTimeline(origin, observations)
        for (_seq_a, path_a), (seq_b, path_b) in zip(observations, observations[1:]):
            if path_a != path_b:
                timeline.changes.append(RouteChange(origin, seq_b, path_a, path_b))
        timelines[origin] = timeline
    return timelines


def network_churn(timelines: Mapping[int, RouteTimeline]) -> float:
    """Mean per-origin churn across the network."""
    if not timelines:
        return 0.0
    return sum(t.churn for t in timelines.values()) / len(timelines)


def churn_hotspots(
    timelines: Mapping[int, RouteTimeline], *, top: int = 10
) -> list[tuple[int, float]]:
    """Origins with the most unstable routes."""
    ranked = sorted(
        ((origin, t.churn) for origin, t in timelines.items()),
        key=lambda item: -item[1],
    )
    return ranked[:top]


def switch_point_counts(timelines: Mapping[int, RouteTimeline]) -> Counter:
    """Which nodes routes diverge *at* — unstable parents show up here."""
    counts: Counter = Counter()
    for timeline in timelines.values():
        for change in timeline.changes:
            hop = change.divergence_hop
            if hop > 0 and hop <= len(change.old_path):
                counts[change.old_path[hop - 1]] += 1
    return counts
