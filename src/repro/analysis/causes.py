"""Cause attribution and composition (paper §V-C, Figs. 6 and 9).

The paper's order of attribution: "Over the 30 days, server outage (base
station server down) results in 22.6% of packet losses.  Then with REFILL,
we find the causes for other packet losses."  The operations log of outage
windows reassigns sink-anchored losses whose estimated loss time falls in a
window; everything else keeps its REFILL cause.
"""

from __future__ import annotations

from collections import Counter
from typing import Mapping, Optional, Sequence

from repro.core.diagnosis import LossCause, LossReport
from repro.events.packet import PacketKey

#: REFILL causes that are compatible with "the packet made it to the sink"
#: and can therefore be re-attributed to a server outage.
_SINK_ANCHORED = frozenset(
    {LossCause.RECEIVED_LOSS, LossCause.ACKED_LOSS, LossCause.UNKNOWN}
)


def attribute_server_outages(
    reports: Mapping[PacketKey, LossReport],
    est_times: Mapping[PacketKey, Optional[float]],
    *,
    outages: Sequence[tuple[float, float]],
    sink: int,
    base_station: int,
) -> dict[PacketKey, LossReport]:
    """Reassign outage-window losses at the sink to ``SERVER_OUTAGE``."""
    if not outages:
        return dict(reports)
    out: dict[PacketKey, LossReport] = {}
    for packet, report in reports.items():
        out[packet] = report
        if not report.lost or report.cause not in _SINK_ANCHORED:
            continue
        if report.position not in (sink, base_station):
            continue
        t = est_times.get(packet)
        if t is None:
            continue
        if any(start <= t < end for start, end in outages):
            out[packet] = LossReport(LossCause.SERVER_OUTAGE, base_station, report.anchor)
    return out


def cause_counts(reports: Mapping[PacketKey, LossReport]) -> Counter:
    """Loss counts per cause (delivered packets excluded)."""
    counts: Counter = Counter()
    for report in reports.values():
        if report.lost:
            counts[report.cause] += 1
    return counts


def cause_shares(reports: Mapping[PacketKey, LossReport]) -> dict[LossCause, float]:
    """Percentage share of each cause among lost packets (Fig. 9)."""
    counts = cause_counts(reports)
    total = sum(counts.values())
    if total == 0:
        return {}
    return {cause: 100.0 * n / total for cause, n in counts.items()}


def sink_split(
    reports: Mapping[PacketKey, LossReport], sink: int
) -> dict[str, float]:
    """The §V-C breakdown: received/acked losses split sink vs elsewhere.

    Returns percentage-of-all-losses entries keyed like the paper's prose:
    ``received_sink``, ``received_other``, ``acked_sink``, ``acked_other``.
    """
    total = sum(1 for r in reports.values() if r.lost)
    if total == 0:
        return {k: 0.0 for k in ("received_sink", "received_other", "acked_sink", "acked_other")}
    buckets = Counter()
    for report in reports.values():
        if not report.lost:
            continue
        if report.cause is LossCause.RECEIVED_LOSS:
            buckets["received_sink" if report.position == sink else "received_other"] += 1
        elif report.cause is LossCause.ACKED_LOSS:
            buckets["acked_sink" if report.position == sink else "acked_other"] += 1
    return {
        key: 100.0 * buckets.get(key, 0) / total
        for key in ("received_sink", "received_other", "acked_sink", "acked_other")
    }


def daily_composition(
    reports: Mapping[PacketKey, LossReport],
    est_times: Mapping[PacketKey, Optional[float]],
    *,
    day_seconds: float,
    n_days: int,
) -> list[Counter]:
    """Per-day loss-cause counts (Fig. 6).

    Packets without a time estimate are dropped (the paper's figure plots
    only packets it can place in time).
    """
    days: list[Counter] = [Counter() for _ in range(n_days)]
    for packet, report in reports.items():
        if not report.lost:
            continue
        t = est_times.get(packet)
        if t is None:
            continue
        index = int(t // day_seconds)
        if 0 <= index < n_days:
            days[index][report.cause] += 1
    return days


def daily_loss_totals(days: Sequence[Counter]) -> list[int]:
    return [sum(day.values()) for day in days]
