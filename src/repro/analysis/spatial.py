"""Spatial loss analytics (paper Fig. 8).

"Figure 8 shows the received packet losses ... The radius of circle
indicates the number of packet losses.  The triangle denotes the sink
node."  The series is (node, x, y, received-loss count); the headline
assertion is that the sink carries the largest circle.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Mapping, Optional, Sequence

from repro.core.diagnosis import LossCause, LossReport
from repro.events.packet import PacketKey
from repro.simnet.topology import Topology


@dataclass(frozen=True, slots=True)
class SpatialPoint:
    """One circle of the Fig. 8 map."""

    node: int
    x: float
    y: float
    count: int
    is_sink: bool


def received_loss_map(
    reports: Mapping[PacketKey, LossReport],
    topology: Topology,
    *,
    causes: Sequence[LossCause] = (LossCause.RECEIVED_LOSS, LossCause.ACKED_LOSS),
) -> list[SpatialPoint]:
    """Received-loss counts per node position, largest first.

    ``causes`` defaults to both in-node loss observations (received and
    acked), which is what "packet losses even when they are received on a
    certain node" covers; pass ``(LossCause.RECEIVED_LOSS,)`` for the
    strict reading.
    """
    counts: Counter = Counter()
    for report in reports.values():
        if report.lost and report.cause in causes and report.position is not None:
            counts[report.position] += 1
    points = [
        SpatialPoint(
            node=node,
            x=topology.positions[node][0],
            y=topology.positions[node][1],
            count=count,
            is_sink=node == topology.sink,
        )
        for node, count in counts.items()
        if node in topology.positions
    ]
    points.sort(key=lambda p: (-p.count, p.node))
    return points


def top_loss_node(points: Sequence[SpatialPoint]) -> Optional[SpatialPoint]:
    """The node with the most received losses (the paper's sink)."""
    return points[0] if points else None


def loss_share_of_top_nodes(points: Sequence[SpatialPoint], k: int) -> float:
    """Fraction of mapped losses carried by the top-``k`` nodes."""
    total = sum(p.count for p in points)
    if total == 0:
        return 0.0
    return sum(p.count for p in points[:k]) / total
