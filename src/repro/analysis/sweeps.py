"""Parameter-sweep harness over the evaluation pipeline.

The ablation benchmarks all share a shape — vary one knob, run the
pipeline, extract metrics, tabulate.  This module makes that shape a
first-class, reusable object so new studies (sensitivity analyses, tuning
runs) are three lines instead of a bespoke script.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Mapping, Optional, Sequence

from repro.analysis.accuracy import score_run
from repro.analysis.pipeline import EvalResult, evaluate
from repro.lognet.loss import LogLossSpec
from repro.simnet.network import ScenarioParams
from repro.util.tables import render_table

#: Derives the scenario for one sweep point from the base + the value.
Vary = Callable[[ScenarioParams, Any], ScenarioParams]
#: Extracts one metric from an evaluated point.
Metric = Callable[[EvalResult], Any]


@dataclass
class SweepPoint:
    """One evaluated configuration."""

    value: Any
    result: EvalResult
    metrics: dict[str, Any]


@dataclass
class SweepResult:
    """All points of one sweep, in input order."""

    name: str
    points: list[SweepPoint]

    def series(self, metric: str) -> list[tuple[Any, Any]]:
        """(value, metric) pairs across the sweep."""
        return [(p.value, p.metrics[metric]) for p in self.points]

    def render(self) -> str:
        if not self.points:
            return f"{self.name}: (empty sweep)"
        metric_names = list(self.points[0].metrics)
        rows = [
            (p.value, *[_round(p.metrics[m]) for m in metric_names])
            for p in self.points
        ]
        return render_table([self.name, *metric_names], rows, title=f"Sweep: {self.name}")


def _round(value: Any) -> Any:
    return round(value, 4) if isinstance(value, float) else value


#: Ready-made metrics for the common studies.
def accuracy_metrics(result: EvalResult) -> dict[str, float]:
    """Standard ground-truth scores for a point."""
    acc = score_run(
        result.flows,
        result.reports,
        result.collected_logs,
        result.sim.truth,
        sink=result.sink,
    )
    return {
        "cause_acc": acc.cause_accuracy,
        "position_acc": acc.position_accuracy,
        "event_recall": acc.event_recall,
        "event_precision": acc.event_precision,
    }


def delivery_metrics(result: EvalResult) -> dict[str, float]:
    """Network-level outcomes for a point."""
    lost = sum(1 for r in result.reports.values() if r.lost)
    return {
        "delivery_ratio": result.sim.delivery_ratio(),
        "losses_analyzed": lost,
        "packets": len(result.sim.truth.fates),
    }


def run_sweep(
    name: str,
    base: ScenarioParams,
    values: Sequence[Any],
    vary: Vary,
    *,
    metrics: Mapping[str, Metric] | None = None,
    metric_sets: Sequence[Callable[[EvalResult], dict[str, Any]]] = (accuracy_metrics,),
    loss_spec_for: Optional[Callable[[Any], Optional[LogLossSpec]]] = None,
    collection_seed: int = 99,
) -> SweepResult:
    """Evaluate ``base`` varied over ``values``.

    ``vary(base, value)`` builds each point's scenario; ``metric_sets`` (and
    optional ad-hoc ``metrics``) extract the outputs; ``loss_spec_for``
    optionally varies the log degradation instead of (or as well as) the
    scenario.
    """
    points: list[SweepPoint] = []
    for value in values:
        params = vary(base, value)
        spec = loss_spec_for(value) if loss_spec_for is not None else None
        result = evaluate(params, loss_spec=spec, collection_seed=collection_seed)
        extracted: dict[str, Any] = {}
        for metric_set in metric_sets:
            extracted.update(metric_set(result))
        for metric_name, fn in (metrics or {}).items():
            extracted[metric_name] = fn(result)
        points.append(SweepPoint(value, result, extracted))
    return SweepResult(name, points)
