"""ASCII rendering of figure/table data (benchmark output).

Benchmarks print the same rows/series the paper's figures report; these
helpers keep the formatting consistent.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.core.diagnosis import LossCause
from repro.analysis.spatial import SpatialPoint
from repro.util.tables import render_table

#: Figure legend order used throughout.
CAUSE_ORDER = [
    LossCause.SERVER_OUTAGE,
    LossCause.RECEIVED_LOSS,
    LossCause.ACKED_LOSS,
    LossCause.TIMEOUT_LOSS,
    LossCause.DUP_LOSS,
    LossCause.OVERFLOW_LOSS,
    LossCause.UNKNOWN,
]


def render_cause_shares(
    shares: Mapping[LossCause, float], *, title: str = "Loss cause shares (%)"
) -> str:
    rows = [
        (str(cause), round(shares.get(cause, 0.0), 1))
        for cause in CAUSE_ORDER
        if shares.get(cause, 0.0) > 0 or cause in shares
    ]
    return render_table(["cause", "share_%"], rows, title=title)


def render_daily_composition(
    days: Sequence[Mapping[LossCause, int]],
    *,
    title: str = "Per-day loss composition",
) -> str:
    causes = [c for c in CAUSE_ORDER if any(day.get(c, 0) for day in days)]
    headers = ["day", *[str(c) for c in causes], "total"]
    rows = []
    for index, day in enumerate(days):
        rows.append([index, *[day.get(c, 0) for c in causes], sum(day.values())])
    return render_table(headers, rows, title=title)


def render_spatial(points: Sequence[SpatialPoint], *, top: int = 15) -> str:
    rows = [
        (p.node, round(p.x, 1), round(p.y, 1), p.count, "sink" if p.is_sink else "")
        for p in points[:top]
    ]
    return render_table(
        ["node", "x", "y", "received_losses", ""],
        rows,
        title=f"Fig.8 spatial received-loss map (top {top})",
    )


def render_scatter_summary(
    points: Sequence[tuple[float, int, LossCause]],
    *,
    window: float,
    title: str,
) -> str:
    """Bucketize a loss scatter into time windows per cause."""
    if not points:
        return f"{title}\n(no losses)"
    start = min(t for t, _, _ in points)
    end = max(t for t, _, _ in points)
    n = int((end - start) // window) + 1
    causes = sorted({c for _, _, c in points}, key=lambda c: CAUSE_ORDER.index(c))
    table: dict[int, dict[LossCause, int]] = {}
    for t, _, cause in points:
        bucket = int((t - start) // window)
        table.setdefault(bucket, {}).setdefault(cause, 0)
        table[bucket][cause] += 1
    headers = ["window", *[str(c) for c in causes]]
    rows = []
    for bucket in range(n):
        day = table.get(bucket, {})
        rows.append([bucket, *[day.get(c, 0) for c in causes]])
    return render_table(headers, rows, title=title)
