"""Link-quality measurement from reconstructed flows (paper §I-C:
"contributing to fine-grained network management such as network diagnosis
and network *measurement*").

Every reconstructed flow carries link-level evidence: a routing-layer send
either ended acked (one MAC exchange succeeded within the retry budget) or
timed out (the whole budget failed).  Aggregated per directed link this
yields a *delivery ratio under retries*, and — inverting the MAC's retry
model — a maximum-likelihood estimate of the per-attempt PRR, i.e. the ETX
denominator CTP routes on.  The estimator is validated against the
simulator's true link model in the tests and measurement benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional

from repro.core.event_flow import EventFlow
from repro.events.event import EventType
from repro.events.packet import PacketKey


@dataclass
class LinkObservation:
    """Aggregated evidence for one directed link."""

    src: int
    dst: int
    #: Routing-layer sends that ended with an ack.
    acked: int = 0
    #: Sends that ended with a timeout (full retry budget failed).
    timeouts: int = 0
    #: Arrivals evidenced receiver-side (recv/dup/overflow), real or inferred.
    arrivals: int = 0

    @property
    def sends(self) -> int:
        return self.acked + self.timeouts

    def delivery_ratio(self) -> Optional[float]:
        """Fraction of sends that got through within the retry budget."""
        if self.sends == 0:
            return None
        return self.acked / self.sends

    def prr_estimate(self, *, max_retries: int = 30) -> Optional[float]:
        """Per-attempt PRR from the retry model.

        Under per-attempt success probability ``p``, a send times out with
        probability ``(1-p)^k`` for ``k`` retries; equating to the observed
        timeout fraction and solving gives the ML estimate.  With zero
        observed timeouts the estimate is right-censored: we return the
        value at half an expected timeout (the standard continuity
        correction), which approaches 1 as evidence accumulates.
        """
        if self.sends == 0:
            return None
        timeout_fraction = self.timeouts / self.sends
        if timeout_fraction == 0.0:
            timeout_fraction = 0.5 / (self.sends + 1)
        if timeout_fraction >= 1.0:
            return 0.0
        return 1.0 - timeout_fraction ** (1.0 / max_retries)

    def etx_estimate(self, *, max_retries: int = 30) -> Optional[float]:
        """``1/PRR`` — the metric CTP routes on."""
        prr = self.prr_estimate(max_retries=max_retries)
        if prr is None or prr <= 0.0:
            return None
        return 1.0 / prr


def observe_links(
    flows: Mapping[PacketKey, EventFlow]
) -> dict[tuple[int, int], LinkObservation]:
    """Collect per-link evidence from all flows.

    Only *real* sender-side records count toward the acked/timeout tallies
    (inferred acks would bias the estimate: REFILL infers what protocol
    semantics require, not what the radio did); arrivals count inferred
    evidence too since an inferred receive is still proof of delivery.
    """
    observations: dict[tuple[int, int], LinkObservation] = {}

    def obs(src: int, dst: int) -> LinkObservation:
        key = (src, dst)
        if key not in observations:
            observations[key] = LinkObservation(src, dst)
        return observations[key]

    for flow in flows.values():
        for entry in flow.entries:
            event = entry.event
            if event.src is None or event.dst is None:
                continue
            if event.etype == EventType.ACK.value and not entry.inferred:
                obs(event.src, event.dst).acked += 1
            elif event.etype == EventType.TIMEOUT.value and not entry.inferred:
                obs(event.src, event.dst).timeouts += 1
            elif event.etype in (
                EventType.RECV.value,
                EventType.DUP.value,
                EventType.OVERFLOW.value,
            ):
                obs(event.src, event.dst).arrivals += 1
    return observations


def worst_links(
    observations: Mapping[tuple[int, int], LinkObservation],
    *,
    min_sends: int = 10,
    top: int = 10,
) -> list[LinkObservation]:
    """Links ranked worst-first by delivery ratio (deployment tuning aid)."""
    qualified = [
        o for o in observations.values() if o.sends >= min_sends
    ]
    qualified.sort(key=lambda o: (o.delivery_ratio(), -o.sends))
    return qualified[:top]
