"""The paper's §V-D implications, as computable checks.

§V-D narrates five design lessons from REFILL's output; this module turns
each into a measurable statement over a diagnosis, so an operator (or a
regression test) can ask "does my deployment exhibit the CitySee
pathologies?":

1. *whose vs where* — sources spread evenly, positions concentrate;
2. *correlation limitation* — how often multiple causes co-occur in the
   same time window (where correlation-based diagnosis must guess);
3. *node loss vs link loss* — in-node losses dominate link losses once
   retransmissions are aggressive;
4. *the last mile* — the share of losses past the WSN (sink serial +
   server), the part lab tests never exercised;
5. *ACK mechanism* — hardware acks confirm packets that still die above
   the radio (the acked-loss share).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Mapping, Optional, Sequence

from repro.analysis.temporal import concentration_gini, loss_scatter, per_node_loss_counts
from repro.core.diagnosis import LossCause, LossReport
from repro.events.packet import PacketKey

#: Losses that happen inside a node after successful radio delivery.
NODE_LOSSES = frozenset({LossCause.RECEIVED_LOSS, LossCause.ACKED_LOSS})
#: Losses on the radio link itself.
LINK_LOSSES = frozenset({LossCause.TIMEOUT_LOSS})
#: Losses past the WSN proper.
LAST_MILE = frozenset({LossCause.SERVER_OUTAGE})


@dataclass(frozen=True, slots=True)
class Implications:
    """Quantified §V-D lessons for one diagnosis."""

    #: 1. Gini of loss sources vs loss positions.
    source_gini: float
    position_gini: float
    #: 2. Fraction of loss windows containing 2+ distinct causes.
    cause_cooccurrence: float
    #: 3. node-loss : link-loss ratio (None when no link losses observed).
    node_vs_link_ratio: Optional[float]
    #: 4. Share of all losses past the WSN (incl. sink in-node losses).
    last_mile_share: float
    #: 5. Share of losses where a hardware ack confirmed a dying packet.
    acked_loss_share: float

    def rows(self) -> list[tuple[str, str]]:
        ratio = "inf" if self.node_vs_link_ratio is None else f"{self.node_vs_link_ratio:.1f}:1"
        return [
            ("1. source gini vs position gini",
             f"{self.source_gini:.2f} vs {self.position_gini:.2f}"),
            ("2. windows with co-occurring causes", f"{self.cause_cooccurrence:.0%}"),
            ("3. node-loss : link-loss", ratio),
            ("4. last-mile share of losses", f"{self.last_mile_share:.0%}"),
            ("5. acked-loss share", f"{self.acked_loss_share:.0%}"),
        ]


def derive_implications(
    reports: Mapping[PacketKey, LossReport],
    est_times: Mapping[PacketKey, Optional[float]],
    *,
    nodes: Sequence[int],
    sink: int,
    window: float,
) -> Implications:
    """Compute the five §V-D statements from a diagnosis."""
    lost = {p: r for p, r in reports.items() if r.lost}
    counts = Counter(r.cause for r in lost.values())
    total = sum(counts.values()) or 1

    sources = loss_scatter(reports, est_times, axis="source")
    positions = loss_scatter(reports, est_times, axis="position")
    source_gini = concentration_gini(per_node_loss_counts(sources, nodes))
    position_gini = concentration_gini(per_node_loss_counts(positions, nodes))

    # 2. co-occurrence: bucket losses by time window, count multi-cause ones
    windows: dict[int, set[LossCause]] = {}
    for t, _, cause in positions:
        windows.setdefault(int(t // window), set()).add(cause)
    multi = sum(1 for causes in windows.values() if len(causes) >= 2)
    cooccurrence = multi / len(windows) if windows else 0.0

    node_losses = sum(counts.get(c, 0) for c in NODE_LOSSES)
    link_losses = sum(counts.get(c, 0) for c in LINK_LOSSES)
    ratio = node_losses / link_losses if link_losses else None

    last_mile = counts.get(LossCause.SERVER_OUTAGE, 0)
    last_mile += sum(
        1
        for r in lost.values()
        if r.cause in NODE_LOSSES and r.position == sink
    )

    return Implications(
        source_gini=source_gini,
        position_gini=position_gini,
        cause_cooccurrence=cooccurrence,
        node_vs_link_ratio=ratio,
        last_mile_share=last_mile / total,
        acked_loss_share=counts.get(LossCause.ACKED_LOSS, 0) / total,
    )


def check_citysee_pathologies(implications: Implications) -> dict[str, bool]:
    """Does a deployment exhibit the paper's findings?

    Returns named boolean verdicts usable in dashboards/regressions.
    """
    return {
        "positions_concentrate_vs_sources": implications.position_gini
        > implications.source_gini + 0.15,
        "causes_cooccur": implications.cause_cooccurrence > 0.2,
        "node_losses_dominate_link_losses": (
            implications.node_vs_link_ratio is None
            or implications.node_vs_link_ratio > 2.0
        ),
        "last_mile_is_significant": implications.last_mile_share > 0.3,
        "hardware_acks_overpromise": implications.acked_loss_share > 0.1,
    }
