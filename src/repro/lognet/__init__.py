"""The lossy, unsynchronized logging substrate (paper §I-III).

Nodes record events locally; the collected logs differ from the true event
record in exactly the ways the paper describes:

- **record loss** — individual log writes fail (flash errors, buffer
  pressure): :class:`~repro.lognet.loss.LogLossSpec.write_fail_p`;
- **tail loss** — a node crash truncates its log;
- **chunk loss** — logs are shipped to the sink over CTP in chunks; whole
  chunks go missing in transit;
- **whole-log loss** — a node's log never arrives (Table II case 1);
- **clock skew** — timestamps, where present at all, are local clock
  readings with per-node offset and drift (:mod:`repro.lognet.clock`), so
  cross-node ordering by timestamp is unreliable.

:func:`~repro.lognet.collector.collect_logs` applies all of it
deterministically given a seed.
"""

from repro.lognet.clock import LocalClock, make_clocks
from repro.lognet.loss import LogLossSpec, apply_losses
from repro.lognet.collector import collect_logs, collect_into

__all__ = [
    "LocalClock",
    "make_clocks",
    "LogLossSpec",
    "apply_losses",
    "collect_logs",
    "collect_into",
]
