"""Log degradation models (paper §I: "logs ... may also be lossy due to
log-write failure or even node failure").

All loss modes operate on true per-node logs and are deterministic given an
RNG stream.  They compose in the physically sensible order: write failures
happen first (the record never existed on flash), then a crash truncates the
tail, then collection drops chunks or whole logs in transit.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Mapping

from repro.events.log import NodeLog
from repro.util.rng import RngStreams


@dataclass(frozen=True, slots=True)
class LogLossSpec:
    """Knobs of the degradation pipeline.

    Attributes
    ----------
    write_fail_p:
        Probability each individual record fails to be written.
    crash_p / crash_keep_min:
        Probability a node's log is truncated (crash / log-buffer wrap);
        the surviving prefix length is uniform in
        ``[crash_keep_min * len, len]``.
    chunk_size / chunk_loss_p:
        Logs ship to the sink in chunks of ``chunk_size`` records; each
        chunk is lost in transit independently.
    node_loss_p:
        Probability a node's log never arrives at all (Table II case 1).
    immune:
        Nodes whose logs are reliable (the PC base station).
    write_fail_overrides:
        Per-node ``write_fail_p`` overrides as ``(node, p)`` pairs.  The
        paper's sink is the canonical case: a node under heavy forwarding
        load drops most of its own log writes, which is what splits the
        sink's serial losses into the *acked* (recv record gone) vs
        *received* (recv record survived) bands of Figs. 6/9.
    """

    write_fail_p: float = 0.0
    crash_p: float = 0.0
    crash_keep_min: float = 0.5
    chunk_size: int = 16
    chunk_loss_p: float = 0.0
    node_loss_p: float = 0.0
    immune: frozenset[int] = frozenset()
    write_fail_overrides: tuple[tuple[int, float], ...] = ()

    def __post_init__(self) -> None:
        for name in ("write_fail_p", "crash_p", "chunk_loss_p", "node_loss_p"):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be a probability, got {p}")
        for node, p in self.write_fail_overrides:
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"override for node {node} must be a probability, got {p}")
        if self.chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        if not 0.0 <= self.crash_keep_min <= 1.0:
            raise ValueError("crash_keep_min must be in [0, 1]")

    def write_fail_for(self, node: int) -> float:
        for n, p in self.write_fail_overrides:
            if n == node:
                return p
        return self.write_fail_p

    @classmethod
    def lossless(cls) -> "LogLossSpec":
        return cls()

    @classmethod
    def moderate(cls) -> "LogLossSpec":
        """A CitySee-plausible default: a few percent of everything."""
        return cls(write_fail_p=0.03, crash_p=0.02, chunk_loss_p=0.05, node_loss_p=0.01)

    def scaled(self, factor: float) -> "LogLossSpec":
        """This spec with every loss probability scaled by ``factor``.

        Probabilities clamp at 1.0; structural knobs (chunk size, immunity,
        crash survivor fraction) are untouched.  This is the severity ladder
        used by the stress harness's monotonicity oracle: ``scaled(0)`` is
        lossless, ``scaled(1)`` is this spec, larger factors are strictly
        harsher degradations of the same shape.
        """
        if factor < 0:
            raise ValueError("factor must be non-negative")

        def clamp(p: float) -> float:
            return min(1.0, p * factor)

        return replace(
            self,
            write_fail_p=clamp(self.write_fail_p),
            crash_p=clamp(self.crash_p),
            chunk_loss_p=clamp(self.chunk_loss_p),
            node_loss_p=clamp(self.node_loss_p),
            write_fail_overrides=tuple(
                (node, clamp(p)) for node, p in self.write_fail_overrides
            ),
        )


def apply_losses(
    logs: Mapping[int, NodeLog], spec: LogLossSpec, rng: RngStreams
) -> dict[int, NodeLog]:
    """Degrade ``logs`` per ``spec``; returns new logs, input untouched."""
    out: dict[int, NodeLog] = {}
    for node in sorted(logs):
        log = logs[node]
        if node in spec.immune:
            out[node] = NodeLog(node, log.events)
            continue
        stream = rng.stream(f"logloss:{node}")
        if spec.node_loss_p and stream.random() < spec.node_loss_p:
            continue  # whole log missing
        write_fail = spec.write_fail_for(node)
        if write_fail:
            keep = [stream.random() >= write_fail for _ in range(len(log))]
            log = log.filtered(keep)
        if spec.crash_p and stream.random() < spec.crash_p:
            lo = int(len(log) * spec.crash_keep_min)
            log = log.truncated(stream.randint(lo, len(log)))
        if spec.chunk_loss_p and len(log):
            keep = []
            for start in range(0, len(log), spec.chunk_size):
                kept = stream.random() >= spec.chunk_loss_p
                keep.extend([kept] * min(spec.chunk_size, len(log) - start))
            log = log.filtered(keep)
        out[node] = log
    return out
