"""Unsynchronized local clocks.

Sensor nodes have no global time source: each node's clock has a boot-time
offset and a crystal drift (real 32kHz crystals drift tens of ppm).  The
logging substrate stamps collected log records with *local* clock readings,
so any analysis that compares timestamps across nodes (e.g. the
time-correlation baseline) inherits the skew, while REFILL — which never
reads timestamps — does not.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.rng import RngStreams


@dataclass(frozen=True, slots=True)
class LocalClock:
    """``local = true * (1 + drift) + offset``."""

    offset: float
    drift: float

    def local(self, true_time: float) -> float:
        """Local clock reading at global time ``true_time``."""
        return true_time * (1.0 + self.drift) + self.offset

    def true(self, local_time: float) -> float:
        """Invert a local reading back to global time (for tests)."""
        return (local_time - self.offset) / (1.0 + self.drift)


def make_clocks(
    nodes,
    rng: RngStreams,
    *,
    max_offset: float = 120.0,
    max_drift_ppm: float = 80.0,
    perfect: frozenset[int] | set[int] = frozenset(),
) -> dict[int, LocalClock]:
    """Random per-node clocks; nodes in ``perfect`` (e.g. the PC base
    station) get an exact clock."""
    stream = rng.stream("clocks")
    clocks: dict[int, LocalClock] = {}
    for node in sorted(nodes):
        if node in perfect:
            clocks[node] = LocalClock(0.0, 0.0)
        else:
            offset = stream.uniform(-max_offset, max_offset)
            drift = stream.uniform(-max_drift_ppm, max_drift_ppm) * 1e-6
            clocks[node] = LocalClock(offset, drift)
    return clocks
