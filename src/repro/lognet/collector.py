"""Log collection: true per-node logs -> what the analyst actually gets.

Combines the loss pipeline with local-clock stamping.  The returned logs
are what REFILL (and the baselines) see: per-node ordered, incomplete, with
unsynchronized timestamps.  :func:`collect_into` is the live-deployment
door: it feeds the collected logs round by round into a streaming
:class:`~repro.core.session.ReconstructionSession`, the way CTP collection
actually delivers them.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Mapping, Optional

from repro.events.log import NodeLog
from repro.events.merge import split_collection_rounds
from repro.lognet.clock import LocalClock, make_clocks
from repro.lognet.loss import LogLossSpec, apply_losses
from repro.obs.registry import get_registry
from repro.obs.spans import span
from repro.obs.structlog import get_logger
from repro.util.rng import RngStreams

if TYPE_CHECKING:  # lognet stays importable without the core layer
    from repro.core.session import ReconstructionSession

_log = get_logger("repro.collector")


def collect_logs(
    true_logs: Mapping[int, NodeLog],
    spec: LogLossSpec,
    seed: int,
    *,
    clocks: Optional[Mapping[int, LocalClock]] = None,
    perfect_clocks: frozenset[int] = frozenset(),
) -> dict[int, NodeLog]:
    """Apply log losses and clock skew; deterministic given ``seed``.

    Parameters
    ----------
    true_logs:
        Per-node logs with *true* timestamps (from the simulator).
    spec:
        The degradation pipeline configuration.
    clocks:
        Pre-built per-node clocks; generated from the seed when omitted.
    perfect_clocks:
        Nodes with exact clocks (the PC base station), used only when
        ``clocks`` is generated here.
    """
    with span("collect.logs"):
        rng = RngStreams(seed)
        if clocks is None:
            clocks = make_clocks(true_logs.keys(), rng, perfect=perfect_clocks)
        lossy = apply_losses(true_logs, spec, rng)
        collected: dict[int, NodeLog] = {}
        for node, log in lossy.items():
            clock = clocks.get(node, LocalClock(0.0, 0.0))
            collected[node] = NodeLog(
                node,
                (
                    e.with_time(clock.local(e.time)) if e.time is not None else e
                    for e in log
                ),
            )
        registry = get_registry()
        true_total = sum(len(log) for log in true_logs.values())
        kept_total = sum(len(log) for log in collected.values())
        registry.counter("collect.nodes").inc(len(collected))
        registry.counter("collect.events").inc(kept_total)
        registry.counter("collect.events.lost").inc(true_total - kept_total)
        _log.debug(
            "logs.collected", nodes=len(collected), events=kept_total,
            lost=true_total - kept_total,
        )
        return collected


def collect_into(
    session: "ReconstructionSession",
    true_logs: Mapping[int, NodeLog],
    spec: LogLossSpec,
    seed: int,
    *,
    rounds: int = 1,
    clocks: Optional[Mapping[int, LocalClock]] = None,
    perfect_clocks: frozenset[int] = frozenset(),
) -> dict[int, NodeLog]:
    """Collect and stream the result into a session, ``rounds`` batches at
    a time — the live-monitoring door.

    Losses and clock skew are applied once over the whole collection (crash
    truncation and chunk loss act on full logs), then each node's surviving
    log is delivered in ``rounds`` in-order segments, the way repeated CTP
    collection rounds would hand them to an operator.  The session must run
    an accumulating backend; call :meth:`ReconstructionSession.refresh` (or
    any auto-refreshing query) for up-to-date flows.  Returns the complete
    collected logs for reference (e.g. one-shot comparison runs).
    """
    collected = collect_logs(
        true_logs, spec, seed, clocks=clocks, perfect_clocks=perfect_clocks
    )
    with span("collect.ingest"):
        for batch in split_collection_rounds(collected, rounds):
            session.ingest(batch)
    return collected


def collect_to_server(
    true_logs: Mapping[int, NodeLog],
    spec: LogLossSpec,
    seed: int,
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    unix_socket: Optional[str] = None,
    source: str = "collector",
    rounds: int = 1,
    clocks: Optional[Mapping[int, LocalClock]] = None,
    perfect_clocks: frozenset[int] = frozenset(),
) -> dict[int, NodeLog]:
    """Collect and ship the result to a running ``refill serve`` daemon —
    the remote-monitoring door.

    Like :func:`collect_into`, but the delivery target is a network service
    speaking the line protocol (:mod:`repro.serve.protocol`) instead of an
    in-process session.  Events are encoded with the shared codec and
    pushed as one resumable *source* in a deterministic order (round by
    round, nodes ascending within a round), so re-running the same
    collection resumes at the server's offset instead of re-sending.  The
    events are authentic (no binding needed), and a full server queue
    simply blocks the push — backpressure ends here.  Returns the complete
    collected logs, same as :func:`collect_logs`.
    """
    from repro.events.codec import encode_event
    from repro.serve.client import push_lines

    collected = collect_logs(
        true_logs, spec, seed, clocks=clocks, perfect_clocks=perfect_clocks
    )
    lines: list[str] = []
    for batch in split_collection_rounds(collected, rounds):
        for node in sorted(batch):
            lines.extend(encode_event(event) for event in batch[node])
    with span("collect.push"):
        result = push_lines(
            lines, host=host, port=port, unix_socket=unix_socket, source=source
        )
    get_registry().counter("collect.push.lines").inc(result.sent)
    _log.info(
        "logs.pushed", source=source, sent=result.sent, skipped=result.skipped,
        accepted=result.accepted,
    )
    return collected
