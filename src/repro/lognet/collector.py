"""Log collection: true per-node logs -> what the analyst actually gets.

Combines the loss pipeline with local-clock stamping.  The returned logs
are what REFILL (and the baselines) see: per-node ordered, incomplete, with
unsynchronized timestamps.
"""

from __future__ import annotations

from typing import Mapping, Optional

from repro.events.log import NodeLog
from repro.lognet.clock import LocalClock, make_clocks
from repro.lognet.loss import LogLossSpec, apply_losses
from repro.obs.registry import get_registry
from repro.obs.spans import span
from repro.obs.structlog import get_logger
from repro.util.rng import RngStreams

_log = get_logger("repro.collector")


def collect_logs(
    true_logs: Mapping[int, NodeLog],
    spec: LogLossSpec,
    seed: int,
    *,
    clocks: Optional[Mapping[int, LocalClock]] = None,
    perfect_clocks: frozenset[int] = frozenset(),
) -> dict[int, NodeLog]:
    """Apply log losses and clock skew; deterministic given ``seed``.

    Parameters
    ----------
    true_logs:
        Per-node logs with *true* timestamps (from the simulator).
    spec:
        The degradation pipeline configuration.
    clocks:
        Pre-built per-node clocks; generated from the seed when omitted.
    perfect_clocks:
        Nodes with exact clocks (the PC base station), used only when
        ``clocks`` is generated here.
    """
    with span("collect.logs"):
        rng = RngStreams(seed)
        if clocks is None:
            clocks = make_clocks(true_logs.keys(), rng, perfect=perfect_clocks)
        lossy = apply_losses(true_logs, spec, rng)
        collected: dict[int, NodeLog] = {}
        for node, log in lossy.items():
            clock = clocks.get(node, LocalClock(0.0, 0.0))
            collected[node] = NodeLog(
                node,
                (
                    e.with_time(clock.local(e.time)) if e.time is not None else e
                    for e in log
                ),
            )
        registry = get_registry()
        true_total = sum(len(log) for log in true_logs.values())
        kept_total = sum(len(log) for log in collected.values())
        registry.counter("collect.nodes").inc(len(collected))
        registry.counter("collect.events").inc(kept_total)
        registry.counter("collect.events.lost").inc(true_total - kept_total)
        _log.debug(
            "logs.collected", nodes=len(collected), events=kept_total,
            lost=true_total - kept_total,
        )
        return collected
