"""NetCheck-style baseline: per-node FSM replay without inference [21].

"NetCheck does not show how to connect inference engines on different nodes
and does not consider the impact of lost events" (paper §VI).  We model it
as REFILL with inter-node prerequisites *and* intra-node jumps disabled:
each node's log replays through its own FSM; unprocessable events (made so
by lost predecessors) are dropped; the global order is taken from the
(skew-prone) timestamps when present, else from the merge interleaving.

Diagnosis then uses the naive protocol-semantics rule of paper §III: a
``trans`` without a matching ``ack``/``recv`` means "lost at the sender" —
exactly the rule Table II case 1 shows to be wrong.
"""

from __future__ import annotations

from typing import Mapping, Optional

from repro.core.diagnosis import LossCause, LossReport
from repro.core.event_flow import EventFlow
from repro.core.refill import Refill, RefillOptions
from repro.events.event import EventType
from repro.events.log import NodeLog
from repro.events.packet import PacketKey
from repro.fsm.templates import FsmTemplate, forwarder_template


class NetCheckAnalyzer:
    """Isolated per-node replay + naive last-event diagnosis."""

    def __init__(self, template: Optional[FsmTemplate] = None) -> None:
        self.refill = Refill(
            template or forwarder_template(),
            RefillOptions(enable_intra=False, enable_inter=False),
        )

    def reconstruct(self, logs: Mapping[int, NodeLog]) -> dict[PacketKey, EventFlow]:
        """Per-node validated replays, merged by timestamp where available."""
        flows = self.refill.reconstruct(logs)
        for flow in flows.values():
            self._timestamp_sort(flow)
        return flows

    @staticmethod
    def _timestamp_sort(flow: EventFlow) -> None:
        """Order entries globally by (skewed) local timestamps.

        NetCheck has no other cross-node ordering signal; entries without a
        timestamp keep their relative position at the end.
        """
        stamped = [e for e in flow.entries if e.event.time is not None]
        unstamped = [e for e in flow.entries if e.event.time is None]
        stamped.sort(key=lambda e: e.event.time)
        flow.entries[:] = stamped + unstamped

    def diagnose(
        self,
        flows: Mapping[PacketKey, EventFlow],
        *,
        delivery_node: Optional[int] = None,
    ) -> dict[PacketKey, LossReport]:
        """The naive trans-without-ack rule (paper §III)."""
        return {
            packet: self._classify(flow, delivery_node) for packet, flow in flows.items()
        }

    @staticmethod
    def _classify(flow: EventFlow, delivery_node: Optional[int]) -> LossReport:
        if delivery_node is not None:
            for entry in flow.entries:
                if entry.event.node == delivery_node and entry.event.etype == EventType.RECV.value:
                    return LossReport(LossCause.DELIVERED, delivery_node, entry.event)
        last = flow.last_event()
        if last is None:
            return LossReport(LossCause.UNKNOWN, None, None)
        # naive rule: the last trans without a later ack for the same pair
        # pins the loss on the sender's link
        acked_pairs = {
            (e.src, e.dst) for e in flow.events if e.etype == EventType.ACK.value
        }
        for event in reversed(flow.events):
            if event.etype == EventType.TRANS.value and (event.src, event.dst) not in acked_pairs:
                return LossReport(LossCause.TIMEOUT_LOSS, event.src, event)
        etype = last.etype
        if etype == EventType.RECV.value:
            return LossReport(LossCause.RECEIVED_LOSS, last.node, last)
        if etype == EventType.ACK.value:
            return LossReport(LossCause.ACKED_LOSS, last.dst, last)
        if etype == EventType.TIMEOUT.value:
            return LossReport(LossCause.TIMEOUT_LOSS, last.node, last)
        if etype == EventType.DUP.value:
            return LossReport(LossCause.DUP_LOSS, last.node, last)
        if etype == EventType.OVERFLOW.value:
            return LossReport(LossCause.OVERFLOW_LOSS, last.node, last)
        return LossReport(LossCause.UNKNOWN, last.node, last)
