"""Comparison analyzers (paper §VI and §V-D).

- :mod:`repro.baselines.sink_view` — what the operator sees from collected
  data packets alone (paper Fig. 4): whose packets were lost and roughly
  when, but not where or why.
- :mod:`repro.baselines.time_correlation` — time-domain correlation
  diagnosis ([15], §V-D2): correlate losses with co-temporal logged events;
  degrades when causes co-occur and clocks are skewed.
- :mod:`repro.baselines.netcheck` — NetCheck-style per-node FSM replay
  [21]: no inter-node connection, no lost-event inference.
- :mod:`repro.baselines.wit` — Wit-style merging [10]: combines logs only
  through commonly recorded events; with individual (non-sniffer) logs
  there are none, so nothing merges.
"""

from repro.baselines.sink_view import SinkView
from repro.baselines.time_correlation import TimeCorrelationDiagnosis
from repro.baselines.netcheck import NetCheckAnalyzer
from repro.baselines.wit import WitMerger, WitReport

__all__ = [
    "SinkView",
    "TimeCorrelationDiagnosis",
    "NetCheckAnalyzer",
    "WitMerger",
    "WitReport",
]
