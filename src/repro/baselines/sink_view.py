"""The sink view: loss analysis from collected data packets alone (Fig. 4).

"This is obtained from the collected data packets by analyzing whose
packets are lost. ... we calculate the time for the received packet right
before the lost packet. Then we calculate the sequence gap ... Since
packets are sent periodically in our network, we can derive the sent time
of lost packets and use it to approximate the packet loss time." (§V-B1)

The sink view knows *whose* packets were lost and roughly *when* — but not
*where* or *why*; that asymmetry is the paper's motivation for REFILL.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Optional

from repro.events.packet import PacketKey


class SinkView:
    """Per-origin sequence-gap analysis of base-station arrivals."""

    def __init__(
        self,
        bs_arrivals: Iterable[tuple[PacketKey, float]],
        gen_interval: float,
        *,
        known_max_seq: Optional[Mapping[int, int]] = None,
    ) -> None:
        """
        Parameters
        ----------
        bs_arrivals:
            ``(packet, arrival_time)`` pairs observed at the base station.
        gen_interval:
            The (known) sensing period.
        known_max_seq:
            Last sequence number each origin generated, when the operator
            knows it (end-of-experiment bookkeeping).  Without it, tail
            losses after an origin's last delivered packet are invisible —
            a real limitation of the sink view.
        """
        self.gen_interval = gen_interval
        self._arrivals: dict[int, dict[int, float]] = {}
        for packet, t in bs_arrivals:
            self._arrivals.setdefault(packet.origin, {})[packet.seq] = t
        self._known_max_seq = dict(known_max_seq) if known_max_seq else None

    # ------------------------------------------------------------------ #

    def origins(self) -> list[int]:
        if self._known_max_seq is not None:
            return sorted(self._known_max_seq)
        return sorted(self._arrivals)

    def max_seq(self, origin: int) -> int:
        if self._known_max_seq is not None:
            return self._known_max_seq.get(origin, 0)
        seqs = self._arrivals.get(origin)
        return max(seqs) if seqs else 0

    def lost_packets(self) -> list[PacketKey]:
        """Packets that never reached the base station (seq-gap detection)."""
        lost: list[PacketKey] = []
        for origin in self.origins():
            received = self._arrivals.get(origin, {})
            for seq in range(1, self.max_seq(origin) + 1):
                if seq not in received:
                    lost.append(PacketKey(origin, seq))
        return lost

    def delivered_packets(self) -> list[PacketKey]:
        return sorted(
            PacketKey(origin, seq)
            for origin, seqs in self._arrivals.items()
            for seq in seqs
        )

    def estimate_loss_time(self, packet: PacketKey) -> Optional[float]:
        """Approximate loss time from the nearest delivered neighbour.

        Anchors on the closest delivered sequence number of the same origin
        and extrapolates by the sensing period (the paper's §V-B1 recipe).
        """
        received = self._arrivals.get(packet.origin)
        if not received:
            return None
        # arrivals whose timestamp survived collection: a packet logged with
        # a garbled/absent time still proves delivery (gap analysis above),
        # but cannot anchor a time estimate
        timed = {s: t for s, t in received.items() if t is not None}
        before = [s for s in timed if s < packet.seq]
        if before:
            anchor = max(before)
            return timed[anchor] + (packet.seq - anchor) * self.gen_interval
        after = [s for s in timed if s > packet.seq]
        if after:
            anchor = min(after)
            return timed[anchor] - (anchor - packet.seq) * self.gen_interval
        return None

    def loss_times(self) -> dict[PacketKey, Optional[float]]:
        """Estimated loss time of every lost packet."""
        return {p: self.estimate_loss_time(p) for p in self.lost_packets()}

    def loss_rate(self) -> float:
        total = sum(self.max_seq(o) for o in self.origins())
        if total == 0:
            return 0.0
        return len(self.lost_packets()) / total
