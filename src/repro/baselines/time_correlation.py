"""Time-domain correlation diagnosis (paper §V-D2, after [15]).

"To find the causes of packet losses, packet losses are correlated with
events during the same time period."  For each lost packet the analyzer
looks at every *suspicious* event logged anywhere in the network within a
window around the (estimated) loss time and blames the most frequent kind.

The paper's two criticisms fall out of the construction:

1. when several causes co-occur in a window, the majority cause swallows
   the minority (timeout losses hide behind a burst of sink drops);
2. rare-but-important causes produce few events and are outvoted.

Clock skew on the logs adds noise on top.
"""

from __future__ import annotations

import bisect
from typing import Mapping, Optional

from repro.core.diagnosis import LossCause, LossReport
from repro.events.event import EventType
from repro.events.log import NodeLog
from repro.events.packet import PacketKey

#: Suspicious event types and the cause each one votes for.
_VOTES = {
    EventType.TIMEOUT.value: LossCause.TIMEOUT_LOSS,
    EventType.DUP.value: LossCause.DUP_LOSS,
    EventType.OVERFLOW.value: LossCause.OVERFLOW_LOSS,
}


class TimeCorrelationDiagnosis:
    """Correlate losses with co-temporal suspicious events."""

    def __init__(self, logs: Mapping[int, NodeLog], *, window: float = 120.0) -> None:
        self.window = window
        self._events: list[tuple[float, str, int]] = []
        for log in logs.values():
            for event in log:
                if event.time is not None and event.etype in _VOTES:
                    self._events.append((event.time, event.etype, event.node))
        self._events.sort()
        self._times = [t for t, _, _ in self._events]

    def diagnose(
        self,
        lost: Mapping[PacketKey, Optional[float]],
    ) -> dict[PacketKey, LossReport]:
        """Blame each lost packet on the dominant co-temporal event type.

        ``lost`` maps lost packets to their estimated loss times (e.g. from
        the sink view); packets without an estimate stay UNKNOWN.
        """
        out: dict[PacketKey, LossReport] = {}
        for packet, t in lost.items():
            if t is None:
                out[packet] = LossReport(LossCause.UNKNOWN, None, None)
                continue
            votes: dict[LossCause, int] = {}
            positions: dict[LossCause, int] = {}
            lo = bisect.bisect_left(self._times, t - self.window)
            hi = bisect.bisect_right(self._times, t + self.window)
            for _, etype, node in self._events[lo:hi]:
                cause = _VOTES[etype]
                votes[cause] = votes.get(cause, 0) + 1
                positions.setdefault(cause, node)
            if not votes:
                out[packet] = LossReport(LossCause.UNKNOWN, None, None)
                continue
            winner = max(votes, key=lambda c: votes[c])
            out[packet] = LossReport(winner, positions[winner], None)
        return out
