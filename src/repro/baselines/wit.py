"""Wit-style merging: combine logs through commonly recorded events [10].

Wit analyzed *sniffer* traces: several vantage points overhear the same
radio transmissions, so the same frame appears in multiple logs and those
common records anchor the merge.  With REFILL's setting — each node logs
only its own local operations — two logs never contain the same record, so
Wit-style merging finds no anchors ("When common events are lost or not
recorded, logs cannot be combined", paper §VI).

The implementation is a real common-event merger (tested against synthetic
sniffer logs where it *does* work); the benchmark then shows it finding
zero mergeable pairs on individual logs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.events.event import Event
from repro.events.log import NodeLog


def _fingerprint(event: Event) -> tuple:
    """Identity of an *observation*: what a second observer would also log.

    Timestamps are excluded (observers have different clocks), the
    recording node is excluded (that is what differs between observers).
    Only events carrying a shared identity — a packet or a sender/receiver
    pair — can be common observations at all; purely node-local events
    (e.g. routing parent changes) may *coincidentally* be byte-identical on
    two nodes without being the same phenomenon, so they fingerprint with
    their recording node and can never anchor a merge (Wit correlated
    overheard radio frames, which always carry frame identity).
    """
    if event.packet is None and (event.src is None or event.dst is None):
        return (event.node, event.etype, event.src, event.dst, event.info)
    return (event.etype, event.src, event.dst, event.packet, event.info)


@dataclass
class WitReport:
    """Outcome of a Wit-style merge attempt."""

    #: Pairs of nodes that share at least one common record.
    mergeable_pairs: list[tuple[int, int]] = field(default_factory=list)
    #: Count of common records per mergeable pair.
    common_counts: dict[tuple[int, int], int] = field(default_factory=dict)
    #: Nodes whose logs could not be merged with anything.
    isolated_nodes: list[int] = field(default_factory=list)
    #: The merged ordering when a merge was possible (else empty).
    merged: list[Event] = field(default_factory=list)

    @property
    def merge_possible(self) -> bool:
        return bool(self.mergeable_pairs)

    def mergeable_fraction(self, n_pairs_total: int) -> float:
        if n_pairs_total == 0:
            return 0.0
        return len(self.mergeable_pairs) / n_pairs_total


class WitMerger:
    """Common-event log merging."""

    def merge(self, logs: Mapping[int, NodeLog]) -> WitReport:
        """Attempt to merge all logs pairwise through common records."""
        report = WitReport()
        nodes = sorted(logs)
        fingerprints = {
            node: [_fingerprint(e) for e in logs[node]] for node in nodes
        }
        fingerprint_sets = {node: set(fps) for node, fps in fingerprints.items()}
        connected: set[int] = set()
        for i, a in enumerate(nodes):
            for b in nodes[i + 1 :]:
                common = fingerprint_sets[a] & fingerprint_sets[b]
                if common:
                    report.mergeable_pairs.append((a, b))
                    report.common_counts[(a, b)] = len(common)
                    connected |= {a, b}
        report.isolated_nodes = [n for n in nodes if n not in connected]
        if report.mergeable_pairs:
            report.merged = self._anchor_merge(logs, fingerprints)
        return report

    @staticmethod
    def _anchor_merge(
        logs: Mapping[int, NodeLog],
        fingerprints: Mapping[int, list[tuple]],
    ) -> list[Event]:
        """Order events by anchor rank: position of the latest common record
        seen so far in each log (Wit's alignment idea, simplified).

        Assign each common fingerprint a global rank (its first appearance
        order across logs); each event sorts by the rank of the most recent
        anchor preceding it in its own log, then by local position.
        """
        rank: dict[tuple, int] = {}
        counts: dict[tuple, int] = {}
        for fps in fingerprints.values():
            for fp in fps:
                counts[fp] = counts.get(fp, 0) + 1
        next_rank = 0
        for node in sorted(logs):
            for fp in fingerprints[node]:
                if counts[fp] > 1 and fp not in rank:
                    rank[fp] = next_rank
                    next_rank += 1

        keyed: list[tuple[int, int, int, Event]] = []
        for node in sorted(logs):
            current = -1
            for position, (event, fp) in enumerate(zip(logs[node], fingerprints[node])):
                if fp in rank:
                    current = rank[fp]
                keyed.append((current, position, node, event))
        keyed.sort(key=lambda item: (item[0], item[1], item[2]))
        return [event for _, _, _, event in keyed]
