"""PathZip-style path recovery baseline (paper §VI, [9]).

"PathZip uses a hashtable to store the nodes on the path.  It is based on a
precondition that neighboring nodes of each node are known in prior.  Then
it searches in each node's neighboring nodes to find nodes on the path hop
by hop."

We reproduce the scheme faithfully at the algorithmic level: each delivered
packet carries a compact *path digest* (an order-sensitive hash folded over
the node ids, as a real 32-bit PathZip field would); recovery searches
hop-by-hop through the known neighbor graph for a path whose digest matches.
Two structural limitations fall out, both of which REFILL avoids:

- only packets that *arrive* carry a digest — lost packets (the ones you
  want to trace!) have no path at all;
- search cost explodes with path length / node degree, so recovery is
  bounded and can fail on long paths.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional, Sequence

from repro.events.packet import PacketKey
from repro.simnet.topology import Topology

#: 32-bit folding, mirroring the on-mote digest field width.
_MASK = 0xFFFFFFFF


def path_digest(path: Sequence[int]) -> int:
    """Order-sensitive 32-bit digest of a node path (the packet's field)."""
    h = 0x811C9DC5
    for node in path:
        h ^= node & _MASK
        h = (h * 0x01000193) & _MASK
    return h


@dataclass(frozen=True, slots=True)
class PathZipRecord:
    """What the base station sees per delivered packet."""

    packet: PacketKey
    digest: int
    hop_count: int


class PathZipRecovery:
    """Hop-by-hop digest search over the known neighbor graph."""

    def __init__(self, topology: Topology, *, max_expansions: int = 200_000) -> None:
        self.topology = topology
        self.max_expansions = max_expansions

    def recover(self, record: PathZipRecord) -> Optional[list[int]]:
        """Find the path matching the record's digest, or ``None``.

        Depth-first search from the origin through neighbor sets, pruned by
        the known hop count; gives up after ``max_expansions`` node
        expansions (the paper's scalability criticism of search-based
        tracing).
        """
        origin = record.packet.origin
        sink = self.topology.sink
        expansions = 0

        def dfs(path: list[int]) -> Optional[list[int]]:
            nonlocal expansions
            expansions += 1
            if expansions > self.max_expansions:
                return None
            depth = len(path) - 1
            if depth == record.hop_count:
                if path[-1] == sink and path_digest(path) == record.digest:
                    return list(path)
                return None
            for nbr in self.topology.neighbors(path[-1]):
                if nbr in path:
                    continue  # simple paths only
                path.append(nbr)
                found = dfs(path)
                path.pop()
                if found is not None:
                    return found
                if expansions > self.max_expansions:
                    return None
            return None

        if origin == sink:
            return [origin] if record.hop_count == 0 else None
        return dfs([origin])

    def recover_all(
        self, records: Sequence[PathZipRecord]
    ) -> dict[PacketKey, Optional[list[int]]]:
        return {r.packet: self.recover(r) for r in records}


def make_records(
    true_paths: Mapping[PacketKey, Sequence[int]]
) -> list[PathZipRecord]:
    """Digest records for delivered packets (what the motes would stamp)."""
    return [
        PathZipRecord(packet, path_digest(path), len(path) - 1)
        for packet, path in sorted(true_paths.items())
    ]
