"""Long-running reconstruction service: ingest, checkpoint, query.

``refill serve`` turns the streaming session layer into a daemon: log lines
arrive over line-framed TCP/unix-socket connections or tailed files, flow
through a bounded queue into an incremental
:class:`~repro.core.session.ReconstructionSession`, and are queryable over a
small HTTP/JSON API whose flow payloads are byte-identical to a batch
``refill analyze`` of the same lines.  With ``--shards N`` the same surface
fronts a router/worker cluster (:mod:`repro.serve.router`): lines are
hashed by packet key across ``N`` subprocess workers
(:mod:`repro.serve.shard`) and queries are scatter-gathered back into the
identical bytes.  See ``docs/SERVING.md``.
"""

from repro.serve.checkpoint import (
    CHECKPOINT_VERSION,
    MANIFEST_VERSION,
    Checkpoint,
    ClusterManifest,
    ShardMismatchError,
    load_checkpoint,
    load_manifest,
    reshard_manifest,
    save_checkpoint,
    save_manifest,
)
from repro.serve.client import LineSender, PushResult, push_lines, push_store
from repro.serve.config import ServeConfig
from repro.serve.router import ClusterServer
from repro.serve.runner import ServerThread, make_server, read_printed_ports
from repro.serve.server import RefillServer
from repro.serve.shard import ShardSpec, ShardWorker
from repro.serve.sharding import shard_for_key, shard_for_line, shard_for_packet

__all__ = [
    "CHECKPOINT_VERSION",
    "MANIFEST_VERSION",
    "Checkpoint",
    "ClusterManifest",
    "ClusterServer",
    "LineSender",
    "PushResult",
    "RefillServer",
    "ServeConfig",
    "ServerThread",
    "ShardMismatchError",
    "ShardSpec",
    "ShardWorker",
    "load_checkpoint",
    "load_manifest",
    "make_server",
    "push_lines",
    "push_store",
    "read_printed_ports",
    "reshard_manifest",
    "save_checkpoint",
    "save_manifest",
    "shard_for_key",
    "shard_for_line",
    "shard_for_packet",
]
