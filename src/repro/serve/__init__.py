"""Long-running reconstruction service: ingest, checkpoint, query.

``refill serve`` turns the streaming session layer into a daemon: log lines
arrive over line-framed TCP/unix-socket connections or tailed files, flow
through a bounded queue into an incremental
:class:`~repro.core.session.ReconstructionSession`, and are queryable over a
small HTTP/JSON API whose flow payloads are byte-identical to a batch
``refill analyze`` of the same lines.  See ``docs/SERVING.md``.
"""

from repro.serve.checkpoint import (
    CHECKPOINT_VERSION,
    Checkpoint,
    load_checkpoint,
    save_checkpoint,
)
from repro.serve.client import LineSender, PushResult, push_lines, push_store
from repro.serve.config import ServeConfig
from repro.serve.runner import ServerThread
from repro.serve.server import RefillServer

__all__ = [
    "CHECKPOINT_VERSION",
    "Checkpoint",
    "LineSender",
    "PushResult",
    "RefillServer",
    "ServeConfig",
    "ServerThread",
    "load_checkpoint",
    "push_lines",
    "push_store",
    "save_checkpoint",
]
