"""Interpreter-version shims for the serve layer.

``asyncio.timeout`` arrived in Python 3.11, but the project supports 3.10
(``requires-python >= 3.10`` and the CI matrix runs it).  The serve layer
deliberately does not use ``wait_for`` instead: ``wait_for`` wraps the
awaited coroutine in a child task, and a real cancellation that races the
timeout's reap of that child can be lost (the bpo-42130 family) — which
would deadlock the daemon's shutdown path.  :class:`_TimeoutBackport`
reproduces the piece of the 3.11 contract the daemon relies on: arm a
timer, cancel *the current task* when it fires, and translate that one
self-inflicted cancellation into ``TimeoutError`` on exit while letting a
genuine external cancellation through untouched.

The backport class is defined unconditionally so the 3.10 code path stays
under test on every interpreter; :data:`timeout` is what the serve layer
imports, and resolves to the stdlib implementation where it exists.
"""

from __future__ import annotations

import asyncio
import sys
from typing import Optional


class _TimeoutBackport:
    """``async with`` deadline for Python 3.10 (see module docstring)."""

    __slots__ = ("_delay", "_task", "_handle", "_expired")

    def __init__(self, delay: float) -> None:
        self._delay = delay
        self._task: Optional[asyncio.Task] = None
        self._handle: Optional[asyncio.TimerHandle] = None
        self._expired = False

    async def __aenter__(self) -> "_TimeoutBackport":
        self._task = asyncio.current_task()
        if self._task is None:
            raise RuntimeError("timeout() must be used inside a task")
        loop = asyncio.get_running_loop()
        self._handle = loop.call_later(self._delay, self._on_timeout)
        return self

    def _on_timeout(self) -> None:
        self._expired = True
        assert self._task is not None
        self._task.cancel()

    async def __aexit__(self, exc_type, exc, tb) -> bool:
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None
        if self._expired and exc_type is asyncio.CancelledError:
            # Our own cancellation coming back to us: absorb it (3.11+
            # tracks requested cancellations, so un-count it there) and
            # surface the deadline instead.
            uncancel = getattr(self._task, "uncancel", None)
            if uncancel is not None:
                uncancel()
            raise TimeoutError from exc
        return False


if sys.version_info >= (3, 11):
    timeout = asyncio.timeout
else:  # pragma: no cover - exercised by the 3.10 CI lane
    timeout = _TimeoutBackport


def install_streams_cancel_filter(loop: asyncio.AbstractEventLoop) -> None:
    """Silence the CPython ≤3.11 cancelled-handler callback wart.

    ``asyncio.streams``'s per-connection protocol attaches a done-callback
    that calls ``task.exception()`` without checking ``task.cancelled()``
    first (fixed upstream in gh-110894).  When graceful shutdown cancels an
    in-flight connection handler — which both serve topologies do on
    purpose, reaping the tasks afterwards — that callback itself raises
    ``CancelledError`` and the loop logs a spurious "Exception in callback
    StreamReaderProtocol.connection_made..." traceback.  Filter exactly
    that shape and delegate everything else to the default handler.
    """

    def handler(loop: asyncio.AbstractEventLoop, context: dict) -> None:
        exc = context.get("exception")
        if isinstance(exc, asyncio.CancelledError) and (
            "StreamReaderProtocol.connection_made" in context.get("message", "")
        ):
            return
        loop.default_exception_handler(context)

    loop.set_exception_handler(handler)
