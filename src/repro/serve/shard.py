"""The consumer/session/checkpoint core of a serve daemon, as one unit.

:class:`ShardWorker` is the piece of the old monolithic server that owns
reconstruction state: one streaming
:class:`~repro.core.session.ReconstructionSession` over an
:class:`~repro.core.backends.incremental.IncrementalBackend`, the
:class:`~repro.serve.ingest.SourceBook` of per-source offsets, and the
checkpoint write/restore path.  It is deliberately loop-agnostic — every
method is synchronous — so the same class backs both deployment shapes:

- ``--shards 1``: :class:`~repro.serve.server.RefillServer` composes one
  worker in-process, bit-compatible with the pre-cluster daemon;
- ``--shards N``: each worker runs inside its own **subprocess** (a full
  ``RefillServer`` with private listeners, registry, and flight recorder),
  spawned from :func:`run_shard` with a picklable :class:`ShardSpec`.
  Subprocesses, not threads: reconstruction is CPU-bound Python, so only
  separate interpreters scale it past one core.

Shard subprocesses do not own coordination: they ignore ``SIGINT`` (a
terminal Ctrl-C reaches the whole process group; the router decides what
to do with it) and leave ``SIGTERM`` at its default — an abrupt kill writes
*nothing*, which is exactly right, because a shard checkpoint newer than
the cluster manifest would desynchronize resume offsets from shard state.
Shard checkpoints happen on the router's command (``POST
/checkpoint?epoch=N``) against epoch-stamped files, and the router's
manifest swap commits them (see :mod:`repro.serve.checkpoint`).
"""

from __future__ import annotations

import asyncio
import json
import os
import pathlib
import signal
import time
from dataclasses import dataclass
from typing import Any, Optional

from repro.core.backends.incremental import IncrementalBackend
from repro.core.session import ReconstructionSession
from repro.obs.registry import MetricsRegistry, get_registry
from repro.obs.structlog import configure_logging, get_logger
from repro.obs.tracing import traced, use_trace
from repro.serve.checkpoint import (
    Checkpoint,
    load_checkpoint,
    save_checkpoint,
    shard_checkpoint_path,
)
from repro.serve.config import ServeConfig
from repro.serve.ingest import ANONYMOUS_SOURCE, IngestItem, SourceBook, decode_lines

_log = get_logger("refill.serve.shard")

#: Environment variable naming a directory where shard subprocesses report
#: leaked asyncio tasks at loop close; set by the test suite's task-ledger
#: fixture so the leak check reaches across the process boundary.
TASK_LEDGER_ENV = "REFILL_TASK_LEDGER_DIR"


@dataclass(frozen=True)
class ShardSpec:
    """Picklable description of one shard subprocess (spawn-safe)."""

    #: This worker's index in ``range(shards)``.
    index: int
    #: Cluster width (the hash modulus).
    shards: int
    #: The cluster manifest path (``None`` → checkpointing disabled).
    manifest_path: Optional[str]
    #: Exact shard checkpoint file to restore, or ``None`` for a fresh start.
    restore_file: Optional[str]
    delivery_node: Optional[int]
    batch_size: int
    flush_interval: float
    ingest_queue_batches: int
    ingest_batch_lines: int
    trace_capacity: int

    def to_config(self) -> ServeConfig:
        """The subprocess server's config: loopback listeners on OS-assigned
        ports, no store, no periodic checkpoint timer (epochs are written on
        the router's command only)."""
        return ServeConfig(
            store=None,
            host="127.0.0.1",
            port=0,
            http_host="127.0.0.1",
            http_port=0,
            checkpoint_path=self.restore_file,
            checkpoint_interval=0.0,
            flush_interval=self.flush_interval,
            ingest_queue_batches=self.ingest_queue_batches,
            ingest_batch_lines=self.ingest_batch_lines,
            batch_size=self.batch_size,
            delivery_node=self.delivery_node,
            trace_capacity=self.trace_capacity,
        )

    def epoch_path(self, epoch: int) -> pathlib.Path:
        """Where this shard's epoch-``epoch`` checkpoint file lives."""
        assert self.manifest_path is not None, "checkpointing is not configured"
        return shard_checkpoint_path(self.manifest_path, self.index, epoch)


class ShardWorker:
    """Session + source book + checkpointing for one shard (or the whole
    daemon at ``--shards 1``); loop-agnostic, single-writer by contract."""

    def __init__(self, config: ServeConfig) -> None:
        self.config = config
        self.book = SourceBook()
        self.session = ReconstructionSession(
            backend=IncrementalBackend(),
            delivery_node=config.resolved_delivery_node(),
            batch_size=config.batch_size,
        )
        #: Where the *next* checkpoint goes.  Coordinated epoch writes
        #: retarget this, so a later graceful self-write is an idempotent
        #: rewrite of the current epoch file, never a new state on disk.
        self.checkpoint_path: Optional[pathlib.Path] = config.resolved_checkpoint()
        self._dirty_since_checkpoint = False
        self._started_at = time.monotonic()
        #: ``time.monotonic()`` of the last checkpoint write (age gauge).
        self._last_checkpoint_at: Optional[float] = None
        #: Queue wait of the most recently ingested batch (lag gauge).
        self._last_queue_wait = 0.0

    # ------------------------------------------------------------------ #
    # checkpoint / restore

    def restore(self) -> bool:
        """Adopt the configured checkpoint if one exists on disk."""
        path = self.checkpoint_path
        if path is None or not path.exists():
            return False
        checkpoint = load_checkpoint(path)
        self.session.restore_state(checkpoint.session_state)
        self.book.restore(
            checkpoint.offsets, checkpoint.corrupt_lines, checkpoint.lines_ingested
        )
        _log.info(
            "serve.restored",
            checkpoint=str(path),
            packets=len(self.session.packets()),
            sources=len(self.book.ingested),
            lines=self.book.lines_ingested,
        )
        return True

    def write_checkpoint(
        self, path: Optional[pathlib.Path] = None
    ) -> Optional[pathlib.Path]:
        """Write a checkpoint now; ``None`` when no path is configured.

        An explicit ``path`` (a coordinated epoch file) becomes the new
        :attr:`checkpoint_path`, so every later write lands there too.
        """
        target = path if path is not None else self.checkpoint_path
        if target is None:
            return None
        started = time.perf_counter()
        with traced("serve.checkpoint"):
            checkpoint = Checkpoint(
                session_state=self.session.export_state(),
                offsets=dict(self.book.ingested),
                corrupt_lines=dict(self.book.corrupt),
                lines_ingested=self.book.lines_ingested,
            )
            save_checkpoint(target, checkpoint)
        registry = get_registry()
        registry.counter("serve.checkpoints").inc()
        registry.gauge("serve.checkpoint.duration_seconds").set(
            time.perf_counter() - started
        )
        self.checkpoint_path = target
        self._last_checkpoint_at = time.monotonic()
        self._dirty_since_checkpoint = False
        _log.debug("serve.checkpointed", path=str(target))
        return target

    def checkpoint_age(self) -> float:
        """Seconds since the last checkpoint (since start-up if none yet)."""
        anchor = (
            self._last_checkpoint_at
            if self._last_checkpoint_at is not None
            else self._started_at
        )
        return max(0.0, time.monotonic() - anchor)

    # ------------------------------------------------------------------ #
    # ingest (called only from the owning server's consumer/shutdown path)

    def ingest_item(self, item: IngestItem) -> None:
        registry = get_registry()
        if item.enqueued_at and registry.enabled:
            wait = time.perf_counter() - item.enqueued_at
            self._last_queue_wait = wait
            registry.histogram("serve.queue.wait.seconds").observe(wait)
            registry.gauge("serve.ingest.lag_seconds").set(wait)
        # the batch's spans attribute to the trace that produced it — the
        # ids ride entirely outside the decoded lines
        with use_trace(item.trace_id):
            with traced("serve.decode", source=item.source or ANONYMOUS_SOURCE):
                events_by_node, corrupt = decode_lines(item.lines, item.node_bind)
            if events_by_node:
                with traced("serve.ingest.batch"):
                    self.session.ingest(events_by_node)
        n = len(item.lines)
        if not n:
            # an empty flush marker (connection closed with nothing pending)
            # must not touch the book or dirty the checkpoint
            return
        source = item.source if item.source is not None else ANONYMOUS_SOURCE
        self.book.lines_ingested += n
        if item.source is not None:
            self.book.ingested[item.source] = (
                self.book.ingested.get(item.source, 0) + n
            )
        registry.counter("serve.ingest.lines").inc(n)
        if corrupt:
            self.book.corrupt[source] = self.book.corrupt.get(source, 0) + corrupt
            registry.counter("codec.corrupt_lines", source=source).inc(corrupt)
        self._dirty_since_checkpoint = True

    def drain_queue(self, queue: "asyncio.Queue[IngestItem]") -> None:
        """Ingest everything queued right now (shutdown; consumer stopped)."""
        while not queue.empty():
            self.ingest_item(queue.get_nowait())

    # ------------------------------------------------------------------ #
    # state probes

    def readiness(
        self, queue: "asyncio.Queue[IngestItem]"
    ) -> tuple[bool, dict[str, Any]]:
        """Whether ingest is drained and every flow is fresh.

        The detail dict mirrors the pipeline-health gauges so a probe (or a
        human with ``curl``) sees the same numbers Prometheus scrapes: line
        lag, the dirty set, queue depth/saturation, the last batch's queue
        wait, and checkpoint age.
        """
        lag = self.book.lag_lines()
        pending = self.session.pending
        queued = queue.qsize()
        ready = lag == 0 and pending == 0 and queued == 0
        return ready, {
            "ready": ready,
            "lag_lines": lag,
            "pending_packets": pending,
            "queued_batches": queued,
            "queue_saturation": queued / queue.maxsize,
            "lag_seconds": 0.0 if ready else self._last_queue_wait,
            "checkpoint_age_seconds": self.checkpoint_age(),
        }

    def update_gauges(self, queue: "asyncio.Queue[IngestItem]") -> None:
        registry = get_registry()
        if not registry.enabled:
            return
        lag = self.book.lag_lines()
        queued = queue.qsize()
        registry.gauge("serve.ingest.lag_lines").set(lag)
        registry.gauge("serve.ingest.pending_packets").set(self.session.pending)
        registry.gauge("serve.ingest.queue_batches").set(queued)
        registry.gauge("serve.ingest.queue_saturation").set(queued / queue.maxsize)
        if lag == 0 and queued == 0:
            # drained: the last batch's wait no longer describes the present
            self._last_queue_wait = 0.0
            registry.gauge("serve.ingest.lag_seconds").set(0.0)
        registry.gauge("serve.checkpoint.age_seconds").set(self.checkpoint_age())
        now = time.time()
        for source, seen in self.book.last_seen.items():
            registry.gauge("serve.source.staleness_seconds", source=source).set(
                max(0.0, now - seen)
            )


# ---------------------------------------------------------------------- #
# the subprocess entry point


def run_shard(spec: ShardSpec, conn: Any) -> int:
    """Run one shard server in this (spawned) process.

    ``conn`` is the router's end-of-pipe: one message is sent through it —
    the bound listener ports once the server is up, or an ``error`` payload
    if start-up failed — then it is closed.  The router drives everything
    else over the normal ingest/query protocols.
    """
    from repro.serve.server import RefillServer  # deferred: import cycle

    configure_logging(level="warning")
    # Coordination belongs to the router: a group-wide Ctrl-C must not make
    # shards race it to a graceful exit, and SIGTERM stays an abrupt kill so
    # a dying shard never writes a checkpoint newer than the manifest.
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    ledger_dir = os.environ.get(TASK_LEDGER_ENV)
    if ledger_dir:
        _install_child_task_ledger(ledger_dir)
    server = RefillServer(spec.to_config(), registry=MetricsRegistry(), shard=spec)

    def _ready(running: "RefillServer") -> None:
        conn.send(
            {
                "shard": spec.index,
                "ingest_port": running.tcp_port,
                "http_port": running.http_port,
            }
        )

    try:
        code = server.run(ready=_ready)
    except BaseException as exc:
        try:
            conn.send({"shard": spec.index, "error": repr(exc)})
        except (OSError, ValueError):
            pass
        raise
    finally:
        conn.close()
    return code


def _install_child_task_ledger(report_dir: str) -> None:
    """Mirror the test suite's task-leak check inside a shard subprocess.

    The parent-process fixture monkeypatches ``asyncio.runners`` to fail a
    test when a loop closes with undone tasks; that patch cannot reach a
    spawned child, so the child wraps the same hook itself and *writes a
    report file* the fixture collects after the cluster stops.
    """
    import asyncio.runners as runners

    real = runners._cancel_all_tasks

    def checking(loop: asyncio.AbstractEventLoop) -> None:
        leaked = [
            task for task in asyncio.all_tasks(loop) if not task.done()
        ]
        if leaked:
            report = {
                "pid": os.getpid(),
                "tasks": sorted(repr(task) for task in leaked),
            }
            path = pathlib.Path(report_dir) / f"shard-leaks-{os.getpid()}.json"
            path.write_text(json.dumps(report, indent=2, sort_keys=True))
        real(loop)

    runners._cancel_all_tasks = checking
