"""The line-framed ingest protocol (shared by server and client).

Transport is a byte stream (TCP or unix socket) carrying UTF-8 text lines.
Every line is either a **data line** — the :mod:`repro.events.codec` format,
tolerantly decoded, so garbled lines are counted and skipped instead of
killing the connection — or one of two **control lines**:

``HELLO source=<id> [node=<n>] [trace=<id>]``
    Optional, first line only.  Declares a resumable *source*.  The server
    replies ``OK offset=<k>``: the number of complete lines it has already
    accepted from that source (across restarts, via the checkpoint), and the
    client skips that many lines of its material.  ``node=<n>`` binds the
    source to one node id: data lines decoding to a different node are
    counted corrupt and dropped, mirroring the store loader's treatment of
    misfiled lines — pushing a store's shards therefore reconstructs
    byte-identically to loading the store from disk.  ``trace=<id>`` is
    optional observability metadata (a wire-safe token, see
    :mod:`repro.obs.tracing`): the server attributes this connection's
    ingest spans to that trace id and nothing else — trace metadata rides
    only in this control line, never in data lines, so tracing cannot
    perturb the ingested bytes.  Servers that predate the key reject it as
    unknown; clients omit it for compatibility by passing ``trace=None``.

``BYE``
    Polite end of stream.  The server replies ``OK accepted=<n>`` (lines
    accepted on this connection) and closes.  A plain disconnect is equally
    fine; an unterminated trailing fragment is discarded either way.

Offsets count every complete framed line — blank, corrupt or valid — so a
client's resume arithmetic is simply "skip the first *k* lines of my file".
Control recognition is deliberately narrow, because garbled data lines are
expected input on this path: ``BYE`` is honored only when it is the *entire*
line, and ``HELLO`` only as the first line of a connection.  Any other line
— including a damaged one that happens to start with a control token —
falls through to the tolerant decoder and is counted, never silently
honored as control.

A source may have at most one active connection: the server answers a
``HELLO`` for a source that already has a live pusher with ``ERR`` and
closes, because two connections handed the same resume offset would ingest
the same suffix twice.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.obs.tracing import valid_trace_id

HELLO = "HELLO"
BYE = "BYE"
OK = "OK"
ERR = "ERR"


@dataclass(frozen=True)
class Hello:
    """Parsed ``HELLO`` control line."""

    source: str
    node: Optional[int] = None
    #: Optional trace id (observability metadata only; never affects ingest).
    trace: Optional[str] = None

    def format(self) -> str:
        parts = [HELLO, f"source={self.source}"]
        if self.node is not None:
            parts.append(f"node={self.node}")
        if self.trace is not None:
            parts.append(f"trace={self.trace}")
        return " ".join(parts)


def control_word(line: str) -> Optional[str]:
    """``HELLO``/``BYE`` when ``line`` is a control line, else ``None``.

    ``BYE`` must be the entire line (modulo surrounding whitespace): a
    garbled data line that merely *starts* with the token is data, and
    must reach the tolerant decoder rather than end the stream.  ``HELLO``
    matches on its first token — it is only honored as a connection's
    first line, where the server always owes a reply (``OK`` or ``ERR``).
    """
    stripped = line.strip()
    if stripped == BYE:
        return BYE
    if stripped.split(" ", 1)[0] == HELLO:
        return HELLO
    return None


def parse_hello(line: str) -> Hello:
    """Parse a ``HELLO`` line (raises ``ValueError`` on malformed input)."""
    tokens = line.split()
    if not tokens or tokens[0] != HELLO:
        raise ValueError(f"not a HELLO line: {line!r}")
    source: Optional[str] = None
    node: Optional[int] = None
    trace: Optional[str] = None
    for token in tokens[1:]:
        key, sep, value = token.partition("=")
        if not sep or not value:
            raise ValueError(f"malformed HELLO token {token!r}")
        if key == "source":
            source = value
        elif key == "node":
            node = int(value)
        elif key == "trace":
            if not valid_trace_id(value):
                raise ValueError(f"malformed HELLO trace id {value!r}")
            trace = value
        else:
            raise ValueError(f"unknown HELLO key {key!r}")
    if source is None:
        raise ValueError("HELLO line missing source=")
    return Hello(source=source, node=node, trace=trace)


def format_ok(**fields: object) -> str:
    """``OK key=value ...`` acknowledgement line."""
    parts = [OK] + [f"{k}={v}" for k, v in fields.items()]
    return " ".join(parts)


def parse_ok(line: str) -> dict[str, str]:
    """Parse an ``OK``/``ERR`` reply into its fields (raises on ``ERR``)."""
    tokens = line.split()
    if not tokens:
        raise ValueError("empty reply line")
    if tokens[0] == ERR:
        raise ValueError(f"server error: {line!r}")
    if tokens[0] != OK:
        raise ValueError(f"unexpected reply: {line!r}")
    fields: dict[str, str] = {}
    for token in tokens[1:]:
        key, sep, value = token.partition("=")
        if sep:
            fields[key] = value
    return fields
