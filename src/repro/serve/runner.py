"""Run a :class:`RefillServer` on a background thread (tests, benchmarks).

The daemon's natural habitat is a foreground process (``refill serve``),
but tests and benchmarks want it *next to* the code exercising it.
:class:`ServerThread` runs the server's event loop on a daemon thread,
blocks until the listeners are bound (so ``tcp_port``/``http_port`` are
real), and stops it through the same graceful-shutdown path SIGTERM takes —
drain, refresh, checkpoint — so a stopped server's checkpoint is always
valid to restart from.
"""

from __future__ import annotations

import threading
from typing import Optional

from repro.obs.registry import MetricsRegistry
from repro.serve.config import ServeConfig
from repro.serve.server import RefillServer


class ServerThread:
    """A live daemon on a background thread; context-manager friendly."""

    def __init__(
        self, config: ServeConfig, *, registry: Optional[MetricsRegistry] = None
    ) -> None:
        self.server = RefillServer(config, registry=registry)
        self._thread: Optional[threading.Thread] = None
        self._started = threading.Event()
        self._error: Optional[BaseException] = None

    @property
    def tcp_port(self) -> int:
        assert self.server.tcp_port is not None, "server not started"
        return self.server.tcp_port

    @property
    def http_port(self) -> int:
        assert self.server.http_port is not None, "server not started"
        return self.server.http_port

    def start(self, timeout: float = 30.0) -> "ServerThread":
        """Start the loop; returns once the listeners are bound."""

        def _run() -> None:
            try:
                self.server.run(ready=lambda _server: self._started.set())
            except BaseException as exc:  # noqa: BLE001 - surfaced to starter
                self._error = exc
            finally:
                self._started.set()

        self._thread = threading.Thread(
            target=_run, name="refill-serve", daemon=True
        )
        self._thread.start()
        if not self._started.wait(timeout):
            raise TimeoutError("server did not start in time")
        if self._error is not None:
            raise RuntimeError("server failed to start") from self._error
        return self

    def stop(self, timeout: float = 30.0) -> None:
        """Graceful shutdown: drain, refresh, checkpoint, join."""
        if self._thread is None:
            return
        self.server.request_shutdown()
        self._thread.join(timeout)
        if self._thread.is_alive():
            raise TimeoutError("server did not stop in time")
        self._thread = None
        if self._error is not None:
            raise RuntimeError("server crashed") from self._error

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.stop()
