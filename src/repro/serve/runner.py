"""Run a serve daemon on a background thread (tests, benchmarks).

The daemon's natural habitat is a foreground process (``refill serve``),
but tests and benchmarks want it *next to* the code exercising it.
:class:`ServerThread` runs the server's event loop on a daemon thread,
blocks until the listeners are bound (so ``tcp_port``/``http_port`` are
real), and stops it through the same graceful-shutdown path SIGTERM takes —
drain, refresh, checkpoint — so a stopped server's checkpoint is always
valid to restart from.

:func:`make_server` is the single topology switch: ``shards == 1`` builds
the classic in-process :class:`RefillServer`, ``shards > 1`` the
:class:`~repro.serve.router.ClusterServer` (router + shard subprocesses).
Both expose the same embedding surface, so everything here — and the CLI —
is topology-agnostic.

External harnesses (CI scripts, the verify skill) that run ``refill serve
--print-ports`` as a subprocess parse its output with
:func:`read_printed_ports`: the flag emits exactly one flushed JSON object
per line per listener, so a harness can read lines until it has the
listener it needs instead of scraping logs.
"""

from __future__ import annotations

import json
import threading
from typing import Any, Iterable, Optional, Union

from repro.obs.registry import MetricsRegistry
from repro.serve.config import ServeConfig
from repro.serve.router import ClusterServer
from repro.serve.server import RefillServer


def make_server(
    config: ServeConfig, *, registry: Optional[MetricsRegistry] = None
) -> Union[RefillServer, ClusterServer]:
    """Build the right topology for ``config.shards``."""
    if config.shards > 1:
        return ClusterServer(config, registry=registry)
    return RefillServer(config, registry=registry)


def parse_port_line(line: str) -> Optional[dict[str, Any]]:
    """Parse one ``--print-ports`` line; ``None`` for non-listener output.

    Tolerates interleaved log lines (the daemon logs to stderr but a
    harness may merge streams): anything that is not a JSON object with a
    ``listener`` key is skipped.
    """
    stripped = line.strip()
    if not stripped.startswith("{"):
        return None
    try:
        data = json.loads(stripped)
    except ValueError:
        return None
    if not isinstance(data, dict) or "listener" not in data:
        return None
    return data


def read_printed_ports(
    lines: Iterable[str], *, expect: Optional[Iterable[str]] = None
) -> dict[str, dict[str, Any]]:
    """Collect ``--print-ports`` lines into ``{listener-name: descriptor}``.

    With ``expect``, returns as soon as every named listener has been seen
    (so a harness reading a live process's stdout does not block forever);
    raises ``ValueError`` if the stream ends first.
    """
    wanted = set(expect) if expect is not None else None
    out: dict[str, dict[str, Any]] = {}
    for line in lines:
        data = parse_port_line(line)
        if data is None:
            continue
        out[data["listener"]] = data
        if wanted is not None and wanted.issubset(out):
            return out
    if wanted is not None and not wanted.issubset(out):
        missing = sorted(wanted - set(out))
        raise ValueError(f"port stream ended before listeners {missing} appeared")
    return out


class ServerThread:
    """A live daemon on a background thread; context-manager friendly.

    Works for both topologies; with ``config.shards > 1`` the thread hosts
    the router loop and the shard subprocesses are children of this
    process.
    """

    def __init__(
        self, config: ServeConfig, *, registry: Optional[MetricsRegistry] = None
    ) -> None:
        self.server = make_server(config, registry=registry)
        self._thread: Optional[threading.Thread] = None
        self._started = threading.Event()
        self._error: Optional[BaseException] = None

    @property
    def tcp_port(self) -> int:
        assert self.server.tcp_port is not None, "server not started"
        return self.server.tcp_port

    @property
    def http_port(self) -> int:
        assert self.server.http_port is not None, "server not started"
        return self.server.http_port

    def listeners(self) -> dict[str, dict[str, Any]]:
        """Bound listeners by name — the same descriptors ``--print-ports``
        emits, minus the serialization round-trip."""
        return {entry["listener"]: entry for entry in self.server.listeners()}

    def start(self, timeout: float = 30.0) -> "ServerThread":
        """Start the loop; returns once the listeners are bound."""

        def _run() -> None:
            try:
                self.server.run(ready=lambda _server: self._started.set())
            except BaseException as exc:  # noqa: BLE001 - surfaced to starter
                self._error = exc
            finally:
                self._started.set()

        self._thread = threading.Thread(
            target=_run, name="refill-serve", daemon=True
        )
        self._thread.start()
        if not self._started.wait(timeout):
            raise TimeoutError("server did not start in time")
        if self._error is not None:
            raise RuntimeError("server failed to start") from self._error
        return self

    def stop(self, timeout: float = 30.0) -> None:
        """Graceful shutdown: drain, refresh, checkpoint, join."""
        if self._thread is None:
            return
        self.server.request_shutdown()
        self._thread.join(timeout)
        if self._thread.is_alive():
            raise TimeoutError("server did not stop in time")
        self._thread = None
        if self._error is not None:
            raise RuntimeError("server crashed") from self._error

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.stop()
