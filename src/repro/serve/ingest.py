"""Server-side ingest: connections, file tails, and the bounded queue.

Readers (one task per connection, one per tailed file) frame bytes into
complete lines with :class:`~repro.events.codec.LineAssembler` and enqueue
them as :class:`IngestItem` batches on a *bounded* :class:`asyncio.Queue`.
A full queue blocks the reader coroutine, which stops draining its socket —
kernel buffers fill, the TCP window closes, and the producer is throttled
instead of the daemon buffering unboundedly.  The single consumer (in
:mod:`repro.serve.server`) decodes batches with the shared tolerant scanner
and feeds the reconstruction session; decode work deliberately stays out of
the readers so backpressure reflects *reconstruction* capacity, not parse
capacity.

Offsets bookkeeping lives in :class:`SourceBook`: ``received`` counts lines
accepted off the wire (what a reconnecting ``HELLO`` must skip), and
``ingested`` counts lines the consumer has fed to the session (what a
checkpoint may safely record).  The gap between the two is exactly the
queue — the served ``serve.ingest.lag_lines`` gauge.
"""

from __future__ import annotations

import asyncio
import pathlib
import re
import time
from dataclasses import dataclass, field
from typing import Optional

from repro.events.codec import DecodeIssue, LineAssembler, scan_log_text
from repro.events.event import Event
from repro.events.store import read_complete_lines
from repro.obs.recorder import get_recorder
from repro.obs.structlog import get_logger
from repro.obs.tracing import current_trace_id, mint_trace_id, set_trace_id, traced
from repro.serve import protocol
from repro.serve._compat import timeout
from repro.serve.config import ServeConfig

_log = get_logger("refill.serve.ingest")

#: Source name used for connections that never sent a ``HELLO``.
ANONYMOUS_SOURCE = "(anonymous)"

#: Shard file names carry their node id; tails of such files bind to it.
_SHARD_NAME = re.compile(r"^node_(\d+)\.log$")


@dataclass
class IngestItem:
    """One queued batch of complete lines from one source."""

    source: Optional[str]
    node_bind: Optional[int]
    lines: list[str]
    #: Trace id of the connection/tail that produced the batch (metadata
    #: only — carried so the consumer's decode/ingest spans attribute to
    #: the originating push; never consulted when decoding the lines).
    trace_id: Optional[str] = None
    #: ``time.perf_counter()`` at enqueue; the consumer's dequeue observes
    #: the difference as ``serve.queue.wait.seconds``.
    enqueued_at: float = 0.0
    #: True on the last batch of a closing connection: the source is done
    #: sending, so the consumer may refresh immediately once the queue is
    #: drained instead of waiting out a ``flush_interval`` idle gap.
    flush: bool = False


@dataclass
class SourceBook:
    """Per-source line accounting (see module docstring)."""

    #: Lines ingested into the session — the checkpointable truth.
    ingested: dict[str, int] = field(default_factory=dict)
    #: Lines accepted off the wire — what HELLO reports to clients.
    received: dict[str, int] = field(default_factory=dict)
    #: Lines the tolerant scanner (or a node binding) rejected.
    corrupt: dict[str, int] = field(default_factory=dict)
    #: Total ingested lines across every source, anonymous included.
    lines_ingested: int = 0
    #: Wall time a source last delivered lines (runtime-only — never
    #: checkpointed; feeds the per-source staleness gauges).
    last_seen: dict[str, float] = field(default_factory=dict)

    def restore(self, offsets: dict[str, int], corrupt: dict[str, int],
                lines_ingested: int) -> None:
        """Adopt checkpointed offsets: received restarts at ingested."""
        self.ingested = dict(offsets)
        self.received = dict(offsets)
        self.corrupt = dict(corrupt)
        self.lines_ingested = lines_ingested

    def lag_lines(self) -> int:
        """Lines accepted but not yet ingested (the queue's content)."""
        received = sum(self.received.values())
        tracked = sum(
            n for source, n in self.ingested.items() if source in self.received
        )
        return max(0, received - tracked)


def decode_lines(
    lines: list[str], node_bind: Optional[int]
) -> tuple[dict[int, list[Event]], int]:
    """Tolerantly decode a line batch into per-node ordered events.

    Returns ``(events_by_node, corrupt_count)``.  With a node binding,
    lines decoding to a different node count as corrupt and are dropped —
    the exact rule :func:`repro.events.store.load_store` applies to
    misfiled lines, which is what keeps served flows byte-identical to a
    batch run over the same shard files.
    """
    events_by_node: dict[int, list[Event]] = {}
    corrupt = 0
    for _lineno, decoded in scan_log_text("\n".join(lines)):
        if isinstance(decoded, DecodeIssue):
            corrupt += 1
            continue
        if node_bind is not None and decoded.node != node_bind:
            corrupt += 1
            continue
        events_by_node.setdefault(decoded.node, []).append(decoded)
    return events_by_node, corrupt


def tail_node_bind(path) -> Optional[int]:
    """Node binding for a tailed file (``node_NNNN.log`` names bind)."""
    match = _SHARD_NAME.match(pathlib.Path(path).name)
    return int(match.group(1)) if match else None


class IngestHub:
    """Owns the bounded queue and the reader-side protocol."""

    def __init__(self, config: ServeConfig, book: SourceBook) -> None:
        self.config = config
        self.book = book
        self.queue: asyncio.Queue[IngestItem] = asyncio.Queue(
            maxsize=config.ingest_queue_batches
        )
        self.connections_total = 0
        #: Live connection-reader tasks; shutdown cancels them so a reader
        #: parked on a full queue (or an idle socket) cannot stall the drain.
        self.reader_tasks: set[asyncio.Task] = set()
        #: Sources with an active HELLO'd connection — one pusher at a time,
        #: or two clients handed the same offset would double-ingest.
        self._active_sources: set[str] = set()

    def cancel_readers(self) -> list[asyncio.Task]:
        """Cancel every live connection reader; returns the tasks to reap."""
        tasks = [task for task in self.reader_tasks if not task.done()]
        for task in tasks:
            task.cancel()
        return tasks

    # ------------------------------------------------------------------ #
    # connection reader

    async def handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self.reader_tasks.add(task)
        try:
            await self._read_connection(reader, writer)
        finally:
            if task is not None:
                self.reader_tasks.discard(task)

    async def _read_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """One ingest connection: optional HELLO, data lines, optional BYE.

        Any exception is contained to this connection — a hostile or broken
        peer never takes the daemon down.
        """
        self.connections_total += 1
        assembler = LineAssembler()
        source: Optional[str] = None
        node_bind: Optional[int] = None
        accepted = 0
        first_line = True
        pending: list[str] = []
        batch_limit = self.config.ingest_batch_lines
        #: Data lines not yet folded into ``book.received`` — settled before
        #: every await so concurrently-running coroutines (metrics, lag
        #: gauges, HELLO offsets) observe exactly the per-line counts.
        recv_pending = 0

        def settle() -> None:
            nonlocal recv_pending
            if recv_pending:
                if source is not None:
                    self.book.received[source] = (
                        self.book.received.get(source, 0) + recv_pending
                    )
                recv_pending = 0

        try:
            while True:
                try:
                    async with timeout(self.config.flush_interval):
                        chunk = await reader.read(65536)
                except TimeoutError:
                    # slow producer: ship what we have instead of sitting on it
                    if pending:
                        await self._enqueue(source, node_bind, pending)
                        pending = []
                    continue
                if not chunk:
                    break  # disconnect; partial tail (if any) is discarded
                with traced("serve.frame"):
                    framed = list(assembler.feed(chunk))
                if framed and source is not None:
                    # once per chunk, not per line — staleness needs chunk
                    # granularity and time.time() is hot-loop poison
                    # refill: no-cc010 -- one read per network chunk, not per line; the per-line form was the 34% regression
                    self.book.last_seen[source] = time.time()
                for line in framed:
                    # control_word strips and splits every line; a data line
                    # can only be a control word if it is the first line
                    # (HELLO) or literally contains "BYE", so skip the rest
                    if first_line or "BYE" in line:
                        word = protocol.control_word(line)
                    else:
                        word = None
                    if word == protocol.HELLO and first_line:
                        first_line = False
                        try:
                            hello = protocol.parse_hello(line)
                        except ValueError as exc:
                            writer.write(f"ERR {exc}\n".encode())
                            await writer.drain()
                            return
                        if hello.source in self._active_sources:
                            # a second pusher would get the same offset and
                            # double-ingest the suffix — refuse it outright
                            writer.write(
                                f"ERR source {hello.source} already has an"
                                " active connection\n".encode()
                            )
                            await writer.drain()
                            return
                        self._active_sources.add(hello.source)
                        # from here `source` marks ownership: the finally
                        # below releases exactly what this connection claimed
                        source, node_bind = hello.source, hello.node
                        # the trace id is task-local: this reader's spans
                        # and batches attribute to it, siblings are unaffected
                        set_trace_id(hello.trace)
                        recorder = get_recorder()
                        if recorder is not None:
                            recorder.record_event(
                                "ingest.hello",
                                trace_id=hello.trace,
                                source=source,
                                offset=self.book.received.get(source, 0),
                            )
                        offset = self.book.received.get(source, 0)
                        writer.write(
                            (protocol.format_ok(offset=offset) + "\n").encode()
                        )
                        await writer.drain()
                        continue
                    first_line = False
                    if word == protocol.BYE:
                        settle()
                        await self._enqueue(source, node_bind, pending, flush=True)
                        pending = []
                        writer.write(
                            (protocol.format_ok(accepted=accepted) + "\n").encode()
                        )
                        await writer.drain()
                        return
                    pending.append(line)
                    accepted += 1
                    recv_pending += 1
                    if len(pending) >= batch_limit:
                        settle()
                        await self._enqueue(source, node_bind, pending)
                        pending = []
                settle()
        except asyncio.CancelledError:
            # server shutdown: drop the un-enqueued tail instead of blocking
            # on the queue — the checkpoint records only *ingested* offsets,
            # so a reconnecting client is told to resend exactly these lines
            settle()
            pending = []
            raise
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # mid-stream disconnects are normal operation
        except Exception as exc:  # noqa: BLE001 - isolate hostile peers
            _log.warning("ingest.connection-error", error=str(exc))
        finally:
            settle()
            if source is not None:
                self._active_sources.discard(source)
            if pending:
                await self._enqueue(source, node_bind, pending, flush=True)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _enqueue(
        self,
        source: Optional[str],
        node_bind: Optional[int],
        lines: list[str],
        flush: bool = False,
    ) -> None:
        item = IngestItem(
            source,
            node_bind,
            list(lines),
            trace_id=current_trace_id(),
            enqueued_at=time.perf_counter(),
            flush=flush,
        )
        # the span times backpressure: a full queue parks this reader here
        with traced("serve.enqueue"):
            await self.queue.put(item)

    # ------------------------------------------------------------------ #
    # file tailing

    async def tail_file(self, path, stop: asyncio.Event) -> None:
        """Poll ``path`` for newly completed lines until ``stop`` is set.

        The source id is the file's name; offsets make restarts resume at
        the checkpointed line, and a vanished/unreadable file just pauses
        the tail (deployments rotate and re-ship logs).
        """
        path = pathlib.Path(path)
        source = path.name
        node_bind = tail_node_bind(path)
        # one trace spans the tail session — every batch this task enqueues
        # attributes to it, exactly like a pushing client's HELLO trace
        set_trace_id(mint_trace_id())
        recorder = get_recorder()
        if recorder is not None:
            recorder.record_event(
                "ingest.tail.start", trace_id=current_trace_id(), source=source
            )
        while not stop.is_set():
            offset = self.book.received.get(source, 0)
            try:
                lines = read_complete_lines(path, start_line=offset)
            except OSError:
                lines = []
            if lines:
                self.book.received[source] = offset + len(lines)
                # refill: no-cc010 -- once per poll interval when new lines landed, not per line
                self.book.last_seen[source] = time.time()
                for start in range(0, len(lines), self.config.ingest_batch_lines):
                    await self._enqueue(
                        source,
                        node_bind,
                        lines[start : start + self.config.ingest_batch_lines],
                    )
            try:
                async with timeout(self.config.tail_interval):
                    await stop.wait()
            except TimeoutError:
                continue
