"""Deterministic packet-key → shard assignment.

The cluster's one invariant-bearing decision is *which shard owns a packet*:
the router assigns live lines, the checkpoint reshard assigns restored
state, and the scatter-gather layer routes single-packet queries — all three
must agree, across processes and across interpreter restarts.  So the hash
here is plain integer arithmetic (an xorshift-multiply mix of ``(origin,
seq)``), never the built-in ``hash()``: ``PYTHONHASHSEED`` randomizes
``hash(tuple)`` per process, which would scatter one packet's evidence over
different shards between the router and a restarted worker.

Routing happens on the *raw line*, before any decode: the codec's framing
puts the packet key on the wire as a ``pkt=p<origin>.<seq>`` token, so a
compiled regex lifts the key without paying for full event decoding at the
router.  Lines with no parseable key — packetless boot events, blank lines,
corrupt bytes — all go to shard 0, again deterministically, so corrupt-line
accounting stays reproducible.
"""

from __future__ import annotations

import re

from repro.events.packet import PacketKey

#: The codec's packet token (``pkt=p<origin>.<seq>``) as it appears between
#: whitespace-delimited ``k=v`` fields of a data line.
_PKT_TOKEN = re.compile(r"(?:^|\s)pkt=p(\d+)\.(\d+)(?=\s|$)")

#: Fixed multipliers for the integer mix (fractional parts of well-known
#: constants, as in splitmix/murmur finalizers).  Arbitrary but frozen:
#: changing them invalidates every v2 checkpoint manifest's shard layout.
_MIX_A = 0x9E3779B1
_MIX_B = 0x85EBCA77
_MIX_C = 0x045D9F3B


def shard_for_key(origin: int, seq: int, shards: int) -> int:
    """The shard index owning packet ``(origin, seq)`` in an N-shard cluster."""
    if shards <= 1:
        return 0
    h = (origin * _MIX_A + seq * _MIX_B) & 0xFFFFFFFF
    h ^= h >> 16
    h = (h * _MIX_C) & 0xFFFFFFFF
    h ^= h >> 16
    return h % shards


def shard_for_packet(packet: PacketKey, shards: int) -> int:
    """:func:`shard_for_key` over a parsed :class:`PacketKey`."""
    return shard_for_key(packet.origin, packet.seq, shards)


def shard_for_line(line: str, shards: int) -> int:
    """Route one raw log line without decoding it.

    Lines carrying no parseable ``pkt=`` token (packetless events, corrupt
    input) deterministically land on shard 0.
    """
    if shards <= 1:
        return 0
    match = _PKT_TOKEN.search(line)
    if match is None:
        return 0
    return shard_for_key(int(match.group(1)), int(match.group(2)), shards)
