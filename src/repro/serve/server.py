"""The live reconstruction daemon: ingest + checkpoint + query in one loop.

:class:`RefillServer` wires the pieces together around one streaming
:class:`~repro.core.session.ReconstructionSession` over an
:class:`~repro.core.backends.IncrementalBackend`:

- **readers** (:mod:`repro.serve.ingest`) frame connection/tail bytes into
  line batches on a bounded queue;
- a single **consumer** task decodes batches with the shared tolerant
  scanner, feeds the session, refreshes dirty flows after an idle gap, and
  writes periodic checkpoints;
- the **query API** (:mod:`repro.serve.http`) answers from the same session
  (auto-refreshing, so a query never sees stale flows).

Everything runs on one event loop in one thread: session mutations happen
only inside synchronous stretches of the consumer or a handler, so state is
consistent at every ``await`` without locks.  Reconstruction is CPU work —
a query issued mid-refresh waits; per-packet flows are tiny, so stalls are
bounded by one batch, not the corpus.

Graceful shutdown (SIGTERM/SIGINT or ``POST /shutdown``): stop accepting,
cancel live connections and tails, drain the queued batches into the
session (concurrently with reaping, so a reader parked on a full queue can
always finish), refresh, checkpoint, exit.
Evidence still in a connection's socket buffer is *not* consumed — that is
what per-source offsets are for: the restarted server tells each
reconnecting source how much to skip, so nothing is lost and nothing is
reprocessed.
"""

from __future__ import annotations

import asyncio
import pathlib
import signal
import time
from typing import Any, Callable, Optional

from repro.core.backends.incremental import IncrementalBackend
from repro.core.session import ReconstructionSession
from repro.obs.recorder import FlightRecorder, use_recorder
from repro.obs.registry import MetricsRegistry, get_registry, use_registry
from repro.obs.structlog import get_logger
from repro.obs.tracing import traced, use_trace
from repro.serve._compat import timeout
from repro.serve.checkpoint import Checkpoint, load_checkpoint, save_checkpoint
from repro.serve.config import ServeConfig
from repro.serve.http import QueryApi
from repro.serve.ingest import (
    ANONYMOUS_SOURCE,
    IngestHub,
    IngestItem,
    SourceBook,
    decode_lines,
)

_log = get_logger("refill.serve")

#: Every metric family the daemon emits — the doc-coverage test in
#: ``tests/stress/test_docs.py`` holds ``docs/OBSERVABILITY.md`` to this
#: list, so a new gauge cannot ship undocumented.
SERVE_METRIC_NAMES = (
    "serve.ingest.lines",
    "serve.ingest.lag_lines",
    "serve.ingest.lag_seconds",
    "serve.ingest.pending_packets",
    "serve.ingest.queue_batches",
    "serve.ingest.queue_saturation",
    "serve.queue.wait.seconds",
    "serve.source.staleness_seconds",
    "serve.checkpoint.age_seconds",
    "serve.checkpoint.duration_seconds",
    "serve.checkpoints",
    "serve.requests",
    "serve.request.seconds",
)


class RefillServer:
    """A long-running reconstruction service over one streaming session."""

    def __init__(
        self, config: ServeConfig, *, registry: Optional[MetricsRegistry] = None
    ) -> None:
        self.config = config
        self.registry = registry if registry is not None else MetricsRegistry()
        self.recorder = FlightRecorder(config.trace_capacity)
        self.metadata = config.metadata()
        self.book = SourceBook()
        self.hub = IngestHub(config, self.book)
        self.api = QueryApi(self)
        self.session = ReconstructionSession(
            backend=IncrementalBackend(),
            delivery_node=config.resolved_delivery_node(),
            batch_size=config.batch_size,
        )
        #: Bound listener ports, published once the listeners are up.
        self.tcp_port: Optional[int] = None
        self.http_port: Optional[int] = None
        #: Whether start-up restored state from an existing checkpoint.
        self.restored = False
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._shutdown: Optional[asyncio.Event] = None
        self._dirty_since_checkpoint = False
        self._started_at = time.monotonic()
        #: ``time.monotonic()`` of the last checkpoint write (age gauge).
        self._last_checkpoint_at: Optional[float] = None
        #: Queue wait of the most recently ingested batch (lag gauge).
        self._last_queue_wait = 0.0

    # ------------------------------------------------------------------ #
    # checkpoint / restore

    def restore(self) -> bool:
        """Adopt the configured checkpoint if one exists on disk."""
        path = self.config.resolved_checkpoint()
        if path is None or not path.exists():
            return False
        checkpoint = load_checkpoint(path)
        self.session.restore_state(checkpoint.session_state)
        self.book.restore(
            checkpoint.offsets, checkpoint.corrupt_lines, checkpoint.lines_ingested
        )
        _log.info(
            "serve.restored",
            checkpoint=str(path),
            packets=len(self.session.packets()),
            sources=len(self.book.ingested),
            lines=self.book.lines_ingested,
        )
        return True

    def write_checkpoint(self) -> Optional[pathlib.Path]:
        """Write a checkpoint now; ``None`` when no path is configured."""
        path = self.config.resolved_checkpoint()
        if path is None:
            return None
        started = time.perf_counter()
        with traced("serve.checkpoint"):
            checkpoint = Checkpoint(
                session_state=self.session.export_state(),
                offsets=dict(self.book.ingested),
                corrupt_lines=dict(self.book.corrupt),
                lines_ingested=self.book.lines_ingested,
            )
            save_checkpoint(path, checkpoint)
        registry = get_registry()
        registry.counter("serve.checkpoints").inc()
        registry.gauge("serve.checkpoint.duration_seconds").set(
            time.perf_counter() - started
        )
        self._last_checkpoint_at = time.monotonic()
        self._dirty_since_checkpoint = False
        _log.debug("serve.checkpointed", path=str(path))
        return path

    # ------------------------------------------------------------------ #
    # state probes

    def readiness(self) -> tuple[bool, dict[str, Any]]:
        """Whether ingest is drained and every flow is fresh.

        The detail dict mirrors the pipeline-health gauges so a probe (or a
        human with ``curl``) sees the same numbers Prometheus scrapes: line
        lag, the dirty set, queue depth/saturation, the last batch's queue
        wait, and checkpoint age.
        """
        lag = self.book.lag_lines()
        pending = self.session.pending
        queued = self.hub.queue.qsize()
        ready = lag == 0 and pending == 0 and queued == 0
        return ready, {
            "ready": ready,
            "lag_lines": lag,
            "pending_packets": pending,
            "queued_batches": queued,
            "queue_saturation": queued / self.hub.queue.maxsize,
            "lag_seconds": 0.0 if ready else self._last_queue_wait,
            "checkpoint_age_seconds": self._checkpoint_age(),
        }

    def _checkpoint_age(self) -> float:
        """Seconds since the last checkpoint (since start-up if none yet)."""
        anchor = (
            self._last_checkpoint_at
            if self._last_checkpoint_at is not None
            else self._started_at
        )
        return max(0.0, time.monotonic() - anchor)

    def request_shutdown(self) -> None:
        """Trigger graceful shutdown; safe from any thread."""
        loop, event = self._loop, self._shutdown
        if loop is None or event is None:
            return
        loop.call_soon_threadsafe(event.set)

    # ------------------------------------------------------------------ #
    # the consumer

    def _ingest_item(self, item: IngestItem) -> None:
        registry = get_registry()
        if item.enqueued_at and registry.enabled:
            wait = time.perf_counter() - item.enqueued_at
            self._last_queue_wait = wait
            registry.histogram("serve.queue.wait.seconds").observe(wait)
            registry.gauge("serve.ingest.lag_seconds").set(wait)
        # the batch's spans attribute to the trace that produced it — the
        # ids ride entirely outside the decoded lines
        with use_trace(item.trace_id):
            with traced("serve.decode", source=item.source or ANONYMOUS_SOURCE):
                events_by_node, corrupt = decode_lines(item.lines, item.node_bind)
            if events_by_node:
                with traced("serve.ingest.batch"):
                    self.session.ingest(events_by_node)
        n = len(item.lines)
        source = item.source if item.source is not None else ANONYMOUS_SOURCE
        self.book.lines_ingested += n
        if item.source is not None:
            self.book.ingested[item.source] = (
                self.book.ingested.get(item.source, 0) + n
            )
        registry.counter("serve.ingest.lines").inc(n)
        if corrupt:
            self.book.corrupt[source] = self.book.corrupt.get(source, 0) + corrupt
            registry.counter("codec.corrupt_lines", source=source).inc(corrupt)
        self._dirty_since_checkpoint = True

    def _drain_queue(self) -> None:
        """Ingest everything queued right now (shutdown; consumer stopped)."""
        while not self.hub.queue.empty():
            self._ingest_item(self.hub.queue.get_nowait())

    def _update_gauges(self) -> None:
        registry = get_registry()
        if not registry.enabled:
            return
        lag = self.book.lag_lines()
        queued = self.hub.queue.qsize()
        registry.gauge("serve.ingest.lag_lines").set(lag)
        registry.gauge("serve.ingest.pending_packets").set(self.session.pending)
        registry.gauge("serve.ingest.queue_batches").set(queued)
        registry.gauge("serve.ingest.queue_saturation").set(
            queued / self.hub.queue.maxsize
        )
        if lag == 0 and queued == 0:
            # drained: the last batch's wait no longer describes the present
            self._last_queue_wait = 0.0
            registry.gauge("serve.ingest.lag_seconds").set(0.0)
        registry.gauge("serve.checkpoint.age_seconds").set(self._checkpoint_age())
        now = time.time()
        for source, seen in self.book.last_seen.items():
            registry.gauge("serve.source.staleness_seconds", source=source).set(
                max(0.0, now - seen)
            )

    async def _consume(self) -> None:
        """Single writer of session state: dequeue, decode, ingest.

        On an idle gap (``flush_interval`` with nothing queued) dirty flows
        are refreshed so queries and the readiness probe see fresh results;
        periodic checkpoints piggyback on the same cadence.
        """
        interval = self.config.checkpoint_interval
        next_checkpoint = time.monotonic() + interval if interval > 0 else None
        while True:
            try:
                # timeout() (asyncio.timeout / its 3.10 backport), not
                # wait_for: wait_for wraps the get in a child task, and a
                # cancellation arriving while it reaps that child on timeout
                # is lost (bpo-42130 family) — the shutdown path then
                # deadlocks awaiting a task that never finishes
                async with timeout(self.config.flush_interval):
                    item = await self.hub.queue.get()
            except TimeoutError:
                if self.session.pending:
                    with traced("serve.refresh", pending=self.session.pending):
                        self.session.refresh()
                self._update_gauges()
            else:
                self._ingest_item(item)
                self.hub.queue.task_done()
                self._update_gauges()
            if (
                next_checkpoint is not None
                and self._dirty_since_checkpoint
                and time.monotonic() >= next_checkpoint
            ):
                self.write_checkpoint()
                next_checkpoint = time.monotonic() + interval

    # ------------------------------------------------------------------ #
    # lifecycle

    async def _main(self, ready: Optional[Callable[["RefillServer"], None]]) -> None:
        loop = asyncio.get_running_loop()
        self._loop = loop
        self._shutdown = asyncio.Event()
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(sig, self._shutdown.set)
            except (NotImplementedError, RuntimeError, ValueError):
                pass  # non-main thread or unsupported platform
        self.restored = self.restore()

        servers: list[asyncio.AbstractServer] = []
        tcp = await asyncio.start_server(
            self.hub.handle_connection, self.config.host, self.config.port
        )
        servers.append(tcp)
        self.tcp_port = tcp.sockets[0].getsockname()[1]
        if self.config.unix_socket is not None:
            servers.append(
                await asyncio.start_unix_server(
                    self.hub.handle_connection, path=self.config.unix_socket
                )
            )
        http = await asyncio.start_server(
            self.api.handle_connection, self.config.http_host, self.config.http_port
        )
        servers.append(http)
        self.http_port = http.sockets[0].getsockname()[1]

        consumer = asyncio.create_task(self._consume())
        tails = [
            asyncio.create_task(self.hub.tail_file(path, self._shutdown))
            for path in self.config.tail
        ]
        _log.info(
            "serve.listening",
            ingest_port=self.tcp_port,
            http_port=self.http_port,
            unix_socket=self.config.unix_socket or "-",
            tails=len(tails),
            restored=self.restored,
        )
        if ready is not None:
            ready(self)

        await self._shutdown.wait()
        _log.info("serve.draining", queued=self.hub.queue.qsize())
        for server in servers:
            server.close()
        # Cancel every producer and the consumer *before* reaping: a reader
        # parked in _enqueue() on a full queue can only finish once cancelled
        # or drained, and from Python 3.12.1 wait_closed() waits for
        # connection handlers — an idle connection sitting in its read
        # timeout would stall shutdown forever.
        consumer.cancel()
        for tail in tails:
            tail.cancel()
        workers = [
            consumer,
            *tails,
            *self.hub.cancel_readers(),
            *self.api.cancel_handlers(),
        ]
        pending_workers = set(workers)
        while pending_workers:
            # drain concurrently with the reap so a producer caught mid-put
            # always finds a free slot to complete its cancellation through
            _done, pending_workers = await asyncio.wait(
                pending_workers, timeout=0.05
            )
            self._drain_queue()
        for worker in workers:
            if not worker.cancelled() and worker.exception() is not None:
                _log.warning(
                    "serve.worker-error", error=str(worker.exception())
                )
        for server in servers:
            await server.wait_closed()
        # whatever the readers got onto the queue before they stopped
        self._drain_queue()
        if self.session.pending:
            with traced("serve.refresh", pending=self.session.pending):
                self.session.refresh()
        self._update_gauges()
        written = self.write_checkpoint()
        if self.config.unix_socket is not None:
            # refill: no-cc001 -- one-shot unlink on the shutdown path, after serving stopped
            pathlib.Path(self.config.unix_socket).unlink(missing_ok=True)
        self._write_final_outputs()
        _log.info(
            "serve.stopped",
            packets=len(self.session.packets()),
            lines=self.book.lines_ingested,
            checkpoint=str(written) if written else "-",
        )

    def _write_final_outputs(self) -> None:
        """Dump ``--metrics-out`` / ``--trace-out`` on graceful shutdown.

        The metrics file follows the ``refill analyze --metrics-out``
        contract exactly (sorted-key JSON snapshot plus trailing newline);
        the trace file is the flight recorder as JSON Lines, oldest first.
        """
        if self.config.metrics_out is not None:
            path = pathlib.Path(self.config.metrics_out)
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(self.registry.snapshot().to_json_str() + "\n")
            _log.info("serve.metrics-written", path=str(path))
        if self.config.trace_out is not None:
            count = self.recorder.dump_jsonl(self.config.trace_out)
            _log.info(
                "serve.trace-written", path=self.config.trace_out, records=count
            )

    def run(self, ready: Optional[Callable[["RefillServer"], None]] = None) -> int:
        """Blocking entry point: serve until SIGTERM/SIGINT or ``/shutdown``.

        All instrumentation of the daemon (and of the reconstruction it
        hosts) lands in ``self.registry`` — what ``GET /metrics`` serves —
        and every completed traced span lands in ``self.recorder`` — what
        ``GET /debug/trace`` serves.  Both contexts are installed before the
        loop starts, so every task the daemon spawns inherits them.
        """
        with use_registry(self.registry), use_recorder(self.recorder):
            asyncio.run(self._main(ready))
        return 0
