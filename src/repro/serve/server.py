"""The live reconstruction daemon: ingest + checkpoint + query in one loop.

:class:`RefillServer` wires the pieces together around one
:class:`~repro.serve.shard.ShardWorker` (the session/book/checkpoint core):

- **readers** (:mod:`repro.serve.ingest`) frame connection/tail bytes into
  line batches on a bounded queue;
- a single **consumer** task decodes batches with the shared tolerant
  scanner, feeds the worker's session, refreshes dirty flows after an idle
  gap, and writes periodic checkpoints;
- the **query API** (:mod:`repro.serve.http`) answers from the same session
  (auto-refreshing, so a query never sees stale flows).

Everything runs on one event loop in one thread: session mutations happen
only inside synchronous stretches of the consumer or a handler, so state is
consistent at every ``await`` without locks.  Reconstruction is CPU work —
a query issued mid-refresh waits; per-packet flows are tiny, so stalls are
bounded by one batch, not the corpus.

The same class is both deployment shapes' workhorse: the standalone
``refill serve`` daemon (``shard=None``), and — constructed by
:func:`repro.serve.shard.run_shard` with a :class:`ShardSpec` — one worker
subprocess of the sharded cluster (:mod:`repro.serve.router`).  A shard
instance differs only in coordination: it installs no signal handlers (the
router owns shutdown) and honors ``POST /checkpoint?epoch=N`` by writing
the epoch-stamped per-shard file instead of a standalone checkpoint.

Graceful shutdown (SIGTERM/SIGINT or ``POST /shutdown``): stop accepting,
cancel live connections and tails, drain the queued batches into the
session (concurrently with reaping, so a reader parked on a full queue can
always finish), refresh, checkpoint, exit.
Evidence still in a connection's socket buffer is *not* consumed — that is
what per-source offsets are for: the restarted server tells each
reconnecting source how much to skip, so nothing is lost and nothing is
reprocessed.
"""

from __future__ import annotations

import asyncio
import pathlib
import signal
import time
from typing import Any, Callable, Optional

from repro.core.serialize import (
    dumps_canonical,
    flow_to_dict,
    flows_to_json,
    report_to_dict,
    reports_to_json,
)
from repro.events.packet import PacketKey
from repro.obs.recorder import FlightRecorder, use_recorder
from repro.obs.registry import (
    MetricsRegistry,
    MetricsSnapshot,
    get_registry,
    use_registry,
)
from repro.obs.structlog import get_logger
from repro.obs.tracing import traced
from repro.serve._compat import install_streams_cancel_filter, timeout
from repro.serve.config import ServeConfig
from repro.serve.http import QueryApi, build_summary
from repro.serve.ingest import IngestHub, IngestItem, SourceBook
from repro.serve.shard import ShardSpec, ShardWorker

_log = get_logger("refill.serve")

#: Every metric family the daemon emits — the doc-coverage test in
#: ``tests/stress/test_docs.py`` holds ``docs/OBSERVABILITY.md`` to this
#: list, so a new gauge cannot ship undocumented.
SERVE_METRIC_NAMES = (
    "serve.ingest.lines",
    "serve.ingest.lag_lines",
    "serve.ingest.lag_seconds",
    "serve.ingest.pending_packets",
    "serve.ingest.queue_batches",
    "serve.ingest.queue_saturation",
    "serve.queue.wait.seconds",
    "serve.source.staleness_seconds",
    "serve.checkpoint.age_seconds",
    "serve.checkpoint.duration_seconds",
    "serve.checkpoints",
    "serve.requests",
    "serve.request.seconds",
    "serve.shard.up",
    "serve.shard.lines",
)


class RefillServer:
    """A long-running reconstruction service over one streaming session."""

    def __init__(
        self,
        config: ServeConfig,
        *,
        registry: Optional[MetricsRegistry] = None,
        shard: Optional[ShardSpec] = None,
    ) -> None:
        self.config = config
        self.registry = registry if registry is not None else MetricsRegistry()
        self.recorder = FlightRecorder(config.trace_capacity)
        self.metadata = config.metadata()
        #: ``None`` for the standalone daemon; the spec when this server is
        #: one subprocess worker of a sharded cluster.
        self.shard = shard
        self.worker = ShardWorker(config)
        self.hub = IngestHub(config, self.worker.book)
        self.api = QueryApi(self)
        #: Bound listener ports, published once the listeners are up.
        self.tcp_port: Optional[int] = None
        self.http_port: Optional[int] = None
        #: Whether start-up restored state from an existing checkpoint.
        self.restored = False
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._shutdown: Optional[asyncio.Event] = None

    # ------------------------------------------------------------------ #
    # the worker's state, re-exported (tests and embedders use these)

    @property
    def session(self):
        return self.worker.session

    @property
    def book(self) -> SourceBook:
        return self.worker.book

    def restore(self) -> bool:
        """Adopt the configured checkpoint if one exists on disk."""
        return self.worker.restore()

    def write_checkpoint(self) -> Optional[pathlib.Path]:
        """Write a checkpoint now; ``None`` when no path is configured."""
        return self.worker.write_checkpoint()

    def readiness(self) -> tuple[bool, dict[str, Any]]:
        """Whether ingest is drained and every flow is fresh."""
        return self.worker.readiness(self.hub.queue)

    def listeners(self) -> list[dict[str, Any]]:
        """One descriptor per bound listener (the ``--print-ports`` shape).

        Each entry carries a unique ``listener`` name plus enough to connect
        (``port`` for TCP, ``path`` for unix sockets); harnesses parse the
        emitted lines into a name-keyed dict without positional guessing.
        """
        out: list[dict[str, Any]] = [
            {
                "listener": "ingest",
                "transport": "tcp",
                "host": self.config.host,
                "port": self.tcp_port,
            }
        ]
        if self.config.unix_socket is not None:
            out.append(
                {
                    "listener": "ingest-unix",
                    "transport": "unix",
                    "path": self.config.unix_socket,
                }
            )
        out.append(
            {
                "listener": "http",
                "transport": "tcp",
                "host": self.config.http_host,
                "port": self.http_port,
            }
        )
        return out

    def request_shutdown(self) -> None:
        """Trigger graceful shutdown; safe from any thread."""
        loop, event = self._loop, self._shutdown
        if loop is None or event is None:
            return
        loop.call_soon_threadsafe(event.set)

    # ------------------------------------------------------------------ #
    # the query surface (async so the cluster can fan out; here the answers
    # are local and immediate)

    async def api_readiness(self) -> tuple[bool, dict[str, Any]]:
        return self.readiness()

    async def api_packets_body(self) -> str:
        return dumps_canonical(
            {"packets": [str(p) for p in self.session.packets()]}
        )

    async def api_flows_body(self) -> str:
        return dumps_canonical(flows_to_json(self.session.flows()))

    async def api_reports_body(self) -> str:
        return dumps_canonical(reports_to_json(self.session.reports()))

    async def api_packet_body(self, kind: str, packet: PacketKey) -> tuple[int, str]:
        if kind == "flow":
            flow = self.session.flow(packet)
            if flow is None:
                return 404, dumps_canonical({"error": f"unknown packet {packet}"})
            return 200, dumps_canonical(flow_to_dict(flow))
        report = self.session.reports().get(packet)
        if report is None:
            return 404, dumps_canonical({"error": f"unknown packet {packet}"})
        return 200, dumps_canonical(report_to_dict(report))

    async def api_summary(self) -> dict[str, Any]:
        return build_summary(
            self.session.reports(),
            pending=self.session.pending,
            batches_ingested=self.session.batches_ingested,
            lines_ingested=self.book.lines_ingested,
            sources=len(self.book.ingested),
            metadata=self.metadata,
        )

    async def api_offsets(self) -> dict[str, Any]:
        book = self.book
        return {
            "offsets": dict(sorted(book.ingested.items())),
            "received": dict(sorted(book.received.items())),
            "corrupt_lines": dict(sorted(book.corrupt.items())),
            "lines_ingested": book.lines_ingested,
        }

    async def api_metrics_snapshot(self) -> MetricsSnapshot:
        return get_registry().snapshot()

    async def api_checkpoint(self, epoch: Optional[int]) -> Optional[dict[str, Any]]:
        """``POST /checkpoint``: write now; epoch targets a coordinated file.

        ``epoch`` is the cluster protocol — only a shard worker accepts it,
        writing the epoch-stamped file the router is about to commit via the
        manifest swap.  Returns the response payload, ``None`` when no
        checkpoint path is configured (→ 409).
        """
        if epoch is not None:
            if self.shard is None:
                raise ValueError("epoch checkpoints need a shard worker")
            written = self.worker.write_checkpoint(self.shard.epoch_path(epoch))
        else:
            written = self.worker.write_checkpoint()
        if written is None:
            return None
        return {"path": str(written), "packets": len(self.session.packets())}

    # ------------------------------------------------------------------ #
    # the consumer

    def _ingest_item(self, item: IngestItem) -> None:
        self.worker.ingest_item(item)

    def _drain_queue(self) -> None:
        """Ingest everything queued right now (shutdown; consumer stopped)."""
        self.worker.drain_queue(self.hub.queue)

    def _update_gauges(self) -> None:
        self.worker.update_gauges(self.hub.queue)

    async def _consume(self) -> None:
        """Single writer of session state: dequeue, decode, ingest.

        On an idle gap (``flush_interval`` with nothing queued) dirty flows
        are refreshed so queries and the readiness probe see fresh results;
        periodic checkpoints piggyback on the same cadence.
        """
        interval = self.config.checkpoint_interval
        next_checkpoint = time.monotonic() + interval if interval > 0 else None
        while True:
            try:
                # timeout() (asyncio.timeout / its 3.10 backport), not
                # wait_for: wait_for wraps the get in a child task, and a
                # cancellation arriving while it reaps that child on timeout
                # is lost (bpo-42130 family) — the shutdown path then
                # deadlocks awaiting a task that never finishes
                async with timeout(self.config.flush_interval):
                    item = await self.hub.queue.get()
            except TimeoutError:
                if self.session.pending:
                    with traced("serve.refresh", pending=self.session.pending):
                        self.session.refresh()
                self._update_gauges()
            else:
                self._ingest_item(item)
                self.hub.queue.task_done()
                if (
                    item.flush
                    and self.hub.queue.empty()
                    and self.session.pending
                ):
                    # last batch of a closed connection and nothing else
                    # queued: refresh now instead of waiting out an idle gap
                    with traced("serve.refresh", pending=self.session.pending):
                        self.session.refresh()
                self._update_gauges()
            if (
                next_checkpoint is not None
                and self.worker._dirty_since_checkpoint
                and time.monotonic() >= next_checkpoint
            ):
                self.write_checkpoint()
                next_checkpoint = time.monotonic() + interval

    # ------------------------------------------------------------------ #
    # lifecycle

    async def _main(self, ready: Optional[Callable[["RefillServer"], None]]) -> None:
        loop = asyncio.get_running_loop()
        self._loop = loop
        install_streams_cancel_filter(loop)
        self._shutdown = asyncio.Event()
        if self.shard is None:
            # a shard subprocess takes orders from the router, not the tty
            for sig in (signal.SIGTERM, signal.SIGINT):
                try:
                    loop.add_signal_handler(sig, self._shutdown.set)
                except (NotImplementedError, RuntimeError, ValueError):
                    pass  # non-main thread or unsupported platform
        self.restored = self.restore()

        servers: list[asyncio.AbstractServer] = []
        tcp = await asyncio.start_server(
            self.hub.handle_connection, self.config.host, self.config.port
        )
        servers.append(tcp)
        self.tcp_port = tcp.sockets[0].getsockname()[1]
        if self.config.unix_socket is not None:
            servers.append(
                await asyncio.start_unix_server(
                    self.hub.handle_connection, path=self.config.unix_socket
                )
            )
        http = await asyncio.start_server(
            self.api.handle_connection, self.config.http_host, self.config.http_port
        )
        servers.append(http)
        self.http_port = http.sockets[0].getsockname()[1]

        consumer = asyncio.create_task(self._consume())
        tails = [
            asyncio.create_task(self.hub.tail_file(path, self._shutdown))
            for path in self.config.tail
        ]
        _log.info(
            "serve.listening",
            ingest_port=self.tcp_port,
            http_port=self.http_port,
            unix_socket=self.config.unix_socket or "-",
            tails=len(tails),
            restored=self.restored,
            shard=self.shard.index if self.shard is not None else "-",
        )
        if ready is not None:
            ready(self)

        await self._shutdown.wait()
        _log.info("serve.draining", queued=self.hub.queue.qsize())
        for server in servers:
            server.close()
        # Cancel every producer and the consumer *before* reaping: a reader
        # parked in _enqueue() on a full queue can only finish once cancelled
        # or drained, and from Python 3.12.1 wait_closed() waits for
        # connection handlers — an idle connection sitting in its read
        # timeout would stall shutdown forever.
        consumer.cancel()
        for tail in tails:
            tail.cancel()
        workers = [
            consumer,
            *tails,
            *self.hub.cancel_readers(),
            *self.api.cancel_handlers(),
        ]
        pending_workers = set(workers)
        while pending_workers:
            # drain concurrently with the reap so a producer caught mid-put
            # always finds a free slot to complete its cancellation through
            _done, pending_workers = await asyncio.wait(
                pending_workers, timeout=0.05
            )
            self._drain_queue()
        for worker in workers:
            if not worker.cancelled() and worker.exception() is not None:
                _log.warning(
                    "serve.worker-error", error=str(worker.exception())
                )
        for server in servers:
            await server.wait_closed()
        # whatever the readers got onto the queue before they stopped
        self._drain_queue()
        if self.session.pending:
            with traced("serve.refresh", pending=self.session.pending):
                self.session.refresh()
        self._update_gauges()
        written = self.write_checkpoint()
        if self.config.unix_socket is not None:
            # refill: no-cc001 -- one-shot unlink on the shutdown path, after serving stopped
            pathlib.Path(self.config.unix_socket).unlink(missing_ok=True)
        self._write_final_outputs()
        _log.info(
            "serve.stopped",
            packets=len(self.session.packets()),
            lines=self.book.lines_ingested,
            checkpoint=str(written) if written else "-",
        )

    def _write_final_outputs(self) -> None:
        """Dump ``--metrics-out`` / ``--trace-out`` on graceful shutdown.

        The metrics file follows the ``refill analyze --metrics-out``
        contract exactly (sorted-key JSON snapshot plus trailing newline);
        the trace file is the flight recorder as JSON Lines, oldest first.
        """
        if self.config.metrics_out is not None:
            path = pathlib.Path(self.config.metrics_out)
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(self.registry.snapshot().to_json_str() + "\n")
            _log.info("serve.metrics-written", path=str(path))
        if self.config.trace_out is not None:
            count = self.recorder.dump_jsonl(self.config.trace_out)
            _log.info(
                "serve.trace-written", path=self.config.trace_out, records=count
            )

    def run(self, ready: Optional[Callable[["RefillServer"], None]] = None) -> int:
        """Blocking entry point: serve until SIGTERM/SIGINT or ``/shutdown``.

        All instrumentation of the daemon (and of the reconstruction it
        hosts) lands in ``self.registry`` — what ``GET /metrics`` serves —
        and every completed traced span lands in ``self.recorder`` — what
        ``GET /debug/trace`` serves.  Both contexts are installed before the
        loop starts, so every task the daemon spawns inherits them.
        """
        with use_registry(self.registry), use_recorder(self.recorder):
            asyncio.run(self._main(ready))
        return 0
