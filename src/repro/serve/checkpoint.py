"""Checkpoint/restore of a live reconstruction daemon.

A checkpoint is one JSON file pairing the session's resumable state
(:meth:`ReconstructionSession.export_state` — backend accumulations, flow
and report caches) with the daemon's *per-source ingest offsets*.  The two
travel together because they are only meaningful together: the offsets say
which lines are already inside the session, so a restarted server can tell
every reconnecting source exactly how much to skip and never reprocesses
the corpus.

Writes are atomic (temp file + ``os.replace`` in the same directory), so a
crash mid-checkpoint leaves the previous checkpoint intact; a restart never
sees a torn file.
"""

from __future__ import annotations

import json
import os
import pathlib
from dataclasses import dataclass, field
from typing import Any, Mapping

#: Format version of the checkpoint file (bump on incompatible change).
CHECKPOINT_VERSION = 1


@dataclass(frozen=True)
class Checkpoint:
    """Everything a restarted server needs to resume ingest."""

    #: :meth:`ReconstructionSession.export_state` payload.
    session_state: dict[str, Any]
    #: Per-source count of complete lines already ingested into the session.
    offsets: dict[str, int] = field(default_factory=dict)
    #: Per-source count of lines the tolerant scanner rejected.
    corrupt_lines: dict[str, int] = field(default_factory=dict)
    #: Total lines ingested across all sources (anonymous ones included).
    lines_ingested: int = 0

    def to_json(self) -> dict[str, Any]:
        return {
            "version": CHECKPOINT_VERSION,
            "session": self.session_state,
            "offsets": {k: self.offsets[k] for k in sorted(self.offsets)},
            "corrupt_lines": {
                k: self.corrupt_lines[k] for k in sorted(self.corrupt_lines)
            },
            "lines_ingested": self.lines_ingested,
        }

    @classmethod
    def from_json(cls, data: Mapping[str, Any]) -> "Checkpoint":
        version = data.get("version")
        if version != CHECKPOINT_VERSION:
            raise ValueError(f"unsupported checkpoint version {version!r}")
        return cls(
            session_state=dict(data["session"]),
            offsets={str(k): int(v) for k, v in data.get("offsets", {}).items()},
            corrupt_lines={
                str(k): int(v) for k, v in data.get("corrupt_lines", {}).items()
            },
            lines_ingested=int(data.get("lines_ingested", 0)),
        )


def save_checkpoint(path, checkpoint: Checkpoint) -> pathlib.Path:
    """Atomically write ``checkpoint`` to ``path``; returns the path."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(json.dumps(checkpoint.to_json(), sort_keys=True) + "\n")
    os.replace(tmp, path)
    return path


def load_checkpoint(path) -> Checkpoint:
    """Read a checkpoint file (raises on missing/torn/unversioned files)."""
    return Checkpoint.from_json(json.loads(pathlib.Path(path).read_text()))
