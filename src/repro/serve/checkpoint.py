"""Checkpoint/restore of a live reconstruction daemon (single and sharded).

A **v1 checkpoint** is one JSON file pairing the session's resumable state
(:meth:`ReconstructionSession.export_state` — backend accumulations, flow
and report caches) with the daemon's *per-source ingest offsets*.  The two
travel together because they are only meaningful together: the offsets say
which lines are already inside the session, so a restarted server can tell
every reconnecting source exactly how much to skip and never reprocesses
the corpus.

A **v2 cluster checkpoint** is a *manifest* (written at the configured
checkpoint path) plus one v1-format file per shard next to it.  The shard
files are stamped with an **epoch**: a coordinated checkpoint first has
every shard write ``<stem>.shard<k>.e<epoch>.json``, and only then replaces
the manifest — the manifest swap is the commit point.  A crash between the
two leaves the previous manifest pointing at the previous epoch's intact
files; a restart never sees a torn or half-advanced cluster state.  Old
epochs are garbage-collected after the swap.

Both layers write atomically (temp file + ``os.replace`` in the same
directory).  :func:`reshard_checkpoint` migrates a v1 file into N per-shard
checkpoints — per-packet state is split by the cluster hash, while the
per-source offsets (not per-packet partitionable) are assigned wholesale to
shard 0; cluster consumers only ever read per-source sums across shards, so
the attribution is sound.  :func:`merge_checkpoints` is the inverse, used
by the offline rebalancing path (merge N shards to one v1 file, restart
with a different ``--shards``).
"""

from __future__ import annotations

import json
import os
import pathlib
from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

#: Format version of a single-shard checkpoint file.
CHECKPOINT_VERSION = 1

#: Format version of a cluster checkpoint manifest.
MANIFEST_VERSION = 2


@dataclass(frozen=True)
class Checkpoint:
    """Everything a restarted server needs to resume ingest."""

    #: :meth:`ReconstructionSession.export_state` payload.
    session_state: dict[str, Any]
    #: Per-source count of complete lines already ingested into the session.
    offsets: dict[str, int] = field(default_factory=dict)
    #: Per-source count of lines the tolerant scanner rejected.
    corrupt_lines: dict[str, int] = field(default_factory=dict)
    #: Total lines ingested across all sources (anonymous ones included).
    lines_ingested: int = 0

    def to_json(self) -> dict[str, Any]:
        return {
            "version": CHECKPOINT_VERSION,
            "session": self.session_state,
            "offsets": {k: self.offsets[k] for k in sorted(self.offsets)},
            "corrupt_lines": {
                k: self.corrupt_lines[k] for k in sorted(self.corrupt_lines)
            },
            "lines_ingested": self.lines_ingested,
        }

    @classmethod
    def from_json(cls, data: Mapping[str, Any]) -> "Checkpoint":
        version = data.get("version")
        if version == MANIFEST_VERSION:
            shards = data.get("shards", "N")
            raise ValueError(
                f"checkpoint version {version!r} is a cluster manifest "
                f"(shards={shards}); start the daemon with --shards {shards}"
            )
        if version != CHECKPOINT_VERSION:
            raise ValueError(f"unsupported checkpoint version {version!r}")
        return cls(
            session_state=dict(data["session"]),
            offsets={str(k): int(v) for k, v in data.get("offsets", {}).items()},
            corrupt_lines={
                str(k): int(v) for k, v in data.get("corrupt_lines", {}).items()
            },
            lines_ingested=int(data.get("lines_ingested", 0)),
        )


def save_checkpoint(path, checkpoint: Checkpoint) -> pathlib.Path:
    """Atomically write ``checkpoint`` to ``path``; returns the path."""
    path = pathlib.Path(path)
    return _atomic_write(path, checkpoint.to_json())


def load_checkpoint(path) -> Checkpoint:
    """Read a checkpoint file (raises on missing/torn/unversioned files)."""
    return Checkpoint.from_json(json.loads(pathlib.Path(path).read_text()))


# ---------------------------------------------------------------------- #
# cluster manifests (v2)


class ShardMismatchError(ValueError):
    """An existing manifest disagrees with the requested ``--shards``."""


@dataclass(frozen=True)
class ClusterManifest:
    """The cluster-level half of a v2 checkpoint: who owns what, and where.

    Holds the *router's* books (per-source resume offsets, total routed
    lines) and names the epoch's per-shard checkpoint files.  Per-shard
    session state lives in those files; the invariant is that the sum of
    the shard files' ``lines_ingested`` equals :attr:`lines_routed`.
    """

    #: Cluster width the shard files were written for.
    shards: int
    #: Monotonic coordinated-checkpoint counter; stamps the shard filenames.
    epoch: int
    #: Per-source resume offsets, as the router hands them to ``HELLO``.
    offsets: dict[str, int] = field(default_factory=dict)
    #: Total lines routed across all sources (anonymous ones included).
    lines_routed: int = 0
    #: Shard checkpoint filenames (relative to the manifest's directory),
    #: index ``k`` belonging to shard ``k``.
    shard_files: tuple[str, ...] = ()

    def to_json(self) -> dict[str, Any]:
        return {
            "version": MANIFEST_VERSION,
            "shards": self.shards,
            "epoch": self.epoch,
            "offsets": {k: self.offsets[k] for k in sorted(self.offsets)},
            "lines_routed": self.lines_routed,
            "shard_files": list(self.shard_files),
        }

    @classmethod
    def from_json(cls, data: Mapping[str, Any]) -> "ClusterManifest":
        version = data.get("version")
        if version == CHECKPOINT_VERSION:
            raise ValueError(
                "this is a single-shard (v1) checkpoint, not a cluster "
                "manifest; the cluster migrates it automatically at startup"
            )
        if version != MANIFEST_VERSION:
            raise ValueError(f"unsupported manifest version {version!r}")
        return cls(
            shards=int(data["shards"]),
            epoch=int(data["epoch"]),
            offsets={str(k): int(v) for k, v in data.get("offsets", {}).items()},
            lines_routed=int(data.get("lines_routed", 0)),
            shard_files=tuple(str(f) for f in data.get("shard_files", ())),
        )


def save_manifest(path, manifest: ClusterManifest) -> pathlib.Path:
    """Atomically write ``manifest`` to ``path`` — the v2 commit point."""
    return _atomic_write(pathlib.Path(path), manifest.to_json())


def load_manifest(path) -> ClusterManifest:
    """Read a cluster manifest (raises on v1 files and torn JSON)."""
    return ClusterManifest.from_json(json.loads(pathlib.Path(path).read_text()))


def shard_checkpoint_path(manifest_path, shard: int, epoch: int) -> pathlib.Path:
    """Where shard ``shard``'s epoch-``epoch`` checkpoint lives on disk.

    ``cluster.json`` → ``cluster.shard03.e7.json``, always in the manifest's
    directory so the whole cluster state moves as one directory.
    """
    manifest_path = pathlib.Path(manifest_path)
    stem = manifest_path.name
    if stem.endswith(".json"):
        stem = stem[: -len(".json")]
    return manifest_path.with_name(f"{stem}.shard{shard:02d}.e{epoch}.json")


def gc_shard_files(manifest_path, manifest: ClusterManifest) -> list[pathlib.Path]:
    """Delete shard files from epochs other than ``manifest.epoch``.

    Called only after the manifest swap committed the new epoch; returns the
    removed paths.  Unknown files (not matching the shard-file pattern) are
    never touched.
    """
    manifest_path = pathlib.Path(manifest_path)
    stem = manifest_path.name
    if stem.endswith(".json"):
        stem = stem[: -len(".json")]
    keep = set(manifest.shard_files)
    removed = []
    for candidate in sorted(manifest_path.parent.glob(f"{stem}.shard*.e*.json")):
        if candidate.name not in keep:
            candidate.unlink(missing_ok=True)
            removed.append(candidate)
    return removed


# ---------------------------------------------------------------------- #
# v1 ⇄ v2 migration


def reshard_checkpoint(
    checkpoint: Checkpoint, shards: int
) -> list[Checkpoint]:
    """Split a v1 checkpoint into ``shards`` per-shard checkpoints.

    Session state is partitioned by the cluster hash
    (:func:`repro.serve.sharding.shard_for_packet`), matching where the
    router would have sent each packet's lines.  The per-source offsets and
    line counts are *not* per-packet partitionable, so they go wholesale to
    shard 0 — cluster consumers only read per-source sums over all shards,
    for which the attribution is exact.
    """
    from repro.core.session import split_session_state
    from repro.serve.sharding import shard_for_packet

    states = split_session_state(
        checkpoint.session_state,
        shards,
        lambda packet: shard_for_packet(packet, shards),
    )
    out = [Checkpoint(session_state=states[0], offsets=dict(checkpoint.offsets),
                      corrupt_lines=dict(checkpoint.corrupt_lines),
                      lines_ingested=checkpoint.lines_ingested)]
    out.extend(Checkpoint(session_state=state) for state in states[1:])
    return out


def merge_checkpoints(checkpoints: Sequence[Checkpoint]) -> Checkpoint:
    """Fold per-shard checkpoints back into one v1 checkpoint.

    Inverse of :func:`reshard_checkpoint`; per-source counts are summed, so
    it also accepts shard files written by a live cluster (where every
    shard carries its own share of each source).
    """
    from repro.core.session import merge_session_states

    offsets: dict[str, int] = {}
    corrupt: dict[str, int] = {}
    lines = 0
    for cp in checkpoints:
        for source, count in cp.offsets.items():
            offsets[source] = offsets.get(source, 0) + count
        for source, count in cp.corrupt_lines.items():
            corrupt[source] = corrupt.get(source, 0) + count
        lines += cp.lines_ingested
    return Checkpoint(
        session_state=merge_session_states([cp.session_state for cp in checkpoints]),
        offsets=offsets,
        corrupt_lines=corrupt,
        lines_ingested=lines,
    )


def reshard_manifest(path, new_shards: int) -> ClusterManifest:
    """Offline rebalancing: rewrite a cluster checkpoint for a new width.

    Loads the manifest (or a v1 checkpoint) at ``path``, merges every shard
    file, re-splits for ``new_shards``, writes the new epoch's shard files,
    and commits a new manifest.  Run this with the cluster *stopped*; the
    next ``refill serve --shards <new_shards>`` restores from it directly.
    """
    path = pathlib.Path(path)
    data = json.loads(path.read_text())
    if data.get("version") == CHECKPOINT_VERSION:
        merged = Checkpoint.from_json(data)
        epoch = 1
    else:
        manifest = ClusterManifest.from_json(data)
        merged = merge_checkpoints(
            [load_checkpoint(path.parent / name) for name in manifest.shard_files]
        )
        epoch = manifest.epoch + 1
    parts = reshard_checkpoint(merged, new_shards)
    files = []
    for index, part in enumerate(parts):
        target = shard_checkpoint_path(path, index, epoch)
        save_checkpoint(target, part)
        files.append(target.name)
    manifest = ClusterManifest(
        shards=new_shards,
        epoch=epoch,
        offsets=dict(merged.offsets),
        lines_routed=merged.lines_ingested,
        shard_files=tuple(files),
    )
    save_manifest(path, manifest)
    gc_shard_files(path, manifest)
    return manifest


# ---------------------------------------------------------------------- #
# plumbing


def _atomic_write(path: pathlib.Path, payload: dict[str, Any]) -> pathlib.Path:
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(json.dumps(payload, sort_keys=True) + "\n")
    os.replace(tmp, path)
    return path
