"""Minimal dependency-free HTTP/JSON query API for the daemon.

A deliberately tiny HTTP/1.1 subset over asyncio streams: parse the request
line and headers, route, respond with a JSON body and ``Connection: close``.
Responses that must be comparable across doors (``/flows``, ``/flow/<p>``,
``/reports``) serialize through :func:`repro.core.serialize.dumps_canonical`
— byte-identical to ``refill analyze --flows-out`` on the same lines, which
is the serve layer's correctness contract.

The router/handler code here is shared by both deployment shapes through
the :class:`QueryTarget` surface: an async ``api_*`` method per route.  The
standalone :class:`~repro.serve.server.RefillServer` answers locally and
immediately; the cluster's :class:`~repro.serve.router.ClusterServer`
**scatter-gathers** — it fans the request out to every shard worker over
their private query listeners and merges deterministically (flows/reports
by canonical-key union, summary counters summed, metrics through the
mergeable-snapshot path, readiness as the min over shards).  Because the
dict-union of disjoint per-shard bodies re-serializes through
``dumps_canonical`` (sorted keys), the merged bytes equal the unsharded
bytes — the equivalence oracle holds at every ``--shards``.

Routes
------
======  ======================  =============================================
GET     ``/healthz``            liveness (always 200 while the loop runs)
GET     ``/readyz``             200 when ingest is drained and flows fresh
GET     ``/packets``            every packet the session has evidence for
GET     ``/flow/<packet>``      one packet's event flow (404 when unknown)
GET     ``/flows``              all flows, canonical JSON
GET     ``/report/<packet>``    one packet's loss report
GET     ``/reports``            all loss reports
GET     ``/summary``            diagnosis summary + ingest progress
GET     ``/offsets``            per-source ingest offsets / corrupt counts
GET     ``/metrics``            the run's metrics-registry snapshot
GET     ``/debug/trace``        the flight recorder (recent spans/events)
POST    ``/checkpoint``         write a checkpoint now (``?epoch=N`` on a
                                shard worker targets a coordinated epoch)
POST    ``/shutdown``           graceful drain + checkpoint + exit
======  ======================  =============================================

``/metrics`` content-negotiates: JSON by default, Prometheus text
exposition when the ``Accept`` header asks for ``text/plain`` (or with
``?format=prometheus`` for curl convenience) — the daemon is scrapeable by
stock Prometheus without breaking existing JSON consumers.

``/debug/trace`` filters with query parameters: ``limit`` (newest-first
cap), ``name`` (exact or dotted-prefix span/event name), ``trace`` (one
trace id), ``kind`` (``span``/``event``).

Every request lands in ``serve.requests{route=,code=}`` and its latency in
``serve.request.seconds{route=}`` (the p50/p95 the bench baseline reports).
Each request is also assigned a request id, echoed as ``X-Request-Id`` and
written to the access log (``http.access``), so a slow query in the log
joins to the span records around it.
"""

from __future__ import annotations

import asyncio
import json
import time
import urllib.parse
from typing import Any, Mapping, Optional, Protocol

from repro.analysis.causes import cause_shares, sink_split
from repro.core.diagnosis import LossReport
from repro.core.serialize import dumps_canonical
from repro.events.packet import PacketKey
from repro.events.store import StoreMetadata
from repro.obs.promtext import CONTENT_TYPE as PROM_CONTENT_TYPE
from repro.obs.promtext import render_snapshot
from repro.obs.recorder import FlightRecorder
from repro.obs.registry import MetricsSnapshot, get_registry, timer
from repro.obs.structlog import get_logger
from repro.obs.tracing import mint_request_id
from repro.serve._compat import timeout

_log = get_logger("refill.serve.http")

_MAX_REQUEST_LINE = 8192
_MAX_HEADERS = 100

_JSON_CONTENT_TYPE = "application/json"

#: Every route the query API answers — the doc-coverage test holds
#: ``docs/SERVING.md`` to this list, so a new endpoint cannot ship
#: undocumented.
ROUTES = (
    "/healthz",
    "/readyz",
    "/packets",
    "/flow/<packet>",
    "/flows",
    "/report/<packet>",
    "/reports",
    "/summary",
    "/offsets",
    "/metrics",
    "/debug/trace",
    "/checkpoint",
    "/shutdown",
)


class QueryTarget(Protocol):
    """What :class:`QueryApi` routes against — one async method per route.

    Implemented by :class:`~repro.serve.server.RefillServer` (local answers)
    and :class:`~repro.serve.router.ClusterServer` (scatter-gather merges).
    """

    recorder: FlightRecorder

    def request_shutdown(self) -> None: ...

    async def api_readiness(self) -> tuple[bool, dict[str, Any]]: ...

    async def api_packets_body(self) -> str: ...

    async def api_flows_body(self) -> str: ...

    async def api_reports_body(self) -> str: ...

    async def api_packet_body(
        self, kind: str, packet: PacketKey
    ) -> tuple[int, str]: ...

    async def api_summary(self) -> dict[str, Any]: ...

    async def api_offsets(self) -> dict[str, Any]: ...

    async def api_metrics_snapshot(self) -> MetricsSnapshot: ...

    async def api_checkpoint(
        self, epoch: Optional[int]
    ) -> Optional[dict[str, Any]]: ...


def build_summary(
    reports: Mapping[PacketKey, LossReport],
    *,
    pending: int,
    batches_ingested: int,
    lines_ingested: int,
    sources: int,
    metadata: Optional[StoreMetadata],
) -> dict[str, Any]:
    """The ``/summary`` payload, shared by the single server and the merge.

    The cluster computes the same shape from merged shard reports and
    summed shard counters, so a probe cannot tell the topologies apart.
    """
    lost = sum(1 for r in reports.values() if r.lost)
    summary: dict[str, Any] = {
        "packets": len(reports),
        "lost": lost,
        "cause_shares": {
            cause.value: share for cause, share in cause_shares(reports).items()
        },
        "pending": pending,
        "batches_ingested": batches_ingested,
        "lines_ingested": lines_ingested,
        "sources": sources,
    }
    if metadata is not None:
        summary["sink_split"] = sink_split(reports, metadata.sink)
    return summary


class QueryApi:
    """Routes HTTP requests against a :class:`QueryTarget`."""

    def __init__(self, server: QueryTarget) -> None:
        self.server = server
        #: Live handler tasks; shutdown cancels them because from Python
        #: 3.12.1 ``Server.wait_closed()`` waits for in-flight handlers, and
        #: an idle client parked in the read timeout would stall it.
        self.handler_tasks: set[asyncio.Task] = set()

    def cancel_handlers(self) -> list[asyncio.Task]:
        """Cancel every live request handler; returns the tasks to reap."""
        tasks = [task for task in self.handler_tasks if not task.done()]
        for task in tasks:
            task.cancel()
        return tasks

    # ------------------------------------------------------------------ #
    # transport

    async def handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self.handler_tasks.add(task)
        try:
            await self._handle(reader, writer)
        except asyncio.CancelledError:
            writer.close()
            raise
        finally:
            if task is not None:
                self.handler_tasks.discard(task)

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            async with timeout(30.0):
                request = await self._read_request(reader)
        except (TimeoutError, ValueError, ConnectionError,
                asyncio.IncompleteReadError):
            writer.close()
            return
        if request is None:
            writer.close()
            return
        method, path, query, accept = request
        request_id = mint_request_id()
        route = self._route_label(path)
        registry = get_registry()
        started = time.perf_counter()
        with timer(registry.histogram("serve.request.seconds", route=route)):
            try:
                code, body, content_type = await self._dispatch(
                    method, path, query, accept
                )
            except asyncio.CancelledError:
                raise
            except Exception as exc:  # noqa: BLE001 - a query never kills the daemon
                _log.warning(
                    "http.handler-error",
                    path=path,
                    request=request_id,
                    error=str(exc),
                )
                code, body = 500, dumps_canonical({"error": "internal error"})
                content_type = _JSON_CONTENT_TYPE
        registry.counter("serve.requests", route=route, code=code).inc()
        _log.info(
            "http.access",
            request=request_id,
            method=method,
            path=path,
            code=code,
            seconds=round(time.perf_counter() - started, 6),
        )
        try:
            writer.write(
                _response_bytes(code, body, content_type, request_id=request_id)
            )
            await writer.drain()
        except (ConnectionError, OSError):
            pass  # client went away mid-response; their problem, not ours
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    @staticmethod
    async def _read_request(
        reader: asyncio.StreamReader,
    ) -> Optional[tuple[str, str, dict[str, str], str]]:
        request_line = await reader.readline()
        if not request_line:
            return None
        if len(request_line) > _MAX_REQUEST_LINE:
            raise ValueError("request line too long")
        parts = request_line.decode("latin-1").split()
        if len(parts) != 3:
            raise ValueError("malformed request line")
        method, target, _version = parts
        content_length = 0
        accept = ""
        for _ in range(_MAX_HEADERS):
            header = await reader.readline()
            if header in (b"\r\n", b"\n", b""):
                break
            name, sep, value = header.decode("latin-1").partition(":")
            if not sep:
                continue
            name = name.strip().lower()
            if name == "content-length":
                try:
                    content_length = int(value.strip())
                except ValueError:
                    raise ValueError("bad content-length") from None
            elif name == "accept":
                accept = value.strip()
        if content_length:
            await reader.readexactly(min(content_length, 1 << 20))
        path, _, raw_query = target.partition("?")
        query = {
            key: value
            for key, value in urllib.parse.parse_qsl(raw_query, keep_blank_values=True)
        }
        return method.upper(), path, query, accept

    # ------------------------------------------------------------------ #
    # routing

    @staticmethod
    def _route_label(path: str) -> str:
        """Low-cardinality metrics label for a request path."""
        head = path.strip("/").split("/", 1)[0]
        return head or "root"

    async def _dispatch(
        self, method: str, path: str, query: dict[str, str], accept: str
    ) -> tuple[int, str, str]:
        """Route one request; returns ``(code, body, content_type)``."""
        if method == "GET" and path == "/metrics":
            return await self._metrics_response(query, accept)
        if method == "GET" and path == "/debug/trace":
            return self._debug_trace(query)
        code, body = await self._dispatch_json(method, path, query)
        return code, body, _JSON_CONTENT_TYPE

    async def _metrics_response(
        self, query: dict[str, str], accept: str
    ) -> tuple[int, str, str]:
        """JSON by default; Prometheus text when the client asks for it."""
        snapshot = await self.server.api_metrics_snapshot()
        wants_text = query.get("format") == "prometheus" or (
            "text/plain" in accept or "openmetrics-text" in accept
        )
        if wants_text:
            return 200, render_snapshot(snapshot), PROM_CONTENT_TYPE
        return (
            200,
            json.dumps(snapshot.to_json(), sort_keys=True),
            _JSON_CONTENT_TYPE,
        )

    def _debug_trace(self, query: dict[str, str]) -> tuple[int, str, str]:
        """The flight recorder's recent records, newest first, filtered."""
        recorder = self.server.recorder
        limit: Optional[int] = None
        if "limit" in query:
            try:
                limit = int(query["limit"])
            except ValueError:
                body = dumps_canonical(
                    {"error": f"bad limit {query['limit']!r}"}
                )
                return 400, body, _JSON_CONTENT_TYPE
        kind = query.get("kind")
        if kind not in (None, "span", "event"):
            body = dumps_canonical({"error": f"bad kind {kind!r}"})
            return 400, body, _JSON_CONTENT_TYPE
        records = recorder.snapshot(
            limit=limit,
            name=query.get("name"),
            trace_id=query.get("trace"),
            kind=kind,
        )
        body = json.dumps(
            {
                "records": records,
                "returned": len(records),
                "recorded": recorder.recorded,
                "dropped": recorder.dropped,
                "capacity": recorder.capacity,
            },
            sort_keys=True,
        )
        return 200, body, _JSON_CONTENT_TYPE

    async def _dispatch_json(
        self, method: str, path: str, query: dict[str, str]
    ) -> tuple[int, str]:
        server = self.server
        parts = [p for p in path.split("/") if p]
        if method == "GET":
            if path == "/healthz":
                return 200, dumps_canonical({"status": "ok"})
            if path == "/readyz":
                ready, detail = await server.api_readiness()
                return (200 if ready else 503), dumps_canonical(detail)
            if path == "/packets":
                return 200, await server.api_packets_body()
            if path == "/flows":
                return 200, await server.api_flows_body()
            if path == "/reports":
                return 200, await server.api_reports_body()
            if len(parts) == 2 and parts[0] in ("flow", "report"):
                try:
                    packet = PacketKey.parse(parts[1])
                except ValueError:
                    return 400, dumps_canonical(
                        {"error": f"bad packet key {parts[1]!r}"}
                    )
                return await server.api_packet_body(parts[0], packet)
            if path == "/summary":
                return 200, dumps_canonical(await server.api_summary())
            if path == "/offsets":
                return 200, dumps_canonical(await server.api_offsets())
        elif method == "POST":
            if path == "/checkpoint":
                epoch: Optional[int] = None
                if "epoch" in query:
                    try:
                        epoch = int(query["epoch"])
                    except ValueError:
                        return 400, dumps_canonical(
                            {"error": f"bad epoch {query['epoch']!r}"}
                        )
                written = await server.api_checkpoint(epoch)
                if written is None:
                    return 409, dumps_canonical(
                        {"error": "no checkpoint path configured"}
                    )
                return 200, dumps_canonical(written)
            if path == "/shutdown":
                server.request_shutdown()
                return 202, dumps_canonical({"status": "draining"})
        else:
            return 405, dumps_canonical({"error": f"method {method} not allowed"})
        return 404, dumps_canonical({"error": f"no route for {path}"})


def _response_bytes(
    code: int,
    body: str,
    content_type: str = _JSON_CONTENT_TYPE,
    *,
    request_id: Optional[str] = None,
) -> bytes:
    reason = {
        200: "OK", 202: "Accepted", 400: "Bad Request", 404: "Not Found",
        405: "Method Not Allowed", 409: "Conflict", 500: "Internal Server Error",
        503: "Service Unavailable",
    }.get(code, "OK")
    if not body.endswith("\n"):
        body = body + "\n"
    payload = body.encode("utf-8")
    head = (
        f"HTTP/1.1 {code} {reason}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(payload)}\r\n"
    )
    if request_id is not None:
        head += f"X-Request-Id: {request_id}\r\n"
    head += "Connection: close\r\n\r\n"
    return head.encode("latin-1") + payload
