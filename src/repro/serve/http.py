"""Minimal dependency-free HTTP/JSON query API for the daemon.

A deliberately tiny HTTP/1.1 subset over asyncio streams: parse the request
line and headers, route, respond with a JSON body and ``Connection: close``.
Responses that must be comparable across doors (``/flows``, ``/flow/<p>``,
``/reports``) serialize through :func:`repro.core.serialize.dumps_canonical`
— byte-identical to ``refill analyze --flows-out`` on the same lines, which
is the serve layer's correctness contract.

Routes
------
======  ======================  =============================================
GET     ``/healthz``            liveness (always 200 while the loop runs)
GET     ``/readyz``             200 when ingest is drained and flows fresh
GET     ``/packets``            every packet the session has evidence for
GET     ``/flow/<packet>``      one packet's event flow (404 when unknown)
GET     ``/flows``              all flows, canonical JSON
GET     ``/report/<packet>``    one packet's loss report
GET     ``/reports``            all loss reports
GET     ``/summary``            diagnosis summary + ingest progress
GET     ``/offsets``            per-source ingest offsets / corrupt counts
GET     ``/metrics``            the run's metrics-registry snapshot
POST    ``/checkpoint``         write a checkpoint now
POST    ``/shutdown``           graceful drain + checkpoint + exit
======  ======================  =============================================

Every request lands in ``serve.requests{route=,code=}`` and its latency in
``serve.request.seconds{route=}`` (the p50/p95 the bench baseline reports).
"""

from __future__ import annotations

import asyncio
import json
from typing import TYPE_CHECKING, Any, Optional

from repro.analysis.causes import cause_shares, sink_split
from repro.core.serialize import (
    dumps_canonical,
    flow_to_dict,
    flows_to_json,
    report_to_dict,
    reports_to_json,
)
from repro.events.packet import PacketKey
from repro.obs.registry import get_registry, timer
from repro.obs.structlog import get_logger
from repro.serve._compat import timeout

if TYPE_CHECKING:
    from repro.serve.server import RefillServer

_log = get_logger("refill.serve.http")

_MAX_REQUEST_LINE = 8192
_MAX_HEADERS = 100


class QueryApi:
    """Routes HTTP requests against a running :class:`RefillServer`."""

    def __init__(self, server: "RefillServer") -> None:
        self.server = server
        #: Live handler tasks; shutdown cancels them because from Python
        #: 3.12.1 ``Server.wait_closed()`` waits for in-flight handlers, and
        #: an idle client parked in the read timeout would stall it.
        self.handler_tasks: set[asyncio.Task] = set()

    def cancel_handlers(self) -> list[asyncio.Task]:
        """Cancel every live request handler; returns the tasks to reap."""
        tasks = [task for task in self.handler_tasks if not task.done()]
        for task in tasks:
            task.cancel()
        return tasks

    # ------------------------------------------------------------------ #
    # transport

    async def handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self.handler_tasks.add(task)
        try:
            await self._handle(reader, writer)
        except asyncio.CancelledError:
            writer.close()
            raise
        finally:
            if task is not None:
                self.handler_tasks.discard(task)

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            async with timeout(30.0):
                request = await self._read_request(reader)
        except (TimeoutError, ValueError, ConnectionError,
                asyncio.IncompleteReadError):
            writer.close()
            return
        if request is None:
            writer.close()
            return
        method, path = request
        route = self._route_label(path)
        registry = get_registry()
        with timer(registry.histogram("serve.request.seconds", route=route)):
            try:
                code, body = self._dispatch(method, path)
            except Exception as exc:  # noqa: BLE001 - a query never kills the daemon
                _log.warning("http.handler-error", path=path, error=str(exc))
                code, body = 500, dumps_canonical({"error": "internal error"})
        registry.counter("serve.requests", route=route, code=code).inc()
        try:
            writer.write(_response_bytes(code, body))
            await writer.drain()
        except (ConnectionError, OSError):
            pass  # client went away mid-response; their problem, not ours
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    @staticmethod
    async def _read_request(
        reader: asyncio.StreamReader,
    ) -> Optional[tuple[str, str]]:
        request_line = await reader.readline()
        if not request_line:
            return None
        if len(request_line) > _MAX_REQUEST_LINE:
            raise ValueError("request line too long")
        parts = request_line.decode("latin-1").split()
        if len(parts) != 3:
            raise ValueError("malformed request line")
        method, target, _version = parts
        content_length = 0
        for _ in range(_MAX_HEADERS):
            header = await reader.readline()
            if header in (b"\r\n", b"\n", b""):
                break
            name, sep, value = header.decode("latin-1").partition(":")
            if sep and name.strip().lower() == "content-length":
                try:
                    content_length = int(value.strip())
                except ValueError:
                    raise ValueError("bad content-length") from None
        if content_length:
            await reader.readexactly(min(content_length, 1 << 20))
        path = target.split("?", 1)[0]
        return method.upper(), path

    # ------------------------------------------------------------------ #
    # routing

    @staticmethod
    def _route_label(path: str) -> str:
        """Low-cardinality metrics label for a request path."""
        head = path.strip("/").split("/", 1)[0]
        return head or "root"

    def _dispatch(self, method: str, path: str) -> tuple[int, str]:
        server = self.server
        parts = [p for p in path.split("/") if p]
        if method == "GET":
            if path == "/healthz":
                return 200, dumps_canonical({"status": "ok"})
            if path == "/readyz":
                ready, detail = server.readiness()
                return (200 if ready else 503), dumps_canonical(detail)
            if path == "/packets":
                return 200, dumps_canonical(
                    {"packets": [str(p) for p in server.session.packets()]}
                )
            if path == "/flows":
                return 200, dumps_canonical(flows_to_json(server.session.flows()))
            if path == "/reports":
                return 200, dumps_canonical(reports_to_json(server.session.reports()))
            if len(parts) == 2 and parts[0] in ("flow", "report"):
                return self._packet_route(parts[0], parts[1])
            if path == "/summary":
                return 200, dumps_canonical(self._summary())
            if path == "/offsets":
                book = server.book
                return 200, dumps_canonical(
                    {
                        "offsets": dict(sorted(book.ingested.items())),
                        "received": dict(sorted(book.received.items())),
                        "corrupt_lines": dict(sorted(book.corrupt.items())),
                        "lines_ingested": book.lines_ingested,
                    }
                )
            if path == "/metrics":
                return 200, json.dumps(
                    get_registry().snapshot().to_json(), sort_keys=True
                )
        elif method == "POST":
            if path == "/checkpoint":
                written = server.write_checkpoint()
                if written is None:
                    return 409, dumps_canonical(
                        {"error": "no checkpoint path configured"}
                    )
                return 200, dumps_canonical(
                    {"path": str(written), "packets": len(server.session.packets())}
                )
            if path == "/shutdown":
                server.request_shutdown()
                return 202, dumps_canonical({"status": "draining"})
        else:
            return 405, dumps_canonical({"error": f"method {method} not allowed"})
        return 404, dumps_canonical({"error": f"no route for {path}"})

    def _packet_route(self, kind: str, key: str) -> tuple[int, str]:
        try:
            packet = PacketKey.parse(key)
        except ValueError:
            return 400, dumps_canonical({"error": f"bad packet key {key!r}"})
        session = self.server.session
        if kind == "flow":
            flow = session.flow(packet)
            if flow is None:
                return 404, dumps_canonical({"error": f"unknown packet {key}"})
            return 200, dumps_canonical(flow_to_dict(flow))
        report = session.reports().get(packet)
        if report is None:
            return 404, dumps_canonical({"error": f"unknown packet {key}"})
        return 200, dumps_canonical(report_to_dict(report))

    def _summary(self) -> dict[str, Any]:
        server = self.server
        reports = server.session.reports()
        lost = sum(1 for r in reports.values() if r.lost)
        summary: dict[str, Any] = {
            "packets": len(reports),
            "lost": lost,
            "cause_shares": {
                cause.value: share for cause, share in cause_shares(reports).items()
            },
            "pending": server.session.pending,
            "batches_ingested": server.session.batches_ingested,
            "lines_ingested": server.book.lines_ingested,
            "sources": len(server.book.ingested),
        }
        if server.metadata is not None:
            summary["sink_split"] = sink_split(reports, server.metadata.sink)
        return summary


def _response_bytes(code: int, body: str) -> bytes:
    reason = {
        200: "OK", 202: "Accepted", 400: "Bad Request", 404: "Not Found",
        405: "Method Not Allowed", 409: "Conflict", 500: "Internal Server Error",
        503: "Service Unavailable",
    }.get(code, "OK")
    payload = (body + "\n").encode("utf-8")
    head = (
        f"HTTP/1.1 {code} {reason}\r\n"
        f"Content-Type: application/json\r\n"
        f"Content-Length: {len(payload)}\r\n"
        f"Connection: close\r\n\r\n"
    )
    return head.encode("latin-1") + payload
