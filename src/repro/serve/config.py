"""Configuration of the live reconstruction daemon (``refill serve``).

One frozen dataclass holds every knob; the CLI builds it from flags, tests
build it directly.  Ports default to ``0`` ("let the OS pick"), so embedded
servers — tests, benchmarks, the simnet end-to-end driver — never collide;
the bound ports are published on the running :class:`~repro.serve.server.
RefillServer` once the listeners are up.
"""

from __future__ import annotations

import pathlib
from dataclasses import dataclass, field
from typing import Optional

from repro.events.store import StoreMetadata, load_store_metadata

#: Default checkpoint file name inside the store directory.
DEFAULT_CHECKPOINT_NAME = "refill-checkpoint.json"


@dataclass(frozen=True)
class ServeConfig:
    """Everything a :class:`~repro.serve.server.RefillServer` needs.

    Attributes
    ----------
    store:
        Optional store directory.  Used for deployment metadata
        (``operations.json`` provides the base-station id that drives
        delivery detection) and as the default checkpoint location.  The
        shards themselves are *not* preloaded — evidence arrives through
        ingest.
    host / port:
        TCP ingest listener (``port=0``: OS-assigned).
    unix_socket:
        Optional unix-socket ingest listener path (removed on shutdown).
    http_host / http_port:
        Query-API listener.
    checkpoint_path:
        Checkpoint file; defaults to ``<store>/refill-checkpoint.json`` when
        a store is configured, else checkpointing only happens on explicit
        ``POST /checkpoint`` or graceful shutdown if a path exists.
    checkpoint_interval:
        Seconds between periodic checkpoints (``0`` disables the timer;
        shutdown still checkpoints).
    flush_interval:
        Idle time after which pending dirty packets are refreshed (and the
        readiness probe can report "caught up").
    ingest_queue_batches / ingest_batch_lines:
        The bounded ingest queue: at most ``ingest_queue_batches`` batches
        of at most ``ingest_batch_lines`` lines are in flight.  A full
        queue blocks connection readers, which stops reading from their
        sockets — TCP backpressure throttles slow-producer-overwhelming
        bursts instead of buffering them unboundedly.
    batch_size:
        Session batch size (forwarded to :class:`ReconstructionSession`).
    tail:
        Log files to tail (source id = file name); each poll ingests the
        newly *completed* lines, so a writer caught mid-append is safe.
    tail_interval:
        Tail poll period in seconds.
    delivery_node:
        Overrides the store metadata's base-station id (``None`` + no store
        disables delivery detection).
    metrics_out:
        Optional path: write the final :class:`MetricsSnapshot` (JSON, same
        contract as ``refill analyze --metrics-out``) on graceful shutdown —
        SIGTERM/SIGINT and ``POST //shutdown`` alike.
    trace_out:
        Optional path: dump the flight recorder (JSON Lines, oldest first)
        on graceful shutdown.
    trace_capacity:
        Flight-recorder ring size (completed spans + events retained).
    shards:
        Number of shard workers.  ``1`` (the default) runs today's
        single-process daemon unchanged; ``N > 1`` runs the router/worker
        cluster (:class:`~repro.serve.router.ClusterServer`): a router
        hashing lines by packet key to ``N`` subprocess workers, fronted
        by a scatter-gather query API.  Output is byte-identical either
        way.
    """

    store: Optional[str] = None
    host: str = "127.0.0.1"
    port: int = 0
    unix_socket: Optional[str] = None
    http_host: str = "127.0.0.1"
    http_port: int = 0
    checkpoint_path: Optional[str] = None
    checkpoint_interval: float = 30.0
    flush_interval: float = 0.5
    ingest_queue_batches: int = 64
    ingest_batch_lines: int = 512
    batch_size: int = 256
    tail: tuple[str, ...] = field(default_factory=tuple)
    tail_interval: float = 0.25
    delivery_node: Optional[int] = None
    metrics_out: Optional[str] = None
    trace_out: Optional[str] = None
    trace_capacity: int = 1024
    shards: int = 1

    def __post_init__(self) -> None:
        if self.shards <= 0:
            raise ValueError("shards must be positive")
        if self.ingest_queue_batches <= 0:
            raise ValueError("ingest_queue_batches must be positive")
        if self.ingest_batch_lines <= 0:
            raise ValueError("ingest_batch_lines must be positive")
        if self.flush_interval <= 0:
            raise ValueError("flush_interval must be positive")
        if self.trace_capacity <= 0:
            raise ValueError("trace_capacity must be positive")

    def resolved_checkpoint(self) -> Optional[pathlib.Path]:
        """The checkpoint file path, or ``None`` when checkpointing is off."""
        if self.checkpoint_path is not None:
            return pathlib.Path(self.checkpoint_path)
        if self.store is not None:
            return pathlib.Path(self.store) / DEFAULT_CHECKPOINT_NAME
        return None

    def metadata(self) -> Optional[StoreMetadata]:
        """Deployment metadata from the configured store, if any."""
        if self.store is None:
            return None
        return load_store_metadata(self.store)

    def resolved_delivery_node(self) -> Optional[int]:
        """Explicit override first, then the store's base station."""
        if self.delivery_node is not None:
            return self.delivery_node
        meta = self.metadata()
        return meta.base_station if meta is not None else None
