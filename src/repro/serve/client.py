"""Client side of the ingest protocol: push log lines at a daemon.

:class:`LineSender` is a small blocking socket client speaking the protocol
in :mod:`repro.serve.protocol`.  The convenience functions cover the two
deployment shapes:

- :func:`push_lines` — one source, one connection: ``HELLO`` (when named),
  skip the server's offset, stream, ``BYE``;
- :func:`push_store` — replay a whole on-disk store, shard by shard, each
  shard as a *node-bound* source named after its file.  Because the binding
  reproduces the store loader's misfiled-line rule and offsets make re-runs
  no-ops, pushing a store twice (or across a server restart) reconstructs
  byte-identically to ``refill analyze`` over the same directory.

Writes go through a plain blocking socket on purpose: when the server's
ingest queue is full its reader stops draining, the TCP window closes, and
``sendall`` here simply blocks — the protocol's backpressure reaches all
the way into this function without any extra machinery.

Every named push also mints a **trace id** (:mod:`repro.obs.tracing`) and
carries it as ``trace=`` metadata in the ``HELLO`` line, so the daemon's
flight recorder can attribute decode/refresh time back to the push that
caused it.  The id travels only in the control line — data lines are
untouched — and old servers that reject the unknown key can be accommodated
by passing ``trace=False``.
"""

from __future__ import annotations

import pathlib
import socket
from dataclasses import dataclass
from typing import Iterable, Optional, Union

from repro.events.store import read_complete_lines
from repro.obs.tracing import mint_trace_id
from repro.serve import protocol
from repro.serve.ingest import tail_node_bind

#: Lines per ``sendall`` batch; keeps peak client memory flat on big shards.
_SEND_BATCH = 2048


@dataclass(frozen=True)
class PushResult:
    """Outcome of pushing one source's material."""

    #: Lines actually sent on this connection.
    sent: int
    #: Lines skipped because the server had already accepted them.
    skipped: int
    #: The server's ``BYE`` acknowledgement count (== ``sent``).
    accepted: int
    #: Trace id sent in ``HELLO`` (``None`` for anonymous/untraced pushes).
    trace: Optional[str] = None


class LineSender:
    """Blocking protocol client over TCP or a unix socket."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        unix_socket: Optional[str] = None,
        timeout: Optional[float] = 30.0,
    ) -> None:
        self.host = host
        self.port = port
        self.unix_socket = unix_socket
        self.timeout = timeout
        self._sock: Optional[socket.socket] = None
        self._rfile = None

    def connect(self) -> "LineSender":
        if self.unix_socket is not None:
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(self.timeout)
            sock.connect(self.unix_socket)
        else:
            sock = socket.create_connection(
                (self.host, self.port), timeout=self.timeout
            )
        self._sock = sock
        self._rfile = sock.makefile("rb")
        return self

    def close(self) -> None:
        if self._rfile is not None:
            self._rfile.close()
            self._rfile = None
        if self._sock is not None:
            self._sock.close()
            self._sock = None

    def __enter__(self) -> "LineSender":
        return self.connect()

    def __exit__(self, *exc: object) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # protocol

    def hello(
        self,
        source: str,
        node: Optional[int] = None,
        trace: Optional[str] = None,
    ) -> int:
        """Declare a resumable source; returns the server's resume offset."""
        self._send_text(
            protocol.Hello(source=source, node=node, trace=trace).format() + "\n"
        )
        return int(protocol.parse_ok(self._read_line()).get("offset", 0))

    def send_lines(self, lines: Iterable[str]) -> int:
        """Stream data lines; blocks when the server applies backpressure."""
        sent = 0
        batch: list[str] = []
        for line in lines:
            batch.append(line)
            if len(batch) >= _SEND_BATCH:
                self._send_text("".join(part + "\n" for part in batch))
                sent += len(batch)
                batch = []
        if batch:
            self._send_text("".join(part + "\n" for part in batch))
            sent += len(batch)
        return sent

    def bye(self) -> int:
        """Finish politely; returns the server's accepted-line count."""
        self._send_text(protocol.BYE + "\n")
        return int(protocol.parse_ok(self._read_line()).get("accepted", 0))

    # ------------------------------------------------------------------ #
    # plumbing

    def _send_text(self, text: str) -> None:
        assert self._sock is not None, "not connected"
        self._sock.sendall(text.encode("utf-8"))

    def _read_line(self) -> str:
        assert self._rfile is not None, "not connected"
        raw = self._rfile.readline()
        if not raw:
            raise ConnectionError("server closed the connection")
        return raw.decode("utf-8", errors="replace").rstrip("\r\n")  # noqa: B005 - char-set strip


def _resolve_trace(trace: Union[str, bool, None]) -> Optional[str]:
    """``True``/``None`` mint a fresh id, ``False`` disables, str passes."""
    if trace is False:
        return None
    if trace is True or trace is None:
        return mint_trace_id()
    return trace


def push_lines(
    lines: list[str],
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    unix_socket: Optional[str] = None,
    source: Optional[str] = None,
    node: Optional[int] = None,
    timeout: Optional[float] = 30.0,
    trace: Union[str, bool, None] = None,
) -> PushResult:
    """Push a list of complete lines over one connection.

    With a ``source`` name the transfer is resumable: the server's ``HELLO``
    offset is skipped, so calling this again with the same (or a grown)
    list sends only the tail.  Anonymous pushes send everything.

    ``trace`` controls the ``HELLO`` trace metadata: by default a fresh id
    is minted per push; pass an explicit id to correlate several pushes
    under one trace, or ``False`` to omit the key (e.g. against an old
    server).  Anonymous pushes send no ``HELLO`` and are never traced.
    """
    trace_id = _resolve_trace(trace) if source is not None else None
    with LineSender(host, port, unix_socket=unix_socket, timeout=timeout) as sender:
        skipped = 0
        if source is not None:
            skipped = sender.hello(source, node, trace_id)
        to_send = lines[skipped:]
        sender.send_lines(to_send)
        accepted = sender.bye()
    return PushResult(
        sent=len(to_send), skipped=skipped, accepted=accepted, trace=trace_id
    )


def push_store(
    store,
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    unix_socket: Optional[str] = None,
    source_prefix: str = "",
    timeout: Optional[float] = 30.0,
    trace: Union[str, bool, None] = None,
    workers: int = 1,
) -> dict[str, PushResult]:
    """Replay every shard of an on-disk store at a daemon.

    Each ``node_<id>.log`` becomes its own node-bound resumable source named
    ``<source_prefix><filename>``; only newline-terminated lines are sent
    (a shard mid-write is picked up on the next push).  Returns per-source
    results keyed by source name.

    One trace id spans the whole replay (all shards) so the daemon sees the
    store push as a single logical flow; ``trace=False`` disables the
    metadata entirely.

    ``workers > 1`` pushes that many sources concurrently (one connection
    each, blocking sends on a thread pool).  The daemon only guarantees
    ordering *within* a source, which each connection preserves on its own,
    so concurrency never changes the reconstruction — it just keeps a
    sharded daemon's workers busy in parallel.  The result dict is keyed
    and ordered by source name either way.
    """
    if workers < 1:
        raise ValueError("workers must be positive")
    store = pathlib.Path(store)
    push_trace = _resolve_trace(trace)
    shards = sorted(store.glob("node_*.log"))

    def _push_one(shard: pathlib.Path) -> PushResult:
        return push_lines(
            read_complete_lines(shard),
            host=host,
            port=port,
            unix_socket=unix_socket,
            source=source_prefix + shard.name,
            node=tail_node_bind(shard),
            timeout=timeout,
            trace=push_trace if push_trace is not None else False,
        )

    if workers == 1 or len(shards) <= 1:
        return {source_prefix + shard.name: _push_one(shard) for shard in shards}
    from concurrent.futures import ThreadPoolExecutor

    with ThreadPoolExecutor(max_workers=min(workers, len(shards))) as pool:
        outcomes = list(pool.map(_push_one, shards))
    return {
        source_prefix + shard.name: outcome
        for shard, outcome in zip(shards, outcomes)
    }
