"""Client side of the ingest protocol: push log lines at a daemon.

:class:`LineSender` is a small blocking socket client speaking the protocol
in :mod:`repro.serve.protocol`.  The convenience functions cover the two
deployment shapes:

- :func:`push_lines` — one source, one connection: ``HELLO`` (when named),
  skip the server's offset, stream, ``BYE``;
- :func:`push_store` — replay a whole on-disk store, shard by shard, each
  shard as a *node-bound* source named after its file.  Because the binding
  reproduces the store loader's misfiled-line rule and offsets make re-runs
  no-ops, pushing a store twice (or across a server restart) reconstructs
  byte-identically to ``refill analyze`` over the same directory.

Writes go through a plain blocking socket on purpose: when the server's
ingest queue is full its reader stops draining, the TCP window closes, and
``sendall`` here simply blocks — the protocol's backpressure reaches all
the way into this function without any extra machinery.
"""

from __future__ import annotations

import pathlib
import socket
from dataclasses import dataclass
from typing import Iterable, Optional

from repro.events.store import read_complete_lines
from repro.serve import protocol
from repro.serve.ingest import tail_node_bind

#: Lines per ``sendall`` batch; keeps peak client memory flat on big shards.
_SEND_BATCH = 2048


@dataclass(frozen=True)
class PushResult:
    """Outcome of pushing one source's material."""

    #: Lines actually sent on this connection.
    sent: int
    #: Lines skipped because the server had already accepted them.
    skipped: int
    #: The server's ``BYE`` acknowledgement count (== ``sent``).
    accepted: int


class LineSender:
    """Blocking protocol client over TCP or a unix socket."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        unix_socket: Optional[str] = None,
        timeout: Optional[float] = 30.0,
    ) -> None:
        self.host = host
        self.port = port
        self.unix_socket = unix_socket
        self.timeout = timeout
        self._sock: Optional[socket.socket] = None
        self._rfile = None

    def connect(self) -> "LineSender":
        if self.unix_socket is not None:
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(self.timeout)
            sock.connect(self.unix_socket)
        else:
            sock = socket.create_connection(
                (self.host, self.port), timeout=self.timeout
            )
        self._sock = sock
        self._rfile = sock.makefile("rb")
        return self

    def close(self) -> None:
        if self._rfile is not None:
            self._rfile.close()
            self._rfile = None
        if self._sock is not None:
            self._sock.close()
            self._sock = None

    def __enter__(self) -> "LineSender":
        return self.connect()

    def __exit__(self, *exc: object) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # protocol

    def hello(self, source: str, node: Optional[int] = None) -> int:
        """Declare a resumable source; returns the server's resume offset."""
        self._send_text(protocol.Hello(source=source, node=node).format() + "\n")
        return int(protocol.parse_ok(self._read_line()).get("offset", 0))

    def send_lines(self, lines: Iterable[str]) -> int:
        """Stream data lines; blocks when the server applies backpressure."""
        sent = 0
        batch: list[str] = []
        for line in lines:
            batch.append(line)
            if len(batch) >= _SEND_BATCH:
                self._send_text("".join(part + "\n" for part in batch))
                sent += len(batch)
                batch = []
        if batch:
            self._send_text("".join(part + "\n" for part in batch))
            sent += len(batch)
        return sent

    def bye(self) -> int:
        """Finish politely; returns the server's accepted-line count."""
        self._send_text(protocol.BYE + "\n")
        return int(protocol.parse_ok(self._read_line()).get("accepted", 0))

    # ------------------------------------------------------------------ #
    # plumbing

    def _send_text(self, text: str) -> None:
        assert self._sock is not None, "not connected"
        self._sock.sendall(text.encode("utf-8"))

    def _read_line(self) -> str:
        assert self._rfile is not None, "not connected"
        raw = self._rfile.readline()
        if not raw:
            raise ConnectionError("server closed the connection")
        return raw.decode("utf-8", errors="replace").rstrip("\r\n")


def push_lines(
    lines: list[str],
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    unix_socket: Optional[str] = None,
    source: Optional[str] = None,
    node: Optional[int] = None,
    timeout: Optional[float] = 30.0,
) -> PushResult:
    """Push a list of complete lines over one connection.

    With a ``source`` name the transfer is resumable: the server's ``HELLO``
    offset is skipped, so calling this again with the same (or a grown)
    list sends only the tail.  Anonymous pushes send everything.
    """
    with LineSender(host, port, unix_socket=unix_socket, timeout=timeout) as sender:
        skipped = 0
        if source is not None:
            skipped = sender.hello(source, node)
        to_send = lines[skipped:]
        sender.send_lines(to_send)
        accepted = sender.bye()
    return PushResult(sent=len(to_send), skipped=skipped, accepted=accepted)


def push_store(
    store,
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    unix_socket: Optional[str] = None,
    source_prefix: str = "",
    timeout: Optional[float] = 30.0,
) -> dict[str, PushResult]:
    """Replay every shard of an on-disk store at a daemon.

    Each ``node_<id>.log`` becomes its own node-bound resumable source named
    ``<source_prefix><filename>``; only newline-terminated lines are sent
    (a shard mid-write is picked up on the next push).  Returns per-source
    results keyed by source name.
    """
    store = pathlib.Path(store)
    results: dict[str, PushResult] = {}
    for shard in sorted(store.glob("node_*.log")):
        source = source_prefix + shard.name
        results[source] = push_lines(
            read_complete_lines(shard),
            host=host,
            port=port,
            unix_socket=unix_socket,
            source=source,
            node=tail_node_bind(shard),
            timeout=timeout,
        )
    return results
