"""The sharded serve cluster: router → N shard workers → scatter-gather.

``refill serve --shards N`` (N > 1) runs this topology instead of the
monolithic daemon.  One **router** process owns the public listeners and
the client-facing protocol state — the ingest hub, the
:class:`~repro.serve.ingest.SourceBook` of resume offsets, the flight
recorder — and ``N`` **shard worker subprocesses** (each a full
:class:`~repro.serve.server.RefillServer` on private loopback ports, see
:func:`repro.serve.shard.run_shard`) own disjoint slices of reconstruction
state, partitioned by the deterministic packet hash
(:mod:`repro.serve.sharding`).

Data path.  Readers enqueue line batches exactly as in the single daemon;
the router's consumer *routes* instead of decoding: each line's ``pkt=``
token picks a shard, and the batch's slices are forwarded over persistent
per-``(source, shard)`` ingest connections speaking the ordinary wire
protocol.  Per-source ordering is preserved (one consumer, one connection
per source and shard, in-order TCP), and backpressure is end-to-end: a full
shard queue parks the forwarding ``drain()``, which parks the consumer,
which fills the router's bounded queue, which stops the reader — the
client's TCP window closes just as before.

Query path.  The shared :class:`~repro.serve.http.QueryApi` calls this
class's ``api_*`` methods, which fan out to every shard's private query
port and merge deterministically: flows/reports as canonical-key dict
unions (byte-identical to the unsharded body), summary counters summed,
``/metrics`` through :func:`repro.obs.registry.merge_shard_snapshots`
(counters summed; gauges/histograms relabeled ``shard=k``), readiness as
the min over shards *plus* the conservation check that every routed line
has reached a shard session.

Checkpoints are **coordinated**: quiesce routing (route lock + barrier on
the line-conservation invariant), have every shard write an epoch-stamped
file, then commit by atomically replacing the cluster manifest — see
:mod:`repro.serve.checkpoint` for the crash-consistency story.  A v1
single-daemon checkpoint found at the manifest path is migrated at startup
by splitting its per-packet state across shards (offsets stay on shard 0);
a manifest written for a different ``--shards`` fails fast instead of
corrupting state.
"""

from __future__ import annotations

import asyncio
import json
import multiprocessing
import multiprocessing.connection
import pathlib
import signal
import time
from typing import Any, Callable, Optional

from repro.core.serialize import dumps_canonical, report_from_dict
from repro.events.packet import PacketKey
from repro.obs.recorder import FlightRecorder, use_recorder
from repro.obs.registry import (
    MetricsRegistry,
    MetricsSnapshot,
    get_registry,
    merge_shard_snapshots,
    use_registry,
)
from repro.obs.structlog import get_logger
from repro.serve import protocol
from repro.serve._compat import install_streams_cancel_filter, timeout
from repro.serve.checkpoint import (
    CHECKPOINT_VERSION,
    Checkpoint,
    ClusterManifest,
    ShardMismatchError,
    gc_shard_files,
    reshard_checkpoint,
    save_checkpoint,
    save_manifest,
    shard_checkpoint_path,
)
from repro.serve.config import ServeConfig
from repro.serve.http import QueryApi, build_summary
from repro.serve.ingest import IngestHub, IngestItem, SourceBook
from repro.serve.shard import ShardSpec, run_shard
from repro.serve.sharding import shard_for_line, shard_for_packet

_log = get_logger("refill.serve.router")

#: How long a shard subprocess may take to report its listener ports.
SHARD_START_TIMEOUT = 60.0

#: Per-request deadline for router → shard query fan-out.
_SHARD_HTTP_TIMEOUT = 30.0

#: How long a checkpoint barrier may wait for routed lines to settle.
BARRIER_TIMEOUT = 60.0


class _ShardLink:
    """Router-side handle to one shard: its ports and the persistent
    per-source forwarding connections."""

    def __init__(self, index: int, ingest_port: int, http_port: int) -> None:
        self.index = index
        self.ingest_port = ingest_port
        self.http_port = http_port
        #: One ingest connection per source (``None`` key = anonymous
        #: lines), opened lazily and kept for the router's lifetime.
        self._conns: dict[
            Optional[str], tuple[asyncio.StreamReader, asyncio.StreamWriter]
        ] = {}

    async def send(
        self,
        source: Optional[str],
        node_bind: Optional[int],
        trace_id: Optional[str],
        lines: list[str],
    ) -> None:
        """Forward ``lines`` in order; blocks under shard backpressure."""
        conn = self._conns.get(source)
        if conn is None:
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", self.ingest_port
            )
            if source is not None:
                hello = protocol.Hello(source=source, node=node_bind, trace=trace_id)
                writer.write((hello.format() + "\n").encode("utf-8"))
                await writer.drain()
                async with timeout(_SHARD_HTTP_TIMEOUT):
                    reply = await reader.readline()
                # The shard's offset counts *its* slice of the source and is
                # meaningless to the client — resume skipping already
                # happened at the router's edge — so only sanity-check it.
                if not reply.startswith(protocol.OK.encode()):
                    raise ConnectionError(
                        f"shard {self.index} refused source {source!r}: "
                        f"{reply.decode(errors='replace').strip()}"
                    )
            conn = self._conns[source] = (reader, writer)
        _reader, writer = conn
        writer.write("".join(line + "\n" for line in lines).encode("utf-8"))
        await writer.drain()

    async def close(self) -> None:
        for _reader, writer in self._conns.values():
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
        self._conns.clear()


class ClusterServer:
    """The router process: public listeners, shard fan-out, coordination.

    Exposes the same embedding surface as :class:`RefillServer` (``run``,
    ``request_shutdown``, ``tcp_port``/``http_port``, ``listeners()``,
    ``restored``), so :class:`~repro.serve.runner.ServerThread` and the CLI
    drive either interchangeably.
    """

    def __init__(
        self, config: ServeConfig, *, registry: Optional[MetricsRegistry] = None
    ) -> None:
        if config.shards < 1:
            raise ValueError("shards must be positive")
        self.config = config
        self.shards = config.shards
        self.registry = registry if registry is not None else MetricsRegistry()
        self.recorder = FlightRecorder(config.trace_capacity)
        self.metadata = config.metadata()
        self.book = SourceBook()
        self.hub = IngestHub(config, self.book)
        self.api = QueryApi(self)
        self.tcp_port: Optional[int] = None
        self.http_port: Optional[int] = None
        self.restored = False
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._shutdown: Optional[asyncio.Event] = None
        self._route_lock: Optional[asyncio.Lock] = None
        self._manifest_path = config.resolved_checkpoint()
        self._manifest: Optional[ClusterManifest] = None
        self._epoch = 0
        self._specs: list[ShardSpec] = []
        self._procs: list[multiprocessing.process.BaseProcess] = []
        self._links: list[_ShardLink] = []
        #: Lines forwarded per shard (feeds ``serve.shard.lines{shard=}``).
        self._routed: list[int] = [0] * self.shards
        self._dirty_since_checkpoint = False
        self._degraded = False
        self._started_at = time.monotonic()
        self._last_checkpoint_at: Optional[float] = None
        self._last_queue_wait = 0.0
        self._final_snapshot: Optional[MetricsSnapshot] = None

    # ------------------------------------------------------------------ #
    # checkpoint layout (sync; runs before the loop starts)

    def _prepare_restore(self) -> None:
        """Adopt (or migrate) the cluster checkpoint at the manifest path."""
        path = self._manifest_path
        if path is None or not path.exists():
            return
        data = json.loads(path.read_text())
        if data.get("version") == CHECKPOINT_VERSION:
            manifest = self._migrate_v1(path, Checkpoint.from_json(data))
        else:
            manifest = ClusterManifest.from_json(data)
            if manifest.shards != self.shards:
                raise ShardMismatchError(
                    f"checkpoint manifest {path} was written by --shards "
                    f"{manifest.shards}, not --shards {self.shards}; restart "
                    f"with --shards {manifest.shards}, or rebalance offline "
                    "with repro.serve.checkpoint.reshard_manifest()"
                )
            for name in manifest.shard_files:
                if not (path.parent / name).exists():
                    raise ValueError(
                        f"cluster manifest {path} names missing shard file "
                        f"{name!r}; restore aborted"
                    )
        self._manifest = manifest
        self._epoch = manifest.epoch
        self.restored = True

    def _migrate_v1(self, path: pathlib.Path, v1: Checkpoint) -> ClusterManifest:
        """Split a single-daemon checkpoint into this cluster's epoch 1."""
        parts = reshard_checkpoint(v1, self.shards)
        files = []
        for index, part in enumerate(parts):
            target = shard_checkpoint_path(path, index, 1)
            save_checkpoint(target, part)
            files.append(target.name)
        manifest = ClusterManifest(
            shards=self.shards,
            epoch=1,
            offsets=dict(v1.offsets),
            lines_routed=v1.lines_ingested,
            shard_files=tuple(files),
        )
        save_manifest(path, manifest)
        gc_shard_files(path, manifest)
        _log.info(
            "cluster.resharded-v1",
            checkpoint=str(path),
            shards=self.shards,
            lines=v1.lines_ingested,
        )
        return manifest

    # ------------------------------------------------------------------ #
    # shard subprocess lifecycle (sync; spawn before / join after the loop)

    def _spawn_shards(self) -> None:
        ctx = multiprocessing.get_context("spawn")
        conns: list[multiprocessing.connection.Connection] = []
        for index in range(self.shards):
            restore = None
            if self._manifest is not None:
                assert self._manifest_path is not None
                restore = str(
                    self._manifest_path.parent / self._manifest.shard_files[index]
                )
            spec = ShardSpec(
                index=index,
                shards=self.shards,
                manifest_path=(
                    str(self._manifest_path)
                    if self._manifest_path is not None
                    else None
                ),
                restore_file=restore,
                delivery_node=self.config.resolved_delivery_node(),
                batch_size=self.config.batch_size,
                flush_interval=self.config.flush_interval,
                ingest_queue_batches=self.config.ingest_queue_batches,
                ingest_batch_lines=self.config.ingest_batch_lines,
                trace_capacity=self.config.trace_capacity,
            )
            parent_conn, child_conn = ctx.Pipe(duplex=False)
            proc = ctx.Process(
                target=run_shard,
                args=(spec, child_conn),
                name=f"refill-shard-{index}",
                daemon=True,
            )
            proc.start()
            child_conn.close()
            self._specs.append(spec)
            self._procs.append(proc)
            conns.append(parent_conn)
        for index, conn in enumerate(conns):
            try:
                if not conn.poll(SHARD_START_TIMEOUT):
                    raise RuntimeError(
                        f"shard {index} did not report its ports within "
                        f"{SHARD_START_TIMEOUT:.0f}s"
                    )
                msg = conn.recv()
            finally:
                conn.close()
            if "error" in msg:
                raise RuntimeError(f"shard {index} failed to start: {msg['error']}")
            self._links.append(
                _ShardLink(index, msg["ingest_port"], msg["http_port"])
            )
            _log.info(
                "cluster.shard-up",
                shard=index,
                ingest_port=msg["ingest_port"],
                http_port=msg["http_port"],
            )

    def _stop_shard_processes(self) -> None:
        """Reap shard subprocesses after the loop exited (blocking is fine
        here — nothing else is running in this process anymore)."""
        for index, proc in enumerate(self._procs):
            proc.join(timeout=10.0)
            if proc.is_alive():
                _log.warning("cluster.shard-kill", shard=index)
                proc.terminate()
                proc.join(timeout=5.0)

    # ------------------------------------------------------------------ #
    # shard HTTP fan-out

    async def _shard_request(
        self, link: _ShardLink, method: str, path: str
    ) -> tuple[int, bytes]:
        """One HTTP/1.1 request against a shard's private query listener."""
        reader, writer = await asyncio.open_connection("127.0.0.1", link.http_port)
        try:
            writer.write(
                (
                    f"{method} {path} HTTP/1.1\r\n"
                    f"Host: shard{link.index}\r\n"
                    "Connection: close\r\n\r\n"
                ).encode("latin-1")
            )
            await writer.drain()
            async with timeout(_SHARD_HTTP_TIMEOUT):
                raw = await reader.read(-1)
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
        head, sep, body = raw.partition(b"\r\n\r\n")
        if not sep:
            raise ConnectionError(f"shard {link.index} sent a torn response")
        return int(head.split(None, 2)[1]), body

    async def _fanout(self, method: str, path: str) -> list[tuple[int, bytes]]:
        return list(
            await asyncio.gather(
                *(self._shard_request(link, method, path) for link in self._links)
            )
        )

    async def _fanout_json(self, path: str, *, any_status: bool = False) -> list[Any]:
        payloads = []
        for index, (status, body) in enumerate(await self._fanout("GET", path)):
            if status != 200 and not any_status:
                raise RuntimeError(f"shard {index} answered {path} with {status}")
            payloads.append(json.loads(body))
        return payloads

    # ------------------------------------------------------------------ #
    # the query surface (scatter-gather merges)

    async def api_readiness(self) -> tuple[bool, dict[str, Any]]:
        """Ready iff the router is drained, every shard is ready, and every
        routed line is accounted inside a shard session (the conservation
        check covers lines in flight in loopback socket buffers, which
        neither side's queue gauges can see)."""
        lag = self.book.lag_lines()
        queued = self.hub.queue.qsize()
        shard_states = [
            (status, json.loads(body))
            for status, body in await self._fanout("GET", "/readyz")
        ]
        totals = await self._fanout_json("/offsets")
        ingested = sum(t["lines_ingested"] for t in totals)
        settled = ingested == self.book.lines_ingested
        shards_ready = all(status == 200 for status, _ in shard_states)
        ready = lag == 0 and queued == 0 and shards_ready and settled
        detail = {
            "ready": ready,
            "lag_lines": lag
            + max(0, self.book.lines_ingested - ingested)
            + sum(d["lag_lines"] for _, d in shard_states),
            "pending_packets": sum(d["pending_packets"] for _, d in shard_states),
            "queued_batches": queued
            + sum(d["queued_batches"] for _, d in shard_states),
            "queue_saturation": queued / self.hub.queue.maxsize,
            "lag_seconds": 0.0 if ready else self._last_queue_wait,
            "checkpoint_age_seconds": self._checkpoint_age(),
            "shards": {
                str(index): status == 200
                for index, (status, _) in enumerate(shard_states)
            },
        }
        return ready, detail

    async def api_packets_body(self) -> str:
        payloads = await self._fanout_json("/packets")
        keys = sorted(
            {
                PacketKey.parse(p)
                for payload in payloads
                for p in payload["packets"]
            }
        )
        return dumps_canonical({"packets": [str(k) for k in keys]})

    async def api_flows_body(self) -> str:
        return dumps_canonical(await self._merged("/flows"))

    async def api_reports_body(self) -> str:
        return dumps_canonical(await self._merged("/reports"))

    async def _merged(self, path: str) -> dict[str, Any]:
        """Union of per-shard canonical-key dict bodies (disjoint packets;
        ``dumps_canonical`` re-sorts, so the union's bytes equal the
        unsharded serialization)."""
        merged: dict[str, Any] = {}
        for payload in await self._fanout_json(path):
            merged.update(payload)
        return merged

    async def api_packet_body(self, kind: str, packet: PacketKey) -> tuple[int, str]:
        """Single-packet routes go straight to the owning shard."""
        link = self._links[shard_for_packet(packet, self.shards)]
        status, body = await self._shard_request(link, "GET", f"/{kind}/{packet}")
        return status, body.decode("utf-8")

    async def api_summary(self) -> dict[str, Any]:
        reports = {
            PacketKey.parse(p): report_from_dict(d)
            for payload in await self._fanout_json("/reports")
            for p, d in payload.items()
        }
        summaries = await self._fanout_json("/summary")
        return build_summary(
            reports,
            pending=sum(s["pending"] for s in summaries),
            batches_ingested=sum(s["batches_ingested"] for s in summaries),
            lines_ingested=self.book.lines_ingested,
            sources=len(self.book.ingested),
            metadata=self.metadata,
        )

    async def api_offsets(self) -> dict[str, Any]:
        corrupt: dict[str, int] = {}
        for payload in await self._fanout_json("/offsets"):
            for source, count in payload["corrupt_lines"].items():
                corrupt[source] = corrupt.get(source, 0) + count
        return {
            "offsets": dict(sorted(self.book.ingested.items())),
            "received": dict(sorted(self.book.received.items())),
            "corrupt_lines": dict(sorted(corrupt.items())),
            "lines_ingested": self.book.lines_ingested,
        }

    async def api_metrics_snapshot(self) -> MetricsSnapshot:
        snapshots = [
            MetricsSnapshot.from_json(payload)
            for payload in await self._fanout_json("/metrics")
        ]
        return merge_shard_snapshots(
            get_registry().snapshot(), list(enumerate(snapshots))
        )

    async def api_checkpoint(self, epoch: Optional[int]) -> Optional[dict[str, Any]]:
        if epoch is not None:
            raise ValueError("epoch is internal to shard workers")
        if self._manifest_path is None:
            return None
        assert self._route_lock is not None
        async with self._route_lock:
            path, packets = await self._coordinated_checkpoint()
        return {"path": str(path), "packets": packets, "epoch": self._epoch}

    # ------------------------------------------------------------------ #
    # coordinated checkpoints

    async def _barrier(self) -> None:
        """Wait until shard sessions account for every routed line.

        Caller holds the route lock, so the routed count is frozen; shard
        consumers drain their queues and socket buffers toward it.
        """
        target = self.book.lines_ingested
        deadline = time.monotonic() + BARRIER_TIMEOUT
        while True:
            totals = await self._fanout_json("/offsets")
            states = await self._fanout_json("/readyz", any_status=True)
            ingested = sum(t["lines_ingested"] for t in totals)
            if ingested == target and all(
                s["queued_batches"] == 0 and s["lag_lines"] == 0 for s in states
            ):
                return
            if time.monotonic() >= deadline:
                raise RuntimeError(
                    f"cluster barrier timed out: shards hold {ingested} of "
                    f"{target} routed lines"
                )
            await asyncio.sleep(0.02)

    async def _coordinated_checkpoint(self) -> tuple[pathlib.Path, int]:
        """Quiesce, write every shard's epoch file, commit the manifest.

        Caller holds the route lock.  The manifest swap is the commit
        point: a crash before it leaves the previous epoch intact; after
        it, the new epoch is the truth and stale epoch files are GC'd.
        """
        assert self._manifest_path is not None
        started = time.perf_counter()
        await self._barrier()
        epoch = self._epoch + 1
        packets = 0
        for index, (status, body) in enumerate(
            await self._fanout("POST", f"/checkpoint?epoch={epoch}")
        ):
            if status != 200:
                raise RuntimeError(
                    f"shard {index} failed its epoch-{epoch} checkpoint "
                    f"({status}): {body.decode(errors='replace').strip()}"
                )
            packets += json.loads(body)["packets"]
        manifest = ClusterManifest(
            shards=self.shards,
            epoch=epoch,
            offsets=dict(self.book.ingested),
            lines_routed=self.book.lines_ingested,
            shard_files=tuple(
                shard_checkpoint_path(self._manifest_path, index, epoch).name
                for index in range(self.shards)
            ),
        )
        save_manifest(self._manifest_path, manifest)
        self._manifest = manifest
        self._epoch = epoch
        gc_shard_files(self._manifest_path, manifest)
        registry = get_registry()
        registry.gauge("serve.checkpoint.duration_seconds").set(
            time.perf_counter() - started
        )
        self._last_checkpoint_at = time.monotonic()
        self._dirty_since_checkpoint = False
        _log.info(
            "cluster.checkpointed",
            manifest=str(self._manifest_path),
            epoch=epoch,
            packets=packets,
        )
        return self._manifest_path, packets

    def _checkpoint_age(self) -> float:
        anchor = (
            self._last_checkpoint_at
            if self._last_checkpoint_at is not None
            else self._started_at
        )
        return max(0.0, time.monotonic() - anchor)

    # ------------------------------------------------------------------ #
    # the consumer (routes instead of decoding)

    async def _route_item(self, item: IngestItem) -> None:
        buckets: dict[int, list[str]] = {}
        for line in item.lines:
            buckets.setdefault(shard_for_line(line, self.shards), []).append(line)
        for index in sorted(buckets):
            await self._links[index].send(
                item.source, item.node_bind, item.trace_id, buckets[index]
            )
        n = len(item.lines)
        self.book.lines_ingested += n
        if item.source is not None:
            self.book.ingested[item.source] = (
                self.book.ingested.get(item.source, 0) + n
            )
        registry = get_registry()
        if registry.enabled:
            for index, lines in buckets.items():
                self._routed[index] += len(lines)
                registry.gauge("serve.shard.lines", shard=index).set(
                    self._routed[index]
                )
            if item.enqueued_at:
                wait = time.perf_counter() - item.enqueued_at
                self._last_queue_wait = wait
                registry.histogram("serve.queue.wait.seconds").observe(wait)
                registry.gauge("serve.ingest.lag_seconds").set(wait)
        self._dirty_since_checkpoint = True

    def _update_gauges(self) -> None:
        registry = get_registry()
        if not registry.enabled:
            return
        lag = self.book.lag_lines()
        queued = self.hub.queue.qsize()
        registry.gauge("serve.ingest.lag_lines").set(lag)
        registry.gauge("serve.ingest.queue_batches").set(queued)
        registry.gauge("serve.ingest.queue_saturation").set(
            queued / self.hub.queue.maxsize
        )
        if lag == 0 and queued == 0:
            self._last_queue_wait = 0.0
            registry.gauge("serve.ingest.lag_seconds").set(0.0)
        registry.gauge("serve.checkpoint.age_seconds").set(self._checkpoint_age())
        now = time.time()
        for source, seen in self.book.last_seen.items():
            registry.gauge("serve.source.staleness_seconds", source=source).set(
                max(0.0, now - seen)
            )

    async def _consume(self) -> None:
        """Single writer of routing state: dequeue, hash, forward."""
        assert self._route_lock is not None and self._shutdown is not None
        interval = self.config.checkpoint_interval
        next_checkpoint = time.monotonic() + interval if interval > 0 else None
        while True:
            try:
                async with timeout(self.config.flush_interval):
                    item = await self.hub.queue.get()
            except TimeoutError:
                self._update_gauges()
            else:
                try:
                    async with self._route_lock:
                        await self._route_item(item)
                except (ConnectionError, OSError) as exc:
                    # A dead shard makes in-memory state unrecoverable; the
                    # last committed manifest stays the truth, so fail-stop
                    # (clients re-push from its offsets on restart).
                    _log.error("cluster.forward-failed", error=str(exc))
                    self._degraded = True
                    self._shutdown.set()
                    return
                self.hub.queue.task_done()
                self._update_gauges()
            if (
                next_checkpoint is not None
                and self._dirty_since_checkpoint
                and time.monotonic() >= next_checkpoint
            ):
                try:
                    await self.api_checkpoint(None)
                except asyncio.CancelledError:
                    raise
                except Exception as exc:  # noqa: BLE001 - keep serving
                    _log.warning("cluster.checkpoint-failed", error=str(exc))
                next_checkpoint = time.monotonic() + interval

    async def _drain_queue(self) -> None:
        """Route everything queued right now (shutdown; consumer stopped)."""
        if self._degraded:
            return
        assert self._route_lock is not None
        while not self.hub.queue.empty():
            item = self.hub.queue.get_nowait()
            try:
                async with self._route_lock:
                    await self._route_item(item)
            except (ConnectionError, OSError) as exc:
                _log.error("cluster.forward-failed", error=str(exc))
                self._degraded = True
                return

    async def _monitor_shards(self) -> None:
        """Watch shard liveness; a dead shard fail-stops the cluster."""
        assert self._shutdown is not None
        registry = get_registry()
        while True:
            for index, proc in enumerate(self._procs):
                alive = proc.is_alive()
                if registry.enabled:
                    registry.gauge("serve.shard.up", shard=index).set(
                        1.0 if alive else 0.0
                    )
                if not alive:
                    _log.error(
                        "cluster.shard-died",
                        shard=index,
                        exitcode=proc.exitcode,
                    )
                    self._degraded = True
                    self._shutdown.set()
                    return
            await asyncio.sleep(0.25)

    # ------------------------------------------------------------------ #
    # lifecycle

    def request_shutdown(self) -> None:
        """Trigger graceful cluster shutdown; safe from any thread."""
        loop, event = self._loop, self._shutdown
        if loop is None or event is None:
            return
        loop.call_soon_threadsafe(event.set)

    def listeners(self) -> list[dict[str, Any]]:
        """Public listeners plus every shard's private ones."""
        out: list[dict[str, Any]] = [
            {
                "listener": "ingest",
                "transport": "tcp",
                "host": self.config.host,
                "port": self.tcp_port,
            }
        ]
        if self.config.unix_socket is not None:
            out.append(
                {
                    "listener": "ingest-unix",
                    "transport": "unix",
                    "path": self.config.unix_socket,
                }
            )
        out.append(
            {
                "listener": "http",
                "transport": "tcp",
                "host": self.config.http_host,
                "port": self.http_port,
            }
        )
        for link in self._links:
            out.append(
                {
                    "listener": f"shard{link.index}-ingest",
                    "transport": "tcp",
                    "host": "127.0.0.1",
                    "port": link.ingest_port,
                    "shard": link.index,
                }
            )
            out.append(
                {
                    "listener": f"shard{link.index}-http",
                    "transport": "tcp",
                    "host": "127.0.0.1",
                    "port": link.http_port,
                    "shard": link.index,
                }
            )
        return out

    async def _main(self, ready: Optional[Callable[["ClusterServer"], None]]) -> None:
        loop = asyncio.get_running_loop()
        self._loop = loop
        install_streams_cancel_filter(loop)
        self._shutdown = asyncio.Event()
        self._route_lock = asyncio.Lock()
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(sig, self._shutdown.set)
            except (NotImplementedError, RuntimeError, ValueError):
                pass  # non-main thread or unsupported platform
        if self._manifest is not None:
            self.book.restore(self._manifest.offsets, {}, self._manifest.lines_routed)

        servers: list[asyncio.AbstractServer] = []
        tcp = await asyncio.start_server(
            self.hub.handle_connection, self.config.host, self.config.port
        )
        servers.append(tcp)
        self.tcp_port = tcp.sockets[0].getsockname()[1]
        if self.config.unix_socket is not None:
            servers.append(
                await asyncio.start_unix_server(
                    self.hub.handle_connection, path=self.config.unix_socket
                )
            )
        http = await asyncio.start_server(
            self.api.handle_connection, self.config.http_host, self.config.http_port
        )
        servers.append(http)
        self.http_port = http.sockets[0].getsockname()[1]

        consumer = asyncio.create_task(self._consume())
        monitor = asyncio.create_task(self._monitor_shards())
        tails = [
            asyncio.create_task(self.hub.tail_file(path, self._shutdown))
            for path in self.config.tail
        ]
        _log.info(
            "cluster.listening",
            ingest_port=self.tcp_port,
            http_port=self.http_port,
            shards=self.shards,
            restored=self.restored,
            epoch=self._epoch,
        )
        if ready is not None:
            ready(self)

        await self._shutdown.wait()
        _log.info("cluster.draining", queued=self.hub.queue.qsize())
        for server in servers:
            server.close()
        monitor.cancel()
        consumer.cancel()
        for tail in tails:
            tail.cancel()
        workers = [
            consumer,
            monitor,
            *tails,
            *self.hub.cancel_readers(),
            *self.api.cancel_handlers(),
        ]
        pending_workers = set(workers)
        while pending_workers:
            # route concurrently with the reap so a reader parked on a full
            # queue always finds a slot to complete its cancellation through
            _done, pending_workers = await asyncio.wait(
                pending_workers, timeout=0.05
            )
            await self._drain_queue()
        for worker in workers:
            if not worker.cancelled() and worker.exception() is not None:
                _log.warning("cluster.worker-error", error=str(worker.exception()))
        for server in servers:
            await server.wait_closed()
        await self._drain_queue()
        await self._finalize()
        if self.config.unix_socket is not None:
            # refill: no-cc001 -- one-shot unlink on the shutdown path, after serving stopped
            pathlib.Path(self.config.unix_socket).unlink(missing_ok=True)
        self._write_final_outputs()
        _log.info(
            "cluster.stopped",
            lines=self.book.lines_ingested,
            epoch=self._epoch,
            degraded=self._degraded,
        )

    async def _finalize(self) -> None:
        """Final checkpoint + metrics capture, then stop the shards.

        Order matters: commit the manifest while the shards still serve
        (their post-commit self-write is an idempotent rewrite of the same
        epoch file), capture the merged snapshot, and only then tell them
        to exit.  A degraded cluster skips all of it — the last committed
        manifest stays the recoverable truth.
        """
        if self._degraded:
            self._final_snapshot = get_registry().snapshot()
            return
        if self._manifest_path is not None:
            try:
                assert self._route_lock is not None
                async with self._route_lock:
                    await self._coordinated_checkpoint()
            except asyncio.CancelledError:
                raise
            except Exception as exc:  # noqa: BLE001 - still stop cleanly
                _log.error("cluster.final-checkpoint-failed", error=str(exc))
        try:
            self._final_snapshot = await self.api_metrics_snapshot()
        except (ConnectionError, OSError, RuntimeError) as exc:
            _log.warning("cluster.final-metrics-failed", error=str(exc))
            self._final_snapshot = get_registry().snapshot()
        replies = await asyncio.gather(
            *(
                self._shard_request(link, "POST", "/shutdown")
                for link in self._links
            ),
            return_exceptions=True,
        )
        for index, reply in enumerate(replies):
            if isinstance(reply, BaseException):
                _log.warning("cluster.shard-shutdown-odd", shard=index, error=str(reply))
            elif reply[0] != 202:
                _log.warning("cluster.shard-shutdown-odd", shard=index, code=reply[0])
        for link in self._links:
            await link.close()

    def _write_final_outputs(self) -> None:
        """Dump ``--metrics-out`` / ``--trace-out`` on graceful shutdown."""
        if self.config.metrics_out is not None:
            snapshot = (
                self._final_snapshot
                if self._final_snapshot is not None
                else self.registry.snapshot()
            )
            path = pathlib.Path(self.config.metrics_out)
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(snapshot.to_json_str() + "\n")
            _log.info("serve.metrics-written", path=str(path))
        if self.config.trace_out is not None:
            count = self.recorder.dump_jsonl(self.config.trace_out)
            _log.info(
                "serve.trace-written", path=self.config.trace_out, records=count
            )

    def run(self, ready: Optional[Callable[["ClusterServer"], None]] = None) -> int:
        """Blocking entry point: serve until SIGTERM/SIGINT or ``/shutdown``.

        Shard subprocesses are spawned before the loop starts (process
        creation is blocking work) and joined after it exits; the router's
        registry and recorder wrap the loop exactly like the single
        daemon's, so ``GET /metrics`` and ``/debug/trace`` behave the same.
        """
        self._prepare_restore()
        self._spawn_shards()
        try:
            with use_registry(self.registry), use_recorder(self.recorder):
                asyncio.run(self._main(ready))
        finally:
            self._stop_shard_processes()
        return 0
