"""The seeded fault-injection campaign engine behind ``refill stress``.

One campaign = one simulated deployment (ground truth included) + ``N``
cases.  Each case independently draws a fault plan from the profile's
operator pool, collects a lossy corpus, saves a pre-fault twin, corrupts
the corpus on disk, lints it, and runs the oracle bundle
(:mod:`repro.stress.oracles`).  A campaign-level severity ladder checks
accuracy monotonicity (ST005) over :meth:`LogLossSpec.scaled`.  Failing
cases are ddmin-shrunk (:mod:`repro.stress.shrink`) and written out as
replayable reproducers (:mod:`repro.stress.artifact`).

Determinism contract: the whole campaign is a pure function of
``(config, profile pools)`` — every random draw flows through one
:class:`~repro.util.rng.RngStreams` family keyed by stable names
(``case-007``, ``plan``, ``collect``, ``faults``, ``monotonic``), and the
report JSON contains no absolute paths, timings or other machine facts.
Running the same seed twice, anywhere, yields byte-identical reports.
"""

from __future__ import annotations

import pathlib
from dataclasses import asdict, dataclass, field, replace
from typing import Any, Mapping, Optional

from repro.analysis.accuracy import cause_accuracy
from repro.analysis.pipeline import default_loss_spec, run_simulation
from repro.check import load_spec
from repro.check.corpus import check_corpus
from repro.check.findings import CheckReport, Finding, Severity, error
from repro.core.session import ReconstructionSession
from repro.events.store import StoreMetadata, save_store
from repro.lognet.collector import collect_logs
from repro.obs import get_logger, get_registry, span
from repro.simnet.scenarios import citysee
from repro.stress.artifact import write_reproducer
from repro.stress.faults import FAULT_PROFILES, FaultPlan, sample_plan
from repro.stress.oracles import (
    CaseOutcome,
    OracleConfig,
    StoreCase,
    run_store_oracles,
)
from repro.stress.shrink import ShrinkStats, shrink_case
from repro.util.rng import RngStreams

_log = get_logger("repro.stress")


@dataclass(frozen=True)
class CampaignConfig:
    """Everything that determines a campaign (and nothing that doesn't)."""

    seed: int = 7
    cases: int = 5
    nodes: int = 25
    days: int = 1
    packets_per_node_per_day: float = 12.0
    profile: str = "mild"
    shrink: bool = True
    shrink_budget: int = 48
    oracle: OracleConfig = field(default_factory=OracleConfig)

    def __post_init__(self) -> None:
        if self.profile not in FAULT_PROFILES:
            raise ValueError(
                f"unknown fault profile {self.profile!r}; "
                f"choose from {FAULT_PROFILES}"
            )
        if self.cases < 0:
            raise ValueError("cases must be non-negative")

    def scenario(self):
        return citysee(
            n_nodes=self.nodes,
            days=self.days,
            packets_per_node_per_day=self.packets_per_node_per_day,
            seed=self.seed,
        )

    def to_json(self) -> dict[str, Any]:
        data = asdict(self)
        data["oracle"] = self.oracle.to_json()
        return data

    @classmethod
    def from_json(cls, data: Mapping[str, Any]) -> "CampaignConfig":
        known = dict(data)
        if "oracle" in known:
            known["oracle"] = OracleConfig.from_json(known["oracle"])
        return replace(cls(), **known)


@dataclass
class LintSummary:
    """Corpus-lint digest the campaign keeps per case."""

    errors: int = 0
    warnings: int = 0
    #: No *store-level* error (``LC006`` metadata damage).  Line-level
    #: findings (``LC001``–``LC005``) are exactly what the tolerant loader
    #: absorbs, so they never excuse a reconstruction crash; an unreadable
    #: ``operations.json`` legitimately makes the store unloadable.
    reconstructable: bool = True

    def to_json(self) -> dict[str, Any]:
        return asdict(self)


_LINT_SPEC = None


def lint_store(directory) -> LintSummary:
    """Run the corpus lint; digest what the stress harness cares about."""
    global _LINT_SPEC
    if _LINT_SPEC is None:
        _LINT_SPEC = load_spec("ctp")
    findings, _stats = check_corpus(directory, _LINT_SPEC)
    errors = [f for f in findings if f.severity is Severity.ERROR]
    return LintSummary(
        errors=len(errors),
        warnings=sum(1 for f in findings if f.severity is Severity.WARNING),
        reconstructable=not any(f.code == "LC006" for f in errors),
    )


@dataclass
class CaseRecord:
    """One case's deterministic summary (what the report serializes)."""

    label: str
    plan: FaultPlan
    lint: LintSummary
    outcome: CaseOutcome
    #: Reproducer path relative to the campaign output dir ("" when none).
    reproducer: str = ""
    shrink: Optional[ShrinkStats] = None

    def to_json(self) -> dict[str, Any]:
        data: dict[str, Any] = {
            "label": self.label,
            "plan": self.plan.to_json(),
            "lint": self.lint.to_json(),
            "rejected": self.outcome.rejected,
            "violations": self.outcome.violated,
            "metrics": dict(sorted(self.outcome.metrics.items())),
        }
        if self.outcome.rejected:
            data["reason"] = self.outcome.reason
        if self.reproducer:
            data["reproducer"] = self.reproducer
        if self.shrink is not None:
            data["shrink"] = self.shrink.to_json()
        return data


@dataclass
class CampaignResult:
    """Everything one campaign produced."""

    config: CampaignConfig
    report: CheckReport
    cases: list[CaseRecord] = field(default_factory=list)
    #: ``(scale factor, cause accuracy)`` severity ladder (ST005 input).
    ladder: list[tuple[float, float]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.report.ok

    def exit_code(self) -> int:
        return self.report.exit_code()

    def to_json(self) -> dict[str, Any]:
        return {
            "config": self.config.to_json(),
            "cases": [c.to_json() for c in self.cases],
            "ladder": [[factor, acc] for factor, acc in self.ladder],
            "report": self.report.to_json(),
        }

    def render_text(self) -> str:
        lines = [
            f"stress campaign: seed={self.config.seed} "
            f"cases={self.config.cases} profile={self.config.profile}"
        ]
        for record in self.cases:
            if record.outcome.rejected:
                status = "rejected"
            elif record.outcome.violated:
                status = "FAIL " + ",".join(record.outcome.violated)
            else:
                status = "ok"
            lines.append(
                f"  {record.label}  plan={record.plan.describe():<40} {status}"
            )
        if self.ladder:
            rungs = " ".join(f"x{f:g}={acc:.3f}" for f, acc in self.ladder)
            lines.append(f"  severity ladder (cause accuracy): {rungs}")
        lines.append(self.report.render_text())
        return "\n".join(lines)


def run_campaign(config: CampaignConfig, out_dir) -> CampaignResult:
    """Run one campaign; case stores and reproducers land under ``out_dir``."""
    out = pathlib.Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    streams = RngStreams(config.seed)
    registry = get_registry()
    params = config.scenario()
    with span("stress.simulate"):
        sim = run_simulation(params)
    spec = default_loss_spec(sim)
    metadata = StoreMetadata(
        sink=sim.sink,
        base_station=sim.base_station_node,
        gen_interval=params.gen_interval,
        outages=params.base_station.outages,
    )
    result = CampaignResult(config=config, report=CheckReport())
    _log.info(
        "stress.campaign.start",
        seed=config.seed,
        cases=config.cases,
        profile=config.profile,
        nodes=config.nodes,
    )

    for i in range(config.cases):
        label = f"case-{i:03d}"
        with span("stress.case"):
            record = _run_case(
                label, config, sim, spec, metadata, streams.spawn(label), out
            )
        registry.counter("stress.cases").inc()
        result.cases.append(record)
        result.report.extend(record.outcome.findings)
        _log.info(
            "stress.case.done",
            case=label,
            plan=record.plan.describe(),
            violations=",".join(record.outcome.violated) or "-",
            rejected=record.outcome.rejected,
        )

    with span("stress.monotonicity"):
        findings, ladder = _check_monotonicity(config, sim, spec, streams)
    result.ladder = ladder
    result.report.extend(findings)

    result.report.stats = {
        "cases": len(result.cases),
        "rejected": sum(1 for c in result.cases if c.outcome.rejected),
        "violations": len(result.report.findings),
    }
    registry.counter("stress.violations.total").inc(len(result.report.findings))
    return result


def _run_case(
    label: str,
    config: CampaignConfig,
    sim,
    spec,
    metadata: StoreMetadata,
    rng: RngStreams,
    out: pathlib.Path,
) -> CaseRecord:
    plan = sample_plan(
        rng.stream("plan"),
        profile=config.profile,
        immune=(sim.base_station_node,),
    )
    collected = collect_logs(
        sim.true_logs,
        spec,
        rng.stream("collect").randrange(2**31),
        perfect_clocks=frozenset({sim.base_station_node}),
    )
    base_dir = out / label / "base"
    corpus_dir = out / label / "corpus"
    save_store(base_dir, collected, metadata)
    save_store(corpus_dir, collected, metadata)
    plan.apply(corpus_dir, rng.spawn("faults"))

    lint = lint_store(corpus_dir)
    case = StoreCase(
        label=label,
        corpus_dir=corpus_dir,
        base_dir=base_dir,
        truth=sim.truth,
        lint_clean=lint.reconstructable,
        config=config.oracle,
    )
    outcome = run_store_oracles(case)
    record = CaseRecord(label=label, plan=plan, lint=lint, outcome=outcome)

    if outcome.violated and config.shrink:
        shrunk = shrink_case(
            case, outcome.violated, out / label / "shrink",
            budget=config.shrink_budget,
        )
        record.shrink = shrunk.stats
        repro_dir = out / label / "repro"
        write_reproducer(
            repro_dir,
            corpus_dir=shrunk.corpus_dir,
            seed=config.seed,
            case=label,
            plan=plan,
            config=config.oracle,
            # a shrink may shed secondary violations; record what the
            # minimized corpus actually violates (fall back to the
            # original set if the final full pass lost everything)
            expect=shrunk.violated or outcome.violated,
            base_dir=case.base_dir,
            truth=sim.truth,
            notes=f"shrunk from campaign seed={config.seed} {label}",
        )
        record.reproducer = str(repro_dir.relative_to(out))
    elif outcome.violated:
        repro_dir = out / label / "repro"
        write_reproducer(
            repro_dir,
            corpus_dir=corpus_dir,
            seed=config.seed,
            case=label,
            plan=plan,
            config=config.oracle,
            expect=outcome.violated,
            base_dir=base_dir,
            truth=sim.truth,
            notes=f"unshrunk campaign case seed={config.seed} {label}",
        )
        record.reproducer = str(repro_dir.relative_to(out))
    return record


def _check_monotonicity(
    config: CampaignConfig, sim, spec, streams: RngStreams
) -> tuple[list[Finding], list[tuple[float, float]]]:
    """ST005: cause accuracy over a coupled loss-severity ladder.

    One collection seed is shared across every rung, so severities are
    *coupled*: scaling the loss spec up strictly grows what is lost.  The
    oracle tolerates ``monotonicity_tolerance`` of jitter — inference over
    strictly-less evidence can get individual packets right by accident —
    but a material accuracy *gain* under worse loss means diagnosis is
    keying on something other than evidence.
    """
    factors = sorted(config.oracle.monotonicity_factors)
    if len(factors) < 2:
        return [], []
    seed = streams.stream("monotonic").randrange(2**31)
    ladder: list[tuple[float, float]] = []
    for factor in factors:
        collected = collect_logs(
            sim.true_logs,
            spec.scaled(factor),
            seed,
            perfect_clocks=frozenset({sim.base_station_node}),
        )
        session = ReconstructionSession(delivery_node=sim.base_station_node)
        run = session.run(collected)
        acc, _, _ = cause_accuracy(
            run.reports, sim.truth, sink=sim.sink, outage_attributed=False
        )
        ladder.append((factor, round(acc, 4)))
    findings: list[Finding] = []
    for (f_lo, acc_lo), (f_hi, acc_hi) in zip(ladder, ladder[1:]):
        if acc_hi > acc_lo + config.oracle.monotonicity_tolerance:
            findings.append(
                error(
                    "ST005",
                    "ladder",
                    f"cause accuracy rose from {acc_lo:.3f} (x{f_lo:g}) to "
                    f"{acc_hi:.3f} (x{f_hi:g}) as loss worsened",
                )
            )
    return findings, ladder
