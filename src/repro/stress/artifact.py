"""Replayable reproducer artifacts for failing stress cases.

A reproducer is a self-contained directory::

    repro.json        manifest (format tag, seed, fault plan, oracle
                      config, expected oracle IDs)
    corpus/           the (minimized) corpus that violates the oracles
    base/             optional pre-fault twin (locality oracle)
    truth.json        optional simulator ground truth (differential oracle)

``refill stress --replay DIR`` re-runs the oracle bundle over ``corpus/``
and exits non-zero iff violations remain, reporting whether the verdict
matches the manifest's ``expect`` list — so a reproducer filed with a bug
report stays checkable long after the campaign that produced it.
"""

from __future__ import annotations

import json
import pathlib
import shutil
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.check.findings import CheckReport
from repro.simnet.truth import GroundTruth
from repro.stress.faults import FaultPlan
from repro.stress.oracles import (
    CaseOutcome,
    OracleConfig,
    StoreCase,
    run_store_oracles,
)

#: Manifest format tag; bump on incompatible layout changes.
REPRO_FORMAT = "refill-stress-repro/1"


@dataclass
class Reproducer:
    """A loaded reproducer directory."""

    directory: pathlib.Path
    seed: int
    case: str
    plan: FaultPlan
    config: OracleConfig
    #: Oracle IDs the artifact's author observed violated.
    expect: list[str]
    notes: str = ""
    extra: dict[str, Any] = field(default_factory=dict)

    @property
    def corpus_dir(self) -> pathlib.Path:
        return self.directory / "corpus"

    @property
    def base_dir(self) -> Optional[pathlib.Path]:
        path = self.directory / "base"
        return path if path.is_dir() else None

    def truth(self) -> Optional[GroundTruth]:
        path = self.directory / "truth.json"
        if not path.exists():
            return None
        return GroundTruth.from_json(json.loads(path.read_text()))


def write_reproducer(
    directory,
    *,
    corpus_dir,
    seed: int,
    case: str,
    plan: FaultPlan,
    config: OracleConfig,
    expect: list[str],
    base_dir=None,
    truth: Optional[GroundTruth] = None,
    notes: str = "",
    extra: Optional[dict[str, Any]] = None,
) -> pathlib.Path:
    """Assemble a reproducer directory; returns its path."""
    out = pathlib.Path(directory)
    if out.exists():
        shutil.rmtree(out)
    out.mkdir(parents=True)
    shutil.copytree(corpus_dir, out / "corpus")
    if base_dir is not None:
        shutil.copytree(base_dir, out / "base")
    if truth is not None:
        (out / "truth.json").write_text(
            json.dumps(truth.to_json(), indent=2, sort_keys=True) + "\n"
        )
    manifest = {
        "format": REPRO_FORMAT,
        "seed": seed,
        "case": case,
        "plan": plan.to_json(),
        "oracle": config.to_json(),
        "expect": sorted(expect),
        "notes": notes,
        **(extra or {}),
    }
    (out / "repro.json").write_text(
        json.dumps(manifest, indent=2, sort_keys=True) + "\n"
    )
    return out


def load_reproducer(directory) -> Reproducer:
    path = pathlib.Path(directory)
    manifest_path = path / "repro.json"
    if not manifest_path.exists():
        raise FileNotFoundError(f"not a reproducer directory: {path} (no repro.json)")
    data = json.loads(manifest_path.read_text())
    fmt = data.get("format")
    if fmt != REPRO_FORMAT:
        raise ValueError(f"unsupported reproducer format {fmt!r} (want {REPRO_FORMAT})")
    known = {"format", "seed", "case", "plan", "oracle", "expect", "notes"}
    return Reproducer(
        directory=path,
        seed=int(data["seed"]),
        case=str(data["case"]),
        plan=FaultPlan.from_json(data["plan"]),
        config=OracleConfig.from_json(data["oracle"]),
        expect=[str(code) for code in data["expect"]],
        notes=str(data.get("notes", "")),
        extra={k: v for k, v in data.items() if k not in known},
    )


@dataclass
class ReplayResult:
    """Outcome of replaying a reproducer."""

    reproducer: Reproducer
    outcome: CaseOutcome
    report: CheckReport

    @property
    def violated(self) -> list[str]:
        return self.outcome.violated

    @property
    def matches_expectation(self) -> bool:
        return self.violated == sorted(self.reproducer.expect)

    def exit_code(self) -> int:
        return self.report.exit_code()


def replay(directory) -> ReplayResult:
    """Re-run the oracle bundle over a reproducer's corpus.

    The lint gate is recomputed from the shipped corpus (not trusted from
    the manifest), so a hand-edited reproducer is judged on what it
    actually contains.
    """
    from repro.stress.campaign import lint_store  # cycle: campaign imports us

    repro = load_reproducer(directory)
    lint = lint_store(repro.corpus_dir)
    outcome = run_store_oracles(
        StoreCase(
            label=repro.case,
            corpus_dir=repro.corpus_dir,
            base_dir=repro.base_dir,
            truth=repro.truth(),
            lint_clean=lint.reconstructable,
            config=repro.config,
        )
    )
    report = CheckReport(findings=list(outcome.findings))
    report.stats = {
        "lint_errors": lint.errors,
        "lint_warnings": lint.warnings,
    }
    return ReplayResult(reproducer=repro, outcome=outcome, report=report)
