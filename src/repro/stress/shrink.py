"""Delta-debugging case minimization for failing stress cases.

Given a corpus that violates an oracle, :func:`shrink_case` reduces it to a
(locally) minimal reproduction in two granularities — drop whole shard
files first, then individual log lines — re-running the violated oracles
after every trial.  The classic ddmin algorithm (Zeller & Hildebrandt,
"Simplifying and Isolating Failure-Inducing Input") does the reduction;
an evaluation budget bounds the oracle re-runs, so shrinking degrades to
"best reduction found so far" instead of running unbounded.

Everything is deterministic: trials are pure functions of the candidate
item list, and ddmin's exploration order is fixed.
"""

from __future__ import annotations

import pathlib
import shutil
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.events.store import shard_path
from repro.obs import get_registry, span
from repro.stress.oracles import StoreCase, run_store_oracles


class _BudgetExhausted(Exception):
    pass


@dataclass
class ShrinkStats:
    """How one shrink went (deterministic; lands in the campaign report)."""

    trials: int = 0
    files_before: int = 0
    files_after: int = 0
    lines_before: int = 0
    lines_after: int = 0

    def to_json(self) -> dict:
        return {
            "trials": self.trials,
            "files": [self.files_before, self.files_after],
            "lines": [self.lines_before, self.lines_after],
        }


def ddmin(
    items: Sequence,
    failing: Callable[[list], bool],
    *,
    budget: int = 64,
) -> list:
    """Minimal sublist of ``items`` on which ``failing`` still holds.

    ``failing(items)`` is assumed true (the caller verified the violation);
    the result is 1-minimal up to the evaluation ``budget``.
    """
    current = list(items)
    evals = 0

    def test(candidate: list) -> bool:
        nonlocal evals
        if evals >= budget:
            raise _BudgetExhausted
        evals += 1
        return failing(candidate)

    granularity = 2
    try:
        while len(current) >= 2:
            size = max(1, len(current) // granularity)
            chunks = [current[i : i + size] for i in range(0, len(current), size)]
            reduced = False
            for skip in range(len(chunks)):
                complement = [
                    item
                    for j, chunk in enumerate(chunks)
                    if j != skip
                    for item in chunk
                ]
                if complement and test(complement):
                    current = complement
                    granularity = max(2, granularity - 1)
                    reduced = True
                    break
            if not reduced:
                if granularity >= len(current):
                    break
                granularity = min(len(current), granularity * 2)
    except _BudgetExhausted:
        pass
    return current


# --------------------------------------------------------------------- #
# corpus-level shrinking


@dataclass
class ShrunkCase:
    """The minimized corpus plus what it still violates."""

    corpus_dir: pathlib.Path
    violated: list[str]
    stats: ShrinkStats = field(default_factory=ShrinkStats)


def _corpus_lines(directory) -> list[tuple[int, str]]:
    """``(node, line)`` items of every shard, in deterministic order."""
    out: list[tuple[int, str]] = []
    for file in sorted(pathlib.Path(directory).glob("node_*.log")):
        node = int(file.stem.split("_")[1])
        for line in file.read_text().splitlines():
            out.append((node, line))
    return out


def _write_candidate(
    directory, items: Sequence[tuple[int, str]], metadata_src
) -> None:
    """Materialize one candidate store: selected lines, verbatim metadata.

    A node whose every line was dropped loses its shard file entirely
    (absent shards are legal stores — that is what blackout means).
    """
    directory = pathlib.Path(directory)
    if directory.exists():
        shutil.rmtree(directory)
    directory.mkdir(parents=True)
    by_node: dict[int, list[str]] = {}
    for node, line in items:
        by_node.setdefault(node, []).append(line)
    for node, lines in sorted(by_node.items()):
        shard_path(directory, node).write_text(
            "\n".join(lines) + ("\n" if lines else "")
        )
    shutil.copy(
        pathlib.Path(metadata_src) / "operations.json",
        directory / "operations.json",
    )


def shrink_case(
    case: StoreCase,
    violated: Sequence[str],
    scratch_dir,
    *,
    budget: int = 64,
) -> ShrunkCase:
    """Minimize ``case``'s corpus while it still violates ``violated``.

    Two ddmin passes share one evaluation budget: whole shard files first
    (cheap, large steps), then individual lines of the survivors.  The
    minimized corpus is left at ``scratch_dir/minimized``; the final
    violated set is re-derived from a full oracle run over it (a shrink
    can legitimately lose secondary violations — the reproducer records
    what the *minimized* corpus violates).
    """
    scratch = pathlib.Path(scratch_dir)
    trial_dir = scratch / "trial"
    target = set(violated)
    stats = ShrinkStats()

    def failing(items: list[tuple[int, str]]) -> bool:
        stats.trials += 1
        _write_candidate(trial_dir, items, case.corpus_dir)
        trial = StoreCase(
            label=case.label,
            corpus_dir=trial_dir,
            base_dir=case.base_dir,
            truth=case.truth,
            lint_clean=case.lint_clean,
            config=case.config,
        )
        outcome = run_store_oracles(trial, only=target)
        return target <= set(outcome.violated)

    items = _corpus_lines(case.corpus_dir)
    nodes = sorted({node for node, _ in items})
    stats.files_before = len(nodes)
    stats.lines_before = len(items)

    with span("stress.shrink"):
        # pass 1: whole files
        kept_nodes = set(
            ddmin(
                nodes,
                lambda ns: failing([it for it in items if it[0] in set(ns)]),
                budget=budget,
            )
        )
        items = [it for it in items if it[0] in kept_nodes]
        # pass 2: individual lines (whatever budget remains)
        remaining = max(0, budget - stats.trials)
        if remaining:
            items = ddmin(items, failing, budget=remaining)

    minimized = scratch / "minimized"
    _write_candidate(minimized, items, case.corpus_dir)
    final = run_store_oracles(
        StoreCase(
            label=case.label,
            corpus_dir=minimized,
            base_dir=case.base_dir,
            truth=case.truth,
            lint_clean=case.lint_clean,
            config=case.config,
        )
    )
    stats.files_after = len({node for node, _ in items})
    stats.lines_after = len(items)
    if trial_dir.exists():
        shutil.rmtree(trial_dir)
    get_registry().counter("stress.shrink.trials").inc(stats.trials)
    return ShrunkCase(
        corpus_dir=minimized, violated=final.violated, stats=stats
    )
