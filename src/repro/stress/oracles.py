"""Ground-truth and metamorphic oracles for fault-injection campaigns.

Every oracle has a stable ID (``ST*``), registered with the shared findings
engine so campaign reports render through the same
:class:`~repro.check.findings.CheckReport` machinery as ``refill check`` —
CI greps a campaign report for oracle IDs exactly the way it greps a check
report for rule codes.  ``docs/TESTING.md`` documents each ID with its
failure meaning and replay recipe (enforced by a doc-coverage test).

The oracles (paper Table II turned into an automated harness):

- **ST001 crash-safety** — reconstruction must not raise on any corpus the
  ``refill check`` corpus lint passes at warning level (no error findings);
  corpora the lint rejects are recorded as *rejected*, not violations.
- **ST002 determinism** — two identical runs over the same corpus must
  produce byte-identical flows and diagnoses.
- **ST003 backend equivalence** — every configured execution backend must
  agree byte-for-byte with the serial reference on corrupted corpora, not
  only clean ones.
- **ST004 locality** — REFILL is per-packet independent: packets whose
  evidence a corruption did not touch must keep byte-identical flows.
- **ST005 monotonicity** — diagnosis accuracy must not *improve* as log
  loss worsens (checked over a severity ladder by the campaign engine).
- **ST006 differential accuracy** — scored against simulator ground truth,
  cause accuracy and inferred-event precision/recall must clear the
  campaign's floors.
- **ST007 coverage** — the reconstructed packet set must equal the set of
  packets with any surviving evidence (nothing dropped, nothing invented).
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field, replace
from typing import Any, Mapping, Optional

from repro.analysis.accuracy import cause_accuracy, event_recovery
from repro.check.findings import Finding, error, register_rules
from repro.core.backends import make_backend
from repro.core.diagnosis import LossReport
from repro.core.serialize import flow_to_dict
from repro.core.session import ReconstructionSession
from repro.events.event import Event
from repro.events.log import NodeLog
from repro.events.merge import group_by_packet
from repro.events.packet import PacketKey
from repro.events.store import load_store
from repro.obs import get_registry, span
from repro.simnet.truth import GroundTruth

#: Stable oracle catalogue; every ID is documented in ``docs/TESTING.md``
#: (doc-coverage-enforced) and usable as a :class:`Finding` code.
ORACLES: dict[str, str] = {
    "ST001": "reconstruction crashed on a corpus the lint passes at warning level",
    "ST002": "nondeterminism: identical runs produced different flows or diagnoses",
    "ST003": "backend divergence: a backend disagrees with the serial reference",
    "ST004": "locality violation: a packet untouched by corruption changed flows",
    "ST005": "monotonicity violation: accuracy improved as log loss worsened",
    "ST006": "differential accuracy below the campaign floor",
    "ST007": "coverage mismatch: surviving evidence and flows name different packets",
}

register_rules(ORACLES)


@dataclass(frozen=True)
class OracleConfig:
    """Thresholds and comparison set of one campaign's oracle bundle."""

    #: Backends compared byte-for-byte against the serial reference.
    backends: tuple[str, ...] = ("incremental",)
    #: Differential floors (only scored when ground truth is available).
    min_cause_accuracy: float = 0.3
    min_event_precision: float = 0.3
    min_event_recall: float = 0.05
    #: Slack for the severity-ladder accuracy comparison (ST005).
    monotonicity_tolerance: float = 0.05
    #: Loss-scale ladder driven through :meth:`LogLossSpec.scaled`.
    monotonicity_factors: tuple[float, ...] = (0.0, 1.0, 2.0, 4.0)

    def to_json(self) -> dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_json(cls, data: Mapping[str, Any]) -> "OracleConfig":
        known = {f: data[f] for f in data}
        for key in ("backends", "monotonicity_factors"):
            if key in known:
                known[key] = tuple(known[key])
        return replace(cls(), **known)


@dataclass
class CaseOutcome:
    """What one case's oracle bundle concluded."""

    findings: list[Finding] = field(default_factory=list)
    #: Deterministic scalar observations (accuracy scores, packet counts).
    metrics: dict[str, Any] = field(default_factory=dict)
    #: The store was unusable (lint errors + load/reconstruct failure) —
    #: expected behavior, not a violation.
    rejected: bool = False
    reason: str = ""

    @property
    def violated(self) -> list[str]:
        return sorted({f.code for f in self.findings})


# --------------------------------------------------------------------- #
# fingerprints (byte-exact comparison currency of the metamorphic oracles)


def flow_fingerprints(flows) -> dict[str, str]:
    """Canonical JSON per packet — byte-identical iff the flows are."""
    return {
        str(p): json.dumps(flow_to_dict(f), sort_keys=True) for p, f in flows.items()
    }


def report_fingerprints(reports: Mapping[PacketKey, LossReport]) -> dict[str, str]:
    return {
        str(p): f"{r.cause}@{r.position}" for p, r in reports.items()
    }


def _event_fingerprint(e: Event) -> str:
    """Canonical event string, total over *decoded* events.

    Not the codec encoder: a tolerantly-decoded garbled line can carry
    values the strict encoder refuses (e.g. a ``=`` inside a value), and
    the locality oracle must fingerprint whatever the loader accepted.
    Timestamps are kept — a corruption that only altered an event's time
    still "touched" the packet (its flow may carry times).
    """
    return repr((e.etype, e.node, e.src, e.dst, str(e.packet), e.time, e.info))


def evidence_fingerprints(logs: Mapping[int, NodeLog]) -> dict[PacketKey, str]:
    """Per-packet canonical view of the evidence a corpus holds for it."""
    grouped = group_by_packet(logs)
    return {
        packet: json.dumps(
            {
                str(node): [_event_fingerprint(e) for e in events]
                for node, events in sorted(by_node.items())
            },
            sort_keys=True,
        )
        for packet, by_node in grouped.items()
    }


def _first_diff(a: Mapping[str, str], b: Mapping[str, str]) -> str:
    for key in sorted(set(a) | set(b)):
        if a.get(key) != b.get(key):
            return key
    return "<none>"


# --------------------------------------------------------------------- #
# the per-case oracle bundle


@dataclass
class StoreCase:
    """One corpus under test plus everything the oracles may compare against."""

    label: str
    corpus_dir: Any  # path-like
    #: Pre-fault twin of the corpus (enables the locality oracle).
    base_dir: Optional[Any] = None
    #: Simulator ground truth (enables the differential oracle).
    truth: Optional[GroundTruth] = None
    #: Whether the corpus lint found zero error-severity findings.
    lint_clean: bool = True
    config: OracleConfig = field(default_factory=OracleConfig)


def _reconstruct(directory, backend_name: str = "serial"):
    """One fresh-session reconstruction + diagnosis over a store directory."""
    loaded = load_store(directory)
    session = ReconstructionSession(
        backend=make_backend(backend_name),
        delivery_node=loaded.metadata.base_station,
    )
    result = session.run(loaded.logs)
    return loaded, result.flows, result.reports


def run_store_oracles(
    case: StoreCase, *, only: Optional[set[str]] = None
) -> CaseOutcome:
    """Run every store-applicable oracle over one corpus.

    Campaign- and replay-shared: ST001/ST002/ST003/ST007 always, ST004 when
    a pre-fault twin is present, ST006 when ground truth is present.  ST005
    needs the collection pipeline and lives in the campaign engine.

    ``only`` restricts the bundle to a subset of oracle IDs — the shrinker
    uses it to re-check just the violated oracles per reduction trial
    (ST001, being a property of the shared reconstruction, always runs).
    """
    active = set(ORACLES) if only is None else set(only)
    outcome = CaseOutcome()
    registry = get_registry()
    with span("stress.oracles"):
        try:
            loaded, flows, reports = _reconstruct(case.corpus_dir)
        except Exception as exc:  # noqa: BLE001 — the crash oracle's whole point
            if case.lint_clean:
                outcome.findings.append(
                    error(
                        "ST001",
                        case.label,
                        f"reconstruction raised {type(exc).__name__}: {exc}",
                    )
                )
            else:
                outcome.rejected = True
                outcome.reason = f"{type(exc).__name__}: {exc}"
            registry.counter("stress.cases.rejected").inc(int(outcome.rejected))
            return outcome

        reference = flow_fingerprints(flows)
        ref_reports = report_fingerprints(reports)
        outcome.metrics["packets"] = len(flows)
        outcome.metrics["corrupt_lines"] = sum(loaded.corrupt_lines.values())

        if "ST002" in active:
            _check_determinism(case, reference, ref_reports, outcome)
        if "ST003" in active:
            _check_backends(case, reference, ref_reports, outcome)
        if "ST007" in active:
            _check_coverage(case, loaded.logs, flows, outcome)
        if case.base_dir is not None and "ST004" in active:
            _check_locality(case, loaded.logs, reference, outcome)
        if case.truth is not None and "ST006" in active:
            _check_differential(case, loaded, flows, reports, outcome)

    registry.counter("stress.oracles.checked").inc()
    if outcome.findings:
        registry.counter("stress.violations").inc(len(outcome.findings))
    return outcome


def _check_determinism(case, reference, ref_reports, outcome) -> None:
    _, flows2, reports2 = _reconstruct(case.corpus_dir)
    if flow_fingerprints(flows2) != reference:
        outcome.findings.append(
            error(
                "ST002",
                case.label,
                "re-running reconstruction changed flow "
                f"{_first_diff(reference, flow_fingerprints(flows2))}",
            )
        )
    elif report_fingerprints(reports2) != ref_reports:
        outcome.findings.append(
            error(
                "ST002",
                case.label,
                "re-running diagnosis changed packet "
                f"{_first_diff(ref_reports, report_fingerprints(reports2))}",
            )
        )


def _check_backends(case, reference, ref_reports, outcome) -> None:
    for backend_name in case.config.backends:
        _, flows_b, reports_b = _reconstruct(case.corpus_dir, backend_name)
        got = flow_fingerprints(flows_b)
        if got != reference:
            outcome.findings.append(
                error(
                    "ST003",
                    case.label,
                    f"backend {backend_name!r} diverges from serial on flow "
                    f"{_first_diff(reference, got)}",
                )
            )
        elif report_fingerprints(reports_b) != ref_reports:
            outcome.findings.append(
                error(
                    "ST003",
                    case.label,
                    f"backend {backend_name!r} diverges from serial on diagnosis "
                    f"{_first_diff(ref_reports, report_fingerprints(reports_b))}",
                )
            )


def _check_coverage(case, logs, flows, outcome) -> None:
    evidence = {
        e.packet for log in logs.values() for e in log if e.packet is not None
    }
    missing = sorted(evidence - set(flows))
    invented = sorted(set(flows) - evidence)
    if missing:
        outcome.findings.append(
            error(
                "ST007",
                case.label,
                f"{len(missing)} packet(s) with surviving evidence have no "
                f"flow (first: {missing[0]})",
            )
        )
    if invented:
        outcome.findings.append(
            error(
                "ST007",
                case.label,
                f"{len(invented)} flow(s) cite packets with no surviving "
                f"evidence (first: {invented[0]})",
            )
        )


def _check_locality(case, corrupt_logs, reference, outcome) -> None:
    base_loaded, base_flows, _ = _reconstruct(case.base_dir)
    base_evidence = evidence_fingerprints(base_loaded.logs)
    corrupt_evidence = evidence_fingerprints(corrupt_logs)
    untouched = [
        p
        for p, fp in sorted(base_evidence.items())
        if corrupt_evidence.get(p) == fp
    ]
    base_fp = flow_fingerprints(base_flows)
    changed = [
        p for p in untouched if reference.get(str(p)) != base_fp.get(str(p))
    ]
    outcome.metrics["untouched_packets"] = len(untouched)
    if changed:
        outcome.findings.append(
            error(
                "ST004",
                case.label,
                f"{len(changed)} untouched packet(s) changed flows "
                f"(first: {changed[0]})",
            )
        )


def _check_differential(case, loaded, flows, reports, outcome) -> None:
    acc, position_acc, _confusion = cause_accuracy(
        reports,
        case.truth,
        sink=loaded.metadata.sink,
        outage_attributed=False,
    )
    precision, recall = event_recovery(flows, loaded.logs, case.truth)
    outcome.metrics.update(
        cause_accuracy=round(acc, 4),
        position_accuracy=round(position_acc, 4),
        event_precision=round(precision, 4),
        event_recall=round(recall, 4),
    )
    cfg = case.config
    for name, value, floor in (
        ("cause accuracy", acc, cfg.min_cause_accuracy),
        ("event precision", precision, cfg.min_event_precision),
        ("event recall", recall, cfg.min_event_recall),
    ):
        if value < floor:
            outcome.findings.append(
                error(
                    "ST006",
                    case.label,
                    f"{name} {value:.3f} below the campaign floor {floor:.3f}",
                )
            )
