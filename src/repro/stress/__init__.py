"""Fault-injection stress harness: corrupt stores, oracles, shrinking.

The ``refill stress`` subcommand drives :func:`run_campaign`; the pieces
compose independently — feed any store directory to
:func:`run_store_oracles`, any failing case to :func:`shrink_case`, and
replay any written reproducer with :func:`replay`.
"""

from repro.stress.artifact import (
    REPRO_FORMAT,
    ReplayResult,
    Reproducer,
    load_reproducer,
    replay,
    write_reproducer,
)
from repro.stress.campaign import (
    CampaignConfig,
    CampaignResult,
    CaseRecord,
    LintSummary,
    lint_store,
    run_campaign,
)
from repro.stress.faults import (
    FAULT_PROFILES,
    CorruptMetadata,
    Degrade,
    DuplicateRecords,
    FaultOp,
    FaultPlan,
    GarbleLines,
    NodeBlackout,
    ReorderWindow,
    op_from_json,
    sample_plan,
)
from repro.stress.oracles import (
    ORACLES,
    CaseOutcome,
    OracleConfig,
    StoreCase,
    run_store_oracles,
)
from repro.stress.shrink import ShrinkStats, ShrunkCase, ddmin, shrink_case

__all__ = [
    "CampaignConfig",
    "CampaignResult",
    "CaseOutcome",
    "CaseRecord",
    "CorruptMetadata",
    "Degrade",
    "DuplicateRecords",
    "FAULT_PROFILES",
    "FaultOp",
    "FaultPlan",
    "GarbleLines",
    "LintSummary",
    "NodeBlackout",
    "ORACLES",
    "OracleConfig",
    "REPRO_FORMAT",
    "ReorderWindow",
    "ReplayResult",
    "Reproducer",
    "ShrinkStats",
    "ShrunkCase",
    "StoreCase",
    "ddmin",
    "lint_store",
    "load_reproducer",
    "op_from_json",
    "replay",
    "run_campaign",
    "run_store_oracles",
    "sample_plan",
    "shrink_case",
    "write_reproducer",
]
