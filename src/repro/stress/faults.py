"""Corruption operators over on-disk log stores.

:mod:`repro.lognet.loss` models losses the *paper* describes (write
failure, crash truncation, chunk loss, node loss) on in-memory logs.  The
operators here go beyond that model and attack the **store itself** — the
text files an analyst actually receives — which is what exercises the
tolerant scanner, the corpus lint and the reconstruction layer end to end:

- :class:`GarbleLines` — byte-level line damage (truncated flash pages,
  bit flips, separator loss) feeding :func:`repro.events.codec.scan_log_text`;
- :class:`DuplicateRecords` — retransmitted collection chunks append the
  same records twice;
- :class:`ReorderWindow` — bounded within-node reordering (collection
  races, log-buffer draining);
- :class:`NodeBlackout` — whole shard files vanish after collection
  (beyond ``node_loss_p``, which models loss *in transit*);
- :class:`CorruptMetadata` — ``operations.json`` damage;
- :class:`Degrade` — the :class:`~repro.lognet.loss.LogLossSpec` pipeline
  re-applied to the stored logs, so classic record loss composes with the
  store-level operators in one plan.

Every operator is deterministic under a :class:`~repro.util.rng.RngStreams`
family: the plan derives one named stream per (operator index, kind) and
per-node draws happen in sorted node order.  Plans serialize to JSON and
back, which is how reproducer artifacts record what was done to a corpus.
"""

from __future__ import annotations

import json
import random
from dataclasses import asdict, dataclass, fields
from typing import Any, Iterable, Mapping, Sequence

from repro.events.codec import encode_event
from repro.events.store import iter_store_logs
from repro.lognet.loss import LogLossSpec, apply_losses
from repro.util.rng import RngStreams

#: Characters injected by the garbler — a mix of separators, control bytes
#: and multi-byte text, chosen to stress every branch of the decoder.
_NOISE = "=\x00\x7fÿ  \t#"


def _shard_files(directory) -> list:
    """``(node, path)`` pairs of every shard in the store, sorted by node."""
    import pathlib

    out = []
    for file in sorted(pathlib.Path(directory).glob("node_*.log")):
        out.append((int(file.stem.split("_")[1]), file))
    return out


def _read_lines(file) -> list[str]:
    return file.read_text().splitlines()


def _write_lines(file, lines: Sequence[str]) -> None:
    file.write_text("\n".join(lines) + ("\n" if lines else ""))


@dataclass(frozen=True)
class FaultOp:
    """Base class: one deterministic mutation of a store directory."""

    kind = "base"

    def apply(self, directory, stream: random.Random) -> None:
        raise NotImplementedError

    def to_json(self) -> dict[str, Any]:
        return {"kind": self.kind, **asdict(self)}


@dataclass(frozen=True)
class GarbleLines(FaultOp):
    """Damage individual log lines so they no longer decode (usually).

    Each line is independently hit with probability ``p``; the damage is a
    random truncation, a character flip, noise injection, or the loss of
    every ``=`` separator.  The tolerant scanner must count the wreckage as
    ``DecodeIssue`` lines and carry on.
    """

    p: float = 0.05
    kind = "garble"

    def apply(self, directory, stream: random.Random) -> None:
        for _node, file in _shard_files(directory):
            lines = _read_lines(file)
            out = []
            for line in lines:
                if line and stream.random() < self.p:
                    line = self._mutate(line, stream)
                out.append(line)
            _write_lines(file, out)

    @staticmethod
    def _mutate(line: str, stream: random.Random) -> str:
        mode = stream.randrange(4)
        if mode == 0:  # truncated flash page
            return line[: stream.randrange(len(line))]
        if mode == 1:  # bit flip
            i = stream.randrange(len(line))
            return line[:i] + stream.choice(_NOISE) + line[i + 1 :]
        if mode == 2:  # noise burst
            i = stream.randrange(len(line) + 1)
            burst = "".join(stream.choice(_NOISE) for _ in range(stream.randint(1, 6)))
            return line[:i] + burst + line[i:]
        return line.replace("=", " ")  # separator loss


@dataclass(frozen=True)
class DuplicateRecords(FaultOp):
    """Append-duplicate individual records (retransmitted log chunks)."""

    p: float = 0.03
    max_copies: int = 2
    kind = "duplicate"

    def apply(self, directory, stream: random.Random) -> None:
        for _node, file in _shard_files(directory):
            out: list[str] = []
            for line in _read_lines(file):
                out.append(line)
                if line and stream.random() < self.p:
                    out.extend([line] * stream.randint(1, self.max_copies))
            _write_lines(file, out)


@dataclass(frozen=True)
class ReorderWindow(FaultOp):
    """Shuffle records inside bounded windows of a node's log.

    Models collection races and out-of-order log-buffer draining: the
    *global* position of a record is roughly preserved but its local order
    is scrambled — the corpus lint flags the timestamp regressions
    (``LC005`` warnings) and reconstruction must still converge.
    """

    window: int = 6
    p: float = 0.2
    kind = "reorder"

    def apply(self, directory, stream: random.Random) -> None:
        if self.window < 2:
            return
        for _node, file in _shard_files(directory):
            lines = _read_lines(file)
            for start in range(0, len(lines), self.window):
                if stream.random() < self.p:
                    chunk = lines[start : start + self.window]
                    stream.shuffle(chunk)
                    lines[start : start + self.window] = chunk
            _write_lines(file, lines)


@dataclass(frozen=True)
class NodeBlackout(FaultOp):
    """Delete whole shard files — the log existed but never reached the
    analyst's store (operator error, disk loss after collection)."""

    count: int = 1
    immune: tuple[int, ...] = ()
    kind = "blackout"

    def apply(self, directory, stream: random.Random) -> None:
        candidates = [
            (node, file)
            for node, file in _shard_files(directory)
            if node not in self.immune
        ]
        for _node, file in stream.sample(candidates, min(self.count, len(candidates))):
            file.unlink()


@dataclass(frozen=True)
class CorruptMetadata(FaultOp):
    """Damage ``operations.json`` (``drop_key`` | ``bad_json`` | ``wrong_type``).

    Always an ``LC006`` lint error, so the crash-safety oracle's lint gate
    excludes these corpora — the campaign instead records that the store
    was *rejected* before reconstruction, which is itself the correct
    behavior under metadata loss.
    """

    mode: str = "drop_key"
    kind = "metadata"

    def apply(self, directory, stream: random.Random) -> None:
        import pathlib

        path = pathlib.Path(directory) / "operations.json"
        if self.mode == "bad_json":
            path.write_text('{"sink": ')
            return
        data = json.loads(path.read_text())
        if self.mode == "drop_key":
            data.pop(stream.choice(("sink", "base_station", "gen_interval")), None)
        elif self.mode == "wrong_type":
            data["gen_interval"] = "soon"
        else:
            raise ValueError(f"unknown metadata corruption mode {self.mode!r}")
        path.write_text(json.dumps(data, indent=2) + "\n")


@dataclass(frozen=True)
class Degrade(FaultOp):
    """Re-run the classic :class:`LogLossSpec` pipeline over the stored logs.

    Lets paper-model losses (write failure, crash truncation, chunk loss)
    compose with the store-level operators inside a single fault plan.
    """

    write_fail_p: float = 0.0
    crash_p: float = 0.0
    chunk_loss_p: float = 0.0
    node_loss_p: float = 0.0
    immune: tuple[int, ...] = ()
    kind = "degrade"

    def spec(self) -> LogLossSpec:
        return LogLossSpec(
            write_fail_p=self.write_fail_p,
            crash_p=self.crash_p,
            chunk_loss_p=self.chunk_loss_p,
            node_loss_p=self.node_loss_p,
            immune=frozenset(self.immune),
        )

    def apply(self, directory, stream: random.Random) -> None:
        # decode shards directly (not load_store): degrading must compose
        # with a prior CorruptMetadata op, which load_store would choke on
        logs = {node: log for node, log, _bad in iter_store_logs(directory)}
        degraded = apply_losses(
            logs, self.spec(), RngStreams(stream.randrange(2**63))
        )
        for node, file in _shard_files(directory):
            if node not in degraded:
                file.unlink()  # node_loss_p: the whole shard is gone
            else:
                _write_lines(file, _encode_tolerant(degraded[node]))


def _encode_tolerant(log) -> list[str]:
    """Re-encode a log, dropping events that no longer round-trip.

    A prior garble can leave a line the *tolerant decoder* accepts but the
    strict encoder refuses (e.g. a value containing ``=``); when a Degrade
    op follows, such an event simply counts as one more lost record.
    """
    out: list[str] = []
    for event in log:
        try:
            out.append(encode_event(event))
        except ValueError:
            continue
    return out


_OP_KINDS = {
    op.kind: op
    for op in (
        GarbleLines,
        DuplicateRecords,
        ReorderWindow,
        NodeBlackout,
        CorruptMetadata,
        Degrade,
    )
}


def op_from_json(data: Mapping[str, Any]) -> FaultOp:
    """Inverse of :meth:`FaultOp.to_json`."""
    payload = dict(data)
    kind = payload.pop("kind", None)
    cls = _OP_KINDS.get(kind)
    if cls is None:
        raise ValueError(f"unknown fault-op kind {kind!r}")
    known = {f.name for f in fields(cls)}
    unknown = set(payload) - known
    if unknown:
        raise ValueError(f"unknown fields for {kind!r} op: {sorted(unknown)}")
    if "immune" in payload:
        payload["immune"] = tuple(payload["immune"])
    return cls(**payload)


@dataclass(frozen=True)
class FaultPlan:
    """An ordered composition of fault operators."""

    ops: tuple[FaultOp, ...] = ()

    def apply(self, directory, rng: RngStreams) -> None:
        """Mutate the store at ``directory`` in place, deterministically.

        Each operator draws from its own named stream (index + kind), so
        inserting an op never perturbs the draws of the others.
        """
        for i, op in enumerate(self.ops):
            op.apply(directory, rng.stream(f"fault:{i}:{op.kind}"))

    def to_json(self) -> list[dict[str, Any]]:
        return [op.to_json() for op in self.ops]

    @classmethod
    def from_json(cls, data: Iterable[Mapping[str, Any]]) -> "FaultPlan":
        return cls(tuple(op_from_json(item) for item in data))

    def describe(self) -> str:
        return "+".join(op.kind for op in self.ops) or "none"


# --------------------------------------------------------------------- #
# plan sampling (campaign engine)

#: Named operator pools the campaign samples from.  ``clean`` runs the
#: oracles over unmodified corpora (the CI clean-campaign smoke); ``mild``
#: stays within what a healthy deployment could plausibly produce; ``harsh``
#: adds blackouts and metadata damage.
FAULT_PROFILES = ("clean", "mild", "harsh")


def sample_plan(
    stream: random.Random,
    *,
    profile: str = "mild",
    immune: tuple[int, ...] = (),
) -> FaultPlan:
    """Draw a fault plan for one campaign case.

    ``immune`` nodes are protected from blackout (the campaign passes the
    base station, mirroring the paper's reliable PC-side log).
    """
    if profile == "clean":
        return FaultPlan()
    ops: list[FaultOp] = []
    if stream.random() < 0.7:
        ops.append(GarbleLines(p=round(stream.uniform(0.01, 0.12), 3)))
    if stream.random() < 0.5:
        ops.append(DuplicateRecords(p=round(stream.uniform(0.01, 0.08), 3)))
    if stream.random() < 0.5:
        ops.append(
            ReorderWindow(
                window=stream.randint(3, 10), p=round(stream.uniform(0.05, 0.4), 3)
            )
        )
    if stream.random() < 0.4:
        ops.append(
            Degrade(
                write_fail_p=round(stream.uniform(0.0, 0.08), 3),
                chunk_loss_p=round(stream.uniform(0.0, 0.08), 3),
                immune=immune,
            )
        )
    if profile == "harsh":
        if stream.random() < 0.5:
            ops.append(NodeBlackout(count=stream.randint(1, 3), immune=immune))
        if stream.random() < 0.2:
            ops.append(
                CorruptMetadata(
                    mode=stream.choice(("drop_key", "bad_json", "wrong_type"))
                )
            )
    elif profile != "mild":
        raise ValueError(f"unknown fault profile {profile!r}")
    return FaultPlan(tuple(ops))
