"""Structured, level-gated logging to stderr.

Replaces the CLI's ad-hoc ``print(..., file=sys.stderr)`` narration with
machine-parseable lines.  Two output formats, selected globally:

- ``kv`` (default): ``level=info logger=refill.cli event=reconstructing nodes=20``
- ``json``: one JSON object per line, same fields.

Loggers are cheap named handles (:func:`get_logger`); ``bind(**fields)``
returns a child carrying context fields on every line.  Gating happens at
call time against a single process-wide config (:func:`configure_logging`),
so the CLI's ``-v``/``-q`` flags flip one integer.  The stream is resolved
at emit time (``sys.stderr`` unless overridden) so pytest capture and
stderr redirection both see the output.
"""

from __future__ import annotations

import json
import sys
import time
from dataclasses import dataclass
from typing import IO, Optional

DEBUG = 10
INFO = 20
WARNING = 30
ERROR = 40

_LEVEL_NAMES = {DEBUG: "debug", INFO: "info", WARNING: "warning", ERROR: "error"}
_NAME_LEVELS = {name: level for level, name in _LEVEL_NAMES.items()}


@dataclass
class LogConfig:
    """Process-wide logging configuration."""

    level: int = INFO
    json_lines: bool = False
    #: ``None`` -> resolve ``sys.stderr`` at emit time.
    stream: Optional[IO[str]] = None
    #: Prefix each line with ``ts=<epoch>`` (off by default: CLI progress
    #: narration reads better without it, and tests stay deterministic).
    timestamps: bool = False


_CONFIG = LogConfig()


def configure_logging(
    level: int | str | None = None,
    *,
    json_lines: Optional[bool] = None,
    stream: Optional[IO[str]] = None,
    timestamps: Optional[bool] = None,
) -> LogConfig:
    """Update the global config; unspecified fields are left alone."""
    if level is not None:
        if isinstance(level, str):
            try:
                level = _NAME_LEVELS[level.lower()]
            except KeyError:
                raise ValueError(f"unknown log level {level!r}") from None
        _CONFIG.level = level
    if json_lines is not None:
        _CONFIG.json_lines = json_lines
    if stream is not None:
        _CONFIG.stream = stream
    if timestamps is not None:
        _CONFIG.timestamps = timestamps
    return _CONFIG


def reset_logging() -> None:
    """Restore defaults (tests)."""
    global _CONFIG
    _CONFIG.level = INFO
    _CONFIG.json_lines = False
    _CONFIG.stream = None
    _CONFIG.timestamps = False


def _format_value(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.6g}"
    text = str(value)
    if text == "" or any(c in text for c in ' ="'):
        return json.dumps(text)
    return text


class StructLogger:
    """A named logger with optional bound context fields."""

    __slots__ = ("name", "fields")

    def __init__(self, name: str, fields: Optional[dict] = None) -> None:
        self.name = name
        self.fields = fields or {}

    def bind(self, **fields: object) -> "StructLogger":
        """Child logger that adds ``fields`` to every line."""
        return StructLogger(self.name, {**self.fields, **fields})

    # ------------------------------------------------------------------ #

    def log(self, level: int, event: str, **fields: object) -> None:
        if level < _CONFIG.level:
            return
        record: dict[str, object] = {
            "level": _LEVEL_NAMES.get(level, str(level)),
            "logger": self.name,
            "event": event,
        }
        if _CONFIG.timestamps:
            record = {"ts": round(time.time(), 3), **record}
        record.update(self.fields)
        record.update(fields)
        stream = _CONFIG.stream if _CONFIG.stream is not None else sys.stderr
        if _CONFIG.json_lines:
            line = json.dumps(record)
        else:
            line = " ".join(f"{k}={_format_value(v)}" for k, v in record.items())
        print(line, file=stream)

    def debug(self, event: str, **fields: object) -> None:
        self.log(DEBUG, event, **fields)

    def info(self, event: str, **fields: object) -> None:
        self.log(INFO, event, **fields)

    def warning(self, event: str, **fields: object) -> None:
        self.log(WARNING, event, **fields)

    def error(self, event: str, **fields: object) -> None:
        self.log(ERROR, event, **fields)


def get_logger(name: str) -> StructLogger:
    """Named logger handle (no global logger table; handles are cheap)."""
    return StructLogger(name)
