"""Prometheus text exposition of a :class:`MetricsSnapshot`.

Renders any snapshot in the Prometheus text format (``text/plain;
version=0.0.4``): counters and gauges one sample per label set, histograms
as *summaries* (``{quantile="0.5"}`` / ``{quantile="0.95"}`` samples plus
``_count`` / ``_sum``, with ``_min`` / ``_max`` as companion gauges).  The
daemon serves this from ``GET /metrics`` under content negotiation (JSON
stays the default), making ``refill serve`` scrapeable by stock Prometheus
— and, once the daemon shards, per-shard scrapes merge with standard
tooling instead of bespoke JSON plumbing.

Snapshot keys are the registry's flat ``name{label=value,...}`` strings;
dots in metric names become underscores (``serve.ingest.lines`` →
``serve_ingest_lines``) and label values are escaped per the format spec.
Output is deterministic: families sorted by name, samples sorted by label
set — two identical snapshots render byte-identically.

:func:`parse_exposition` is the matching reader — enough of a parser to
round-trip our own output (the ``tests/obs/test_promtext.py`` contract)
and to fold a scraped shard's families back into floats.
"""

from __future__ import annotations

import re
from typing import Mapping, Optional

from repro.obs.registry import HistogramSummary, MetricsSnapshot

#: The content type Prometheus scrapers send/expect for this format.
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_BAD_NAME_CHARS = re.compile(r"[^a-zA-Z0-9_:]")

#: Summary quantiles rendered per histogram (matches HistogramSummary).
_QUANTILES = (("0.5", "p50"), ("0.95", "p95"))


def metric_name(name: str) -> str:
    """A raw registry name as a valid Prometheus metric name."""
    sane = _BAD_NAME_CHARS.sub("_", name)
    if not sane or sane[0].isdigit():
        sane = "_" + sane
    return sane


def escape_label_value(value: str) -> str:
    return value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")


def _unescape_label_value(value: str) -> str:
    out: list[str] = []
    it = iter(value)
    for ch in it:
        if ch != "\\":
            out.append(ch)
            continue
        nxt = next(it, "")
        out.append({"n": "\n", '"': '"', "\\": "\\"}.get(nxt, "\\" + nxt))
    return "".join(out)


def split_flat_key(key: str) -> tuple[str, tuple[tuple[str, str], ...]]:
    """A snapshot's flat ``name{label=value,...}`` key into name + labels."""
    name, brace, rest = key.partition("{")
    if not brace:
        return key, ()
    labels = []
    for part in rest.rstrip("}").split(","):
        label, _, value = part.partition("=")
        labels.append((label, value))
    return name, tuple(labels)


def _format_value(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _sample(family: str, labels: tuple[tuple[str, str], ...], value: float) -> str:
    if not labels:
        return f"{family} {_format_value(value)}"
    inner = ",".join(
        f'{metric_name(k)}="{escape_label_value(v)}"' for k, v in labels
    )
    return f"{family}{{{inner}}} {_format_value(value)}"


def render_snapshot(snapshot: MetricsSnapshot) -> str:
    """The snapshot in Prometheus text exposition format (deterministic)."""
    # family -> (type, [(labels, value)])
    families: dict[str, tuple[str, list[tuple[tuple[tuple[str, str], ...], float]]]] = {}

    def add(family: str, ptype: str, labels, value: float) -> None:
        entry = families.get(family)
        if entry is None:
            entry = families[family] = (ptype, [])
        entry[1].append((labels, value))

    for key, count in snapshot.counters.items():
        name, labels = split_flat_key(key)
        add(metric_name(name), "counter", labels, float(count))
    for key, value in snapshot.gauges.items():
        name, labels = split_flat_key(key)
        add(metric_name(name), "gauge", labels, value)
    for key, summary in snapshot.histograms.items():
        name, labels = split_flat_key(key)
        family = metric_name(name)
        for quantile, attr in _QUANTILES:
            q = getattr(summary, attr)
            if q is not None:
                add(family, "summary", labels + (("quantile", quantile),), q)
        add(family + "_count", "summary+count", labels, float(summary.count))
        add(family + "_sum", "summary+sum", labels, summary.total)
        if summary.min is not None:
            add(family + "_min", "gauge", labels, summary.min)
        if summary.max is not None:
            add(family + "_max", "gauge", labels, summary.max)

    lines: list[str] = []
    for family in sorted(families):
        ptype, samples = families[family]
        if "+" not in ptype:  # _count/_sum ride their summary without a TYPE
            lines.append(f"# TYPE {family} {ptype}")
        for labels, value in sorted(samples):
            lines.append(_sample(family, labels, value))
    return "\n".join(lines) + ("\n" if lines else "")


# --------------------------------------------------------------------- #
# reading the format back

_SAMPLE_LINE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r"\s+(?P<value>\S+)\s*$"
)
_LABEL = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def parse_exposition(
    text: str,
) -> tuple[dict[str, dict[tuple[tuple[str, str], ...], float]], dict[str, str]]:
    """Parse exposition text into ``(samples, types)``.

    ``samples`` maps family name -> {sorted label pairs -> value};
    ``types`` maps family name -> declared ``# TYPE``.  Raises
    ``ValueError`` on lines that are neither comments nor valid samples.
    """
    samples: dict[str, dict[tuple[tuple[str, str], ...], float]] = {}
    types: dict[str, str] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split()
            if len(parts) >= 4 and parts[1] == "TYPE":
                types[parts[2]] = parts[3]
            continue
        match = _SAMPLE_LINE.match(line)
        if match is None:
            raise ValueError(f"line {lineno}: unparseable sample {line!r}")
        labels: list[tuple[str, str]] = []
        raw = match.group("labels")
        if raw:
            consumed = 0
            for pair in _LABEL.finditer(raw):
                labels.append((pair.group(1), _unescape_label_value(pair.group(2))))
                consumed = pair.end()
            leftover = raw[consumed:].strip(", ")  # noqa: B005 - char-set strip of delimiters
            if leftover:
                raise ValueError(f"line {lineno}: bad label syntax {leftover!r}")
        value = float(match.group("value"))
        samples.setdefault(match.group("name"), {})[tuple(sorted(labels))] = value
    return samples, types


def summaries_from_samples(
    samples: Mapping[str, Mapping[tuple[tuple[str, str], ...], float]],
    family: str,
    labels: tuple[tuple[str, str], ...] = (),
) -> Optional[HistogramSummary]:
    """Reassemble one histogram's summary from parsed exposition samples."""
    base = samples.get(family, {})
    count = samples.get(family + "_count", {}).get(labels)
    total = samples.get(family + "_sum", {}).get(labels)
    if count is None or total is None:
        return None
    quantiles = {}
    for quantile, attr in _QUANTILES:
        quantiles[attr] = base.get(tuple(sorted(labels + (("quantile", quantile),))))
    return HistogramSummary(
        count=int(count),
        total=total,
        min=samples.get(family + "_min", {}).get(labels),
        max=samples.get(family + "_max", {}).get(labels),
        p50=quantiles["p50"],
        p95=quantiles["p95"],
    )
