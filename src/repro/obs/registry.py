"""Dependency-free metrics registry: counters, gauges, histograms.

The registry is the measurement substrate for the whole pipeline.  Design
constraints, in order:

1. **Hot-path cheap.**  Instrument handles (:class:`Counter`,
   :class:`Histogram`) are bound once and incremented with a plain
   attribute update — no dict lookup, no lock, no string formatting per
   event.  A :class:`NullRegistry` provides no-op handles with the same
   interface so instrumented code needs no ``if enabled`` branches; the
   zero-overhead guard in ``benchmarks/bench_measurement.py`` keeps the
   real registry within 5% of the no-op path.
2. **Mergeable.**  ``core/parallel.py`` workers collect into private
   registries and the parent folds them back with :meth:`MetricsRegistry.merge`
   — counters add, gauges keep the incoming value, histogram samples
   concatenate and re-compact to the sample cap (count/sum/min/max stay
   exact).
3. **Deterministic snapshots.**  :meth:`MetricsRegistry.snapshot` returns a
   :class:`MetricsSnapshot` whose JSON form has sorted keys and a stable
   ``name{label=value,...}`` flat-key scheme, so two runs over the same
   store diff cleanly.

The *active* registry is context-local (:func:`get_registry` /
:func:`use_registry`), defaulting to a process-wide enabled registry.
"""

from __future__ import annotations

import json
import math
import time
from contextlib import contextmanager
from contextvars import ContextVar, Token
from dataclasses import dataclass
from typing import Any, Iterator, Mapping, Optional, Sequence

#: Sorted ``(key, value)`` pairs — the canonical form of a label set.
LabelKey = tuple[tuple[str, str], ...]

#: Histograms keep at most this many raw samples for quantile estimation;
#: count/sum/min/max remain exact past the cap.  Retention is a systematic
#: stride subsample (keep every 2^k-th observation, doubling k whenever the
#: buffer fills) — deterministic (no reservoir RNG), bounded for
#: arbitrarily long-running processes, and covering the whole stream rather
#: than just its first minutes.
HISTOGRAM_SAMPLE_CAP = 4096


def _label_key(labels: Mapping[str, object]) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _flat_name(name: str, key: LabelKey) -> str:
    if not key:
        return name
    inner = ",".join(f"{k}={v}" for k, v in key)
    return f"{name}{{{inner}}}"


class Counter:
    """Monotonically increasing integer."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelKey = ()) -> None:
        self.name = name
        self.labels = labels
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({_flat_name(self.name, self.labels)}={self.value})"


class Gauge:
    """Last-write-wins float."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelKey = ()) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def add(self, delta: float) -> None:
        self.value += float(delta)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Gauge({_flat_name(self.name, self.labels)}={self.value})"


@dataclass(frozen=True)
class HistogramSummary:
    """Serializable digest of one histogram."""

    count: int
    total: float
    min: Optional[float]
    max: Optional[float]
    p50: Optional[float]
    p95: Optional[float]

    def to_json(self) -> dict:
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
            "p50": self.p50,
            "p95": self.p95,
        }

    @classmethod
    def from_json(cls, data: Mapping[str, Any]) -> "HistogramSummary":
        return cls(
            count=int(data["count"]),
            total=float(data["total"]),
            min=None if data.get("min") is None else float(data["min"]),
            max=None if data.get("max") is None else float(data["max"]),
            p50=None if data.get("p50") is None else float(data["p50"]),
            p95=None if data.get("p95") is None else float(data["p95"]),
        )


class Histogram:
    """Streaming value distribution with nearest-rank quantiles.

    Memory is bounded for long-running processes (a serve daemon observing
    request latency for days): the retained-sample buffer never exceeds
    :data:`HISTOGRAM_SAMPLE_CAP`.  Below the cap every observation is kept
    and quantiles are exact.  When the buffer fills it is compacted to every
    other sample and the retention stride doubles, so the survivors are
    always observations ``0, s, 2s, ...`` for the current stride ``s`` — a
    systematic subsample of the *entire* stream, reproducible for identical
    observation sequences.
    """

    __slots__ = (
        "name",
        "labels",
        "count",
        "total",
        "min",
        "max",
        "_samples",
        "_stride",
        "_next_index",
    )

    def __init__(self, name: str, labels: LabelKey = ()) -> None:
        self.name = name
        self.labels = labels
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self._samples: list[float] = []
        #: Keep every ``_stride``-th observation; doubles on compaction.
        self._stride = 1
        #: Observation index (0-based) of the next sample to retain.
        self._next_index = 0

    def observe(self, value: float) -> None:
        value = float(value)
        index = self.count
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        if index == self._next_index:
            self._samples.append(value)
            self._next_index = index + self._stride
            if len(self._samples) >= HISTOGRAM_SAMPLE_CAP:
                self._compact()

    def _compact(self) -> None:
        """Halve the retained samples and double the stride (deterministic)."""
        self._samples = self._samples[::2]
        self._stride *= 2
        # Survivors sit at observation indices 0, s, ..., (n-1)*s for the
        # new stride s; the next aligned index follows the last survivor.
        self._next_index = len(self._samples) * self._stride

    def quantile(self, q: float) -> Optional[float]:
        """Nearest-rank quantile over the retained samples, ``0 <= q <= 1``.

        ``None`` with no samples; the single sample with one.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile {q} outside [0, 1]")
        if not self._samples:
            return None
        ordered = sorted(self._samples)
        rank = max(1, math.ceil(q * len(ordered)))
        return ordered[rank - 1]

    def merge_from(self, other: "Histogram") -> None:
        """Fold ``other``'s aggregates and retained samples into this one.

        Samples concatenate and re-compact down to the cap; after a merge the
        buffer is a systematic subsample of the concatenation (index
        alignment to a single stream no longer holds, so retention simply
        resumes from the combined count).
        """
        self.count += other.count
        self.total += other.total
        if other.min is not None and (self.min is None or other.min < self.min):
            self.min = other.min
        if other.max is not None and (self.max is None or other.max > self.max):
            self.max = other.max
        self._samples.extend(other._samples)
        self._stride = max(self._stride, other._stride)
        while len(self._samples) >= HISTOGRAM_SAMPLE_CAP:
            self._samples = self._samples[::2]
            self._stride *= 2
        self._next_index = self.count

    def summary(self) -> HistogramSummary:
        return HistogramSummary(
            count=self.count,
            total=self.total,
            min=self.min,
            max=self.max,
            p50=self.quantile(0.5),
            p95=self.quantile(0.95),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Histogram({_flat_name(self.name, self.labels)} n={self.count})"


@dataclass(frozen=True)
class MetricsSnapshot:
    """Point-in-time copy of a registry, ready for JSON serialization.

    Keys are flat ``name`` or ``name{label=value,...}`` strings with labels
    sorted, so the JSON form is byte-stable across runs that took the same
    measurements.
    """

    counters: dict[str, int]
    gauges: dict[str, float]
    histograms: dict[str, HistogramSummary]

    def to_json(self) -> dict:
        return {
            "counters": {k: self.counters[k] for k in sorted(self.counters)},
            "gauges": {k: self.gauges[k] for k in sorted(self.gauges)},
            "histograms": {
                k: self.histograms[k].to_json() for k in sorted(self.histograms)
            },
        }

    def to_json_str(self, *, indent: int = 2) -> str:
        return json.dumps(self.to_json(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, data: Mapping[str, Any]) -> "MetricsSnapshot":
        """Inverse of :meth:`to_json` — lets one process adopt another's
        snapshot (the sharded serve cluster merges worker ``/metrics``
        bodies through here)."""
        return cls(
            counters={str(k): int(v) for k, v in data.get("counters", {}).items()},
            gauges={str(k): float(v) for k, v in data.get("gauges", {}).items()},
            histograms={
                str(k): HistogramSummary.from_json(v)
                for k, v in data.get("histograms", {}).items()
            },
        )


def _parse_flat_key(key: str) -> tuple[str, list[tuple[str, str]]]:
    """Split a ``name{label=value,...}`` flat key back into name + labels."""
    name, brace, inner = key.partition("{")
    if not brace:
        return name, []
    pairs: list[tuple[str, str]] = []
    for part in inner.rstrip("}").split(","):
        k, _, v = part.partition("=")
        pairs.append((k, v))
    return name, pairs


def _relabeled(key: str, label: str, value: object) -> str:
    """``key`` with one extra label folded into the sorted label set."""
    name, pairs = _parse_flat_key(key)
    pairs.append((label, str(value)))
    return _flat_name(name, tuple(sorted(pairs)))


def merge_shard_snapshots(
    local: MetricsSnapshot,
    shard_snapshots: Sequence[tuple[object, MetricsSnapshot]],
    *,
    label: str = "shard",
) -> MetricsSnapshot:
    """One cluster-wide snapshot from a front-end's and its workers'.

    Counters are *summed* unlabeled (a cluster total: ``serve.ingest.lines``
    across shards reads like one daemon's).  Gauges and histogram summaries
    are point-in-time per-process facts that cannot be meaningfully added,
    so each worker's keep their identity under an extra ``label=<value>``
    label — ``serve.ingest.lag_lines{shard=1}`` — while the front-end's own
    stay unlabeled.  Deterministic: label sets are re-sorted, so merged
    snapshots diff cleanly run-to-run like plain ones.
    """
    counters = dict(local.counters)
    gauges = dict(local.gauges)
    histograms = dict(local.histograms)
    for shard_value, snap in shard_snapshots:
        for key, value in snap.counters.items():
            counters[key] = counters.get(key, 0) + value
        for key, gauge_value in snap.gauges.items():
            gauges[_relabeled(key, label, shard_value)] = gauge_value
        for key, summary in snap.histograms.items():
            histograms[_relabeled(key, label, shard_value)] = summary
    return MetricsSnapshot(counters=counters, gauges=gauges, histograms=histograms)


class MetricsRegistry:
    """Creates and memoizes instruments; the mutable metrics store.

    Not thread-safe by design (the pipeline parallelizes across processes,
    not threads); keeping instruments lock-free is what makes them cheap and
    the registry picklable for the worker-merge protocol.
    """

    enabled = True

    def __init__(self) -> None:
        self._counters: dict[tuple[str, LabelKey], Counter] = {}
        self._gauges: dict[tuple[str, LabelKey], Gauge] = {}
        self._histograms: dict[tuple[str, LabelKey], Histogram] = {}
        #: Hot-path callers memoize pre-bound instrument bundles here (see
        #: ``ReconCounters.for_registry``); dropped by :meth:`clear` so
        #: stale handles can't detach from future snapshots.
        self.bind_cache: dict[object, object] = {}

    # ------------------------------------------------------------------ #
    # instrument factories (memoized per name+labels)

    def counter(self, name: str, **labels: object) -> Counter:
        key = (name, _label_key(labels) if labels else ())
        instrument = self._counters.get(key)
        if instrument is None:
            instrument = self._counters[key] = Counter(*key)
        return instrument

    def gauge(self, name: str, **labels: object) -> Gauge:
        key = (name, _label_key(labels) if labels else ())
        instrument = self._gauges.get(key)
        if instrument is None:
            instrument = self._gauges[key] = Gauge(*key)
        return instrument

    def histogram(self, name: str, **labels: object) -> Histogram:
        key = (name, _label_key(labels) if labels else ())
        instrument = self._histograms.get(key)
        if instrument is None:
            instrument = self._histograms[key] = Histogram(*key)
        return instrument

    # ------------------------------------------------------------------ #

    def counters(self) -> Iterator[Counter]:
        return iter(self._counters.values())

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold ``other`` into this registry (worker -> parent)."""
        for (name, key), counter in other._counters.items():
            self.counter(name, **dict(key)).inc(counter.value)
        for (name, key), gauge in other._gauges.items():
            self.gauge(name, **dict(key)).set(gauge.value)
        for (name, key), histogram in other._histograms.items():
            self.histogram(name, **dict(key)).merge_from(histogram)

    def clear(self) -> None:
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()
        self.bind_cache.clear()

    def snapshot(self) -> MetricsSnapshot:
        return MetricsSnapshot(
            counters={
                _flat_name(name, key): c.value
                for (name, key), c in self._counters.items()
            },
            gauges={
                _flat_name(name, key): g.value
                for (name, key), g in self._gauges.items()
            },
            histograms={
                _flat_name(name, key): h.summary()
                for (name, key), h in self._histograms.items()
            },
        )


class _NullCounter(Counter):
    __slots__ = ()

    def inc(self, n: int = 1) -> None:
        pass


class _NullGauge(Gauge):
    __slots__ = ()

    def set(self, value: float) -> None:
        pass

    def add(self, delta: float) -> None:
        pass


class _NullHistogram(Histogram):
    __slots__ = ()

    def observe(self, value: float) -> None:
        pass


class NullRegistry(MetricsRegistry):
    """The registry-disabled path: every instrument is a shared no-op.

    Instrumented code runs unchanged; nothing is recorded and
    :meth:`snapshot` is empty.
    """

    enabled = False

    def __init__(self) -> None:
        super().__init__()
        self._null_counter = _NullCounter("null")
        self._null_gauge = _NullGauge("null")
        self._null_histogram = _NullHistogram("null")

    def counter(self, name: str, **labels: object) -> Counter:
        return self._null_counter

    def gauge(self, name: str, **labels: object) -> Gauge:
        return self._null_gauge

    def histogram(self, name: str, **labels: object) -> Histogram:
        return self._null_histogram

    def merge(self, other: MetricsRegistry) -> None:
        pass


@contextmanager
def timer(histogram: Histogram) -> Iterator[None]:
    """Observe a ``with`` block's wall seconds into ``histogram``.

    The labeled sibling of :func:`repro.obs.spans.span`: spans key their
    histogram by stage *name*, which is wrong for per-route request latency
    (one series per route label, not one route per series) — the serve
    layer's ``serve.request.seconds{route=...}`` histograms go through here.
    """
    start = time.perf_counter()
    try:
        yield
    finally:
        histogram.observe(time.perf_counter() - start)


# --------------------------------------------------------------------- #
# the active registry (context-local, enabled by default)

_DEFAULT_REGISTRY = MetricsRegistry()

_ACTIVE: ContextVar[MetricsRegistry] = ContextVar(
    "repro_obs_registry", default=_DEFAULT_REGISTRY
)


def get_registry() -> MetricsRegistry:
    """The registry instrumented code records into right now."""
    return _ACTIVE.get()


def set_registry(registry: MetricsRegistry) -> Token[MetricsRegistry]:
    """Replace the active registry for the current context.

    Returns the reset token so callers can restore the previous registry
    (``_ACTIVE.reset(token)``); scoped installs should prefer
    :func:`use_registry` (CC006).
    """
    return _ACTIVE.set(registry)


@contextmanager
def use_registry(registry: MetricsRegistry):
    """Scope the active registry to a ``with`` block (restores on exit)."""
    token = _ACTIVE.set(registry)
    try:
        yield registry
    finally:
        _ACTIVE.reset(token)
