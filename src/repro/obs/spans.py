"""Spans: wall-time measurement of pipeline stages, with nesting.

A span brackets one unit of work::

    with span("reconstruct.packet"):
        ...

On exit the duration (seconds) lands in the active registry's
``span.<name>`` histogram — p50/p95/max per stage come for free.  Spans
nest: a context-local *current span* tracks the enclosing one, so
:func:`current_span` answers "what stage am I inside?" and
:attr:`Span.path` renders the full ``outer/inner`` chain (used by the
``--profile`` drill-down and the docs' hierarchy diagram; the histogram key
stays the plain name so one stage's cost is one series regardless of
caller).

Timing is skipped entirely when the active registry is a
:class:`~repro.obs.registry.NullRegistry` — the no-op path costs two
contextvar operations and nothing else.
"""

from __future__ import annotations

import time
from contextvars import ContextVar
from typing import Optional

from repro.obs.registry import MetricsRegistry, get_registry

_CURRENT: ContextVar[Optional["Span"]] = ContextVar("repro_obs_span", default=None)


class Span:
    """One timed stage.  Use as a context manager; re-entry is not supported."""

    __slots__ = ("name", "labels", "parent", "duration", "_registry", "_start", "_token")

    def __init__(
        self,
        name: str,
        registry: Optional[MetricsRegistry] = None,
        **labels: object,
    ) -> None:
        self.name = name
        self.labels = labels
        self.parent: Optional[Span] = None
        #: Seconds; set on exit (None while the span is open).
        self.duration: Optional[float] = None
        self._registry = registry
        self._start = 0.0
        self._token = None

    @property
    def path(self) -> str:
        """Slash-joined chain of enclosing span names, outermost first."""
        if self.parent is None:
            return self.name
        return f"{self.parent.path}/{self.name}"

    def __enter__(self) -> "Span":
        if self._registry is None:
            self._registry = get_registry()
        self.parent = _CURRENT.get()
        self._token = _CURRENT.set(self)
        if self._registry.enabled:
            self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        _CURRENT.reset(self._token)
        if self._registry.enabled:
            self.duration = time.perf_counter() - self._start
            self._registry.histogram(f"span.{self.name}", **self.labels).observe(
                self.duration
            )
        return False  # never swallow exceptions

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Span({self.path!r})"


#: The idiomatic spelling: ``with span("stage"): ...``.
span = Span


def current_span() -> Optional[Span]:
    """The innermost open span in this context, or ``None``."""
    return _CURRENT.get()
