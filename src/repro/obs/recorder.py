"""Flight recorder: a bounded ring of recently completed spans and events.

The metrics registry answers *how much* and *how long on average*; the
flight recorder answers *what just happened*: the last N completed spans
(with their trace ids, durations and outcomes) and structured events, in
arrival order, queryable while the process runs.  The serve daemon exposes
it at ``GET /debug/trace`` and dumps it with ``refill serve --trace-out``
(JSON Lines) — the first place to look when a live daemon is slow.

Design constraints mirror the registry's:

1. **Bounded.**  A ``deque(maxlen=capacity)`` — recording is O(1), memory
   is flat forever, and the oldest records fall off silently (the
   ``recorded`` total minus the ring length says how many were dropped).
2. **Passive.**  Recording never raises into instrumented code and never
   touches the data being measured — tracing a flow cannot perturb it.
3. **Context-local activation.**  Like the registry, the *active* recorder
   is a contextvar (:func:`get_recorder` / :func:`use_recorder`), default
   ``None`` — batch runs pay nothing unless a recorder is installed.
"""

from __future__ import annotations

import json
import pathlib
import time
from collections import deque
from contextlib import contextmanager
from contextvars import ContextVar, Token
from dataclasses import dataclass
from typing import Iterator, Optional

#: Default ring capacity (completed spans + events combined).
DEFAULT_CAPACITY = 1024


@dataclass(frozen=True)
class SpanRecord:
    """One completed (or failed, or cancelled) traced stage."""

    name: str
    #: Wall-clock start, epoch seconds.
    start: float
    #: Seconds the stage took.
    duration: float
    #: ``ok`` | ``error`` | ``cancelled``.
    status: str = "ok"
    trace_id: Optional[str] = None
    #: Sorted ``(key, value)`` label pairs, registry-style.
    labels: tuple[tuple[str, str], ...] = ()
    #: Slash-joined chain of enclosing span names (``outer/inner``).
    path: Optional[str] = None

    def to_json(self) -> dict:
        record: dict = {
            "kind": "span",
            "name": self.name,
            "start": self.start,
            "duration": self.duration,
            "status": self.status,
        }
        if self.trace_id is not None:
            record["trace"] = self.trace_id
        if self.labels:
            record["labels"] = dict(self.labels)
        if self.path is not None and self.path != self.name:
            record["path"] = self.path
        return record


@dataclass(frozen=True)
class EventRecord:
    """One structured point-in-time event (connection opened, restore, ...)."""

    name: str
    time: float
    trace_id: Optional[str] = None
    fields: tuple[tuple[str, str], ...] = ()

    def to_json(self) -> dict:
        record: dict = {"kind": "event", "name": self.name, "time": self.time}
        if self.trace_id is not None:
            record["trace"] = self.trace_id
        if self.fields:
            record["fields"] = dict(self.fields)
        return record


class FlightRecorder:
    """Bounded in-memory ring of :class:`SpanRecord` / :class:`EventRecord`."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity <= 0:
            raise ValueError("recorder capacity must be positive")
        self.capacity = capacity
        self._ring: deque = deque(maxlen=capacity)
        #: Total records ever offered (``recorded - len(ring)`` were dropped).
        self.recorded = 0

    def __len__(self) -> int:
        return len(self._ring)

    @property
    def dropped(self) -> int:
        return self.recorded - len(self._ring)

    # ------------------------------------------------------------------ #
    # recording

    def record(self, record: "SpanRecord | EventRecord") -> None:
        self._ring.append(record)
        self.recorded += 1

    def record_event(
        self, name: str, *, trace_id: Optional[str] = None, **fields: object
    ) -> EventRecord:
        event = EventRecord(
            name=name,
            time=time.time(),
            trace_id=trace_id,
            fields=tuple(sorted((k, str(v)) for k, v in fields.items())),
        )
        self.record(event)
        return event

    # ------------------------------------------------------------------ #
    # querying

    def snapshot(
        self,
        *,
        limit: Optional[int] = None,
        name: Optional[str] = None,
        trace_id: Optional[str] = None,
        kind: Optional[str] = None,
    ) -> list[dict]:
        """Most-recent-first JSON records, optionally filtered.

        ``name`` matches exactly or as a dotted prefix (``serve`` matches
        ``serve.decode``); ``kind`` is ``span`` or ``event``.
        """
        out: list[dict] = []
        for record in reversed(self._ring):
            data = record.to_json()
            if kind is not None and data["kind"] != kind:
                continue
            if trace_id is not None and data.get("trace") != trace_id:
                continue
            if name is not None:
                got = data["name"]
                if got != name and not got.startswith(name + "."):
                    continue
            out.append(data)
            if limit is not None and len(out) >= limit:
                break
        return out

    def dump_jsonl(self, path) -> int:
        """Write the ring, oldest first, one JSON object per line."""
        path = pathlib.Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        records = [record.to_json() for record in self._ring]
        with path.open("w") as fh:
            for data in records:
                fh.write(json.dumps(data, sort_keys=True) + "\n")
        return len(records)

    def clear(self) -> None:
        self._ring.clear()
        self.recorded = 0


# --------------------------------------------------------------------- #
# the active recorder (context-local, off by default)

_ACTIVE: ContextVar[Optional[FlightRecorder]] = ContextVar(
    "repro_obs_recorder", default=None
)


def get_recorder() -> Optional[FlightRecorder]:
    """The recorder traced spans report into right now (``None``: off)."""
    return _ACTIVE.get()


def set_recorder(recorder: Optional[FlightRecorder]) -> Token[Optional[FlightRecorder]]:
    """Replace the active recorder for the current context.

    Returns the reset token so callers can restore the previous recorder
    (``_ACTIVE.reset(token)``); scoped installs should prefer
    :func:`use_recorder` (CC006).
    """
    return _ACTIVE.set(recorder)


@contextmanager
def use_recorder(recorder: Optional[FlightRecorder]) -> Iterator[Optional[FlightRecorder]]:
    """Scope the active recorder to a ``with`` block (restores on exit)."""
    token = _ACTIVE.set(recorder)
    try:
        yield recorder
    finally:
        _ACTIVE.reset(token)
