"""Trace context: trace ids, request ids, and recorded (traced) spans.

A **trace id** names one logical flow of work end to end — a client push,
a tailed file's ingest session, a stress campaign — across task, thread
and connection boundaries.  The id is *metadata only*: it rides in the
ingest protocol's ``HELLO`` line (never in data lines) and in span
records, so correlating a slow flow never perturbs the bytes being
reconstructed — served flows stay byte-identical to ``refill analyze``
with tracing on.

The current trace is context-local (a :class:`~contextvars.ContextVar`),
so asyncio tasks inherit it at creation and cannot leak it into siblings:
the consumer task can process batch A under trace A while a reader
accepts batch B under trace B, interleaved on one loop.

:func:`traced` is the instrumented-stage primitive built on top of
:class:`repro.obs.spans.Span`:

    with traced("serve.decode", source=name):
        ...

On exit the duration lands in the active registry's ``span.<name>``
histogram exactly like a plain span, **and** a
:class:`~repro.obs.recorder.SpanRecord` — stamped with the current trace
id and an ``ok`` / ``error`` / ``cancelled`` status — is appended to the
active flight recorder (when one is installed).  Under a
:class:`~repro.obs.registry.NullRegistry` the whole thing is a no-op:
tracing rides the same kill switch as the metrics substrate, which is
what the serve-ingest overhead benchmark measures.
"""

from __future__ import annotations

import os
import re
import time
from contextlib import contextmanager
from contextvars import ContextVar, Token
from typing import Iterator, Optional

from repro.obs.recorder import SpanRecord, get_recorder
from repro.obs.registry import get_registry
from repro.obs.spans import Span

#: Wire-safe trace id shape: one token, no spaces, bounded length — safe to
#: embed in a ``HELLO`` control line and in ``key=value`` log output.
_TRACE_ID = re.compile(r"^[A-Za-z0-9_.:-]{1,64}$")

_CURRENT_TRACE: ContextVar[Optional[str]] = ContextVar(
    "repro_obs_trace", default=None
)


def mint_trace_id() -> str:
    """A fresh 16-hex-char trace id (random; uniqueness, not secrecy)."""
    return os.urandom(8).hex()


def mint_request_id() -> str:
    """A fresh 8-hex-char per-request id (HTTP access-log correlation)."""
    return os.urandom(4).hex()


def valid_trace_id(trace_id: str) -> bool:
    """Whether ``trace_id`` is safe to carry as protocol/log metadata."""
    return bool(_TRACE_ID.match(trace_id))


def current_trace_id() -> Optional[str]:
    """The trace id attributed to work in this context, or ``None``."""
    return _CURRENT_TRACE.get()


def set_trace_id(trace_id: Optional[str]) -> Token[Optional[str]]:
    """Set the current trace id for the rest of this context (task-local).

    Returns the reset token so a caller that *does* want to restore the
    previous trace can ``_CURRENT_TRACE.reset(token)`` via
    :func:`use_trace`-style discipline (CC006).
    """
    return _CURRENT_TRACE.set(trace_id)


@contextmanager
def use_trace(trace_id: Optional[str]) -> Iterator[Optional[str]]:
    """Scope the current trace id to a ``with`` block (restores on exit)."""
    token = _CURRENT_TRACE.set(trace_id)
    try:
        yield trace_id
    finally:
        _CURRENT_TRACE.reset(token)


@contextmanager
def traced(name: str, **labels: object) -> Iterator[Optional[Span]]:
    """A span that also lands in the flight recorder with the current trace.

    Exceptions pass through untouched; the record's ``status`` says how the
    stage ended (``error`` for exceptions, ``cancelled`` for
    ``CancelledError``-family BaseExceptions — reader/consumer teardown is
    normal operation and must still be visible in the recorder).
    """
    registry = get_registry()
    if not registry.enabled:
        yield None
        return
    recorder = get_recorder()
    start_wall = time.time()
    status = "ok"
    inner: Optional[Span] = None
    try:
        with Span(name, registry=registry, **labels) as inner:
            yield inner
    except Exception:
        status = "error"
        raise
    except BaseException:
        status = "cancelled"
        raise
    finally:
        if recorder is not None and inner is not None:
            recorder.record(
                SpanRecord(
                    name=name,
                    start=start_wall,
                    # duration is None only if Span.__enter__ itself blew
                    # up; record 0.0 rather than losing the failure
                    duration=inner.duration if inner.duration is not None else 0.0,
                    status=status,
                    trace_id=_CURRENT_TRACE.get(),
                    labels=tuple(sorted((k, str(v)) for k, v in labels.items())),
                    path=inner.path,
                )
            )
