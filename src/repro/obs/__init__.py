"""Observability substrate: metrics registry, spans, structured logging.

The pipeline instruments itself against whatever registry is *active* in
the current context (an enabled process-wide default; swap in a
:class:`NullRegistry` to disable collection, or a fresh
:class:`MetricsRegistry` under :func:`use_registry` to isolate one run).

Quickstart::

    from repro.obs import MetricsRegistry, use_registry, span, get_logger

    log = get_logger("my.tool")
    with use_registry(MetricsRegistry()) as reg:
        with span("my.stage"):
            log.info("working", items=42)
            reg.counter("my.items").inc(42)
        print(reg.snapshot().to_json_str())

See ``docs/OBSERVABILITY.md`` for the metric-name catalogue and the span
hierarchy the built-in pipeline emits.
"""

from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    HistogramSummary,
    MetricsRegistry,
    MetricsSnapshot,
    NullRegistry,
    get_registry,
    set_registry,
    timer,
    use_registry,
)
from repro.obs.spans import Span, current_span, span
from repro.obs.structlog import (
    DEBUG,
    ERROR,
    INFO,
    WARNING,
    StructLogger,
    configure_logging,
    get_logger,
    reset_logging,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "HistogramSummary",
    "MetricsRegistry",
    "MetricsSnapshot",
    "NullRegistry",
    "get_registry",
    "set_registry",
    "timer",
    "use_registry",
    "Span",
    "span",
    "current_span",
    "StructLogger",
    "get_logger",
    "configure_logging",
    "reset_logging",
    "DEBUG",
    "INFO",
    "WARNING",
    "ERROR",
]
