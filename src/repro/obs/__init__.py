"""Observability substrate: metrics registry, spans, structured logging.

The pipeline instruments itself against whatever registry is *active* in
the current context (an enabled process-wide default; swap in a
:class:`NullRegistry` to disable collection, or a fresh
:class:`MetricsRegistry` under :func:`use_registry` to isolate one run).

Quickstart::

    from repro.obs import MetricsRegistry, use_registry, span, get_logger

    log = get_logger("my.tool")
    with use_registry(MetricsRegistry()) as reg:
        with span("my.stage"):
            log.info("working", items=42)
            reg.counter("my.items").inc(42)
        print(reg.snapshot().to_json_str())

See ``docs/OBSERVABILITY.md`` for the metric-name catalogue and the span
hierarchy the built-in pipeline emits.
"""

from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    HistogramSummary,
    MetricsRegistry,
    MetricsSnapshot,
    NullRegistry,
    get_registry,
    set_registry,
    timer,
    use_registry,
)
from repro.obs.promtext import CONTENT_TYPE as PROM_CONTENT_TYPE
from repro.obs.promtext import parse_exposition, render_snapshot
from repro.obs.recorder import (
    EventRecord,
    FlightRecorder,
    SpanRecord,
    get_recorder,
    set_recorder,
    use_recorder,
)
from repro.obs.spans import Span, current_span, span
from repro.obs.structlog import (
    DEBUG,
    ERROR,
    INFO,
    WARNING,
    StructLogger,
    configure_logging,
    get_logger,
    reset_logging,
)
from repro.obs.tracing import (
    current_trace_id,
    mint_request_id,
    mint_trace_id,
    set_trace_id,
    traced,
    use_trace,
    valid_trace_id,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "HistogramSummary",
    "MetricsRegistry",
    "MetricsSnapshot",
    "NullRegistry",
    "get_registry",
    "set_registry",
    "timer",
    "use_registry",
    "Span",
    "span",
    "current_span",
    "traced",
    "mint_trace_id",
    "mint_request_id",
    "valid_trace_id",
    "current_trace_id",
    "set_trace_id",
    "use_trace",
    "FlightRecorder",
    "SpanRecord",
    "EventRecord",
    "get_recorder",
    "set_recorder",
    "use_recorder",
    "PROM_CONTENT_TYPE",
    "render_snapshot",
    "parse_exposition",
    "StructLogger",
    "get_logger",
    "configure_logging",
    "reset_logging",
    "DEBUG",
    "INFO",
    "WARNING",
    "ERROR",
]
