"""REFILL — reconstructing network behavior from individual and lossy logs.

Reproduction of *Connecting the Dots: Reconstructing Network Behavior with
Individual and Lossy Logs* (ICPP 2015). The package contains:

- :mod:`repro.events` — the event / log model (paper §II),
- :mod:`repro.fsm` — transition graphs, intra-node and inter-node transition
  derivation (paper §IV-A/B),
- :mod:`repro.core` — the connected inference engines, the recursive
  transition algorithm, event flows and loss diagnosis (paper §IV, §V-B),
- :mod:`repro.lognet` — the lossy, unsynchronized logging substrate,
- :mod:`repro.simnet` — a CitySee-like WSN discrete-event simulator with
  ground truth (substitute for the paper's physical deployment),
- :mod:`repro.baselines` — sink-view, time-correlation, Wit-style and
  NetCheck-style comparison analyzers,
- :mod:`repro.analysis` — figure/table analytics and accuracy scoring,
- :mod:`repro.obs` — observability: metrics registry, spans, structured
  logging (see ``docs/OBSERVABILITY.md``).

Quickstart::

    from repro import ReconstructionSession
    session = ReconstructionSession()
    flows = session.reconstruct(logs)  # logs: per-node NodeLog objects
    reports = session.diagnose(flows)

(``Refill`` remains as a thin compatibility shim over a session; see
``docs/API.md`` for the migration note and ``docs/ARCHITECTURE.md`` for
the backend model.)
"""

from repro.events.event import Event, EventType
from repro.events.packet import PacketKey
from repro.events.log import LogRecord, NodeLog
from repro.core.event_flow import EventFlow, FlowEntry
from repro.core.refill import Refill, RefillOptions
from repro.core.session import ReconstructionSession, SessionResult
from repro.core.backends import make_backend
from repro.core.diagnosis import LossCause, LossReport, classify_flow
from repro.fsm.templates import forwarder_template

__version__ = "1.0.0"

__all__ = [
    "Event",
    "EventType",
    "PacketKey",
    "LogRecord",
    "NodeLog",
    "EventFlow",
    "FlowEntry",
    "Refill",
    "RefillOptions",
    "ReconstructionSession",
    "SessionResult",
    "make_backend",
    "LossCause",
    "LossReport",
    "classify_flow",
    "forwarder_template",
    "__version__",
]
