"""The shared findings engine for ``refill check``.

Every analyzer — cross-FSM, log-corpus, and the re-emitted per-template
lint of :mod:`repro.fsm.validate` — reports through one model: a
:class:`Finding` with a severity, a stable rule code, a location and a
message.  Stable codes (``XF*`` cross-FSM, ``TP*`` per-template, ``LC*``
log-corpus) let CI pipelines grep for specific defects and let
``docs/STATIC_ANALYSIS.md`` catalogue remediation per rule.

Reports render deterministically: findings sort by severity (errors
first), then code, location and message, so two runs over the same
deployment produce byte-identical output.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping


class Severity(enum.IntEnum):
    """How bad a finding is; orders reports and drives exit codes."""

    INFO = 10
    WARNING = 20
    ERROR = 30

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.name.lower()


#: Stable rule-code catalogue.  Every :class:`Finding` must carry one of
#: these codes; ``docs/STATIC_ANALYSIS.md`` documents each with a
#: triggering example and remediation (enforced by a test).
RULES: dict[str, str] = {
    # cross-FSM analysis (whole-deployment template checks)
    "XF001": "prerequisite state unresolvable in any role template",
    "XF002": "inter-node prerequisite cycle among explicit-node rules",
    "XF003": "ambiguous shortest transition sequence for a (state, label) jump",
    "XF004": "event label shared by templates of different roles",
    "XF005": "explicit-node prerequisite state absent from the peer node's template",
    "XF006": "prerequisite rule attached to a label no role template emits",
    "XF007": "recursive prerequisite chain through peer selectors",
    # per-template structural lint (re-emitted fsm/validate findings)
    "TP001": "nondeterministic normal transitions for a (state, label) pair",
    "TP002": "state unreachable from the initial state",
    "TP003": "terminal state (no outgoing transitions)",
    "TP004": "prerequisite rule references a label/state unknown to its own template",
    "TP005": "dead (state, label) pair: an observed event would be omitted",
    # log-corpus lint
    "LC001": "log line failed to decode",
    "LC002": "event node id disagrees with the file it sits in",
    "LC003": "event label unknown to every role template",
    "LC004": "packet referential-integrity violation",
    "LC005": "append-order anomaly within a node log",
    "LC006": "store metadata missing or unreadable",
    "LC007": "additional findings suppressed (per-rule cap reached)",
    # concurrency & determinism code analysis (refill check --code)
    "CC000": "source file failed to parse",
    "CC001": "blocking call inside an async function",
    "CC002": "asyncio task created but its handle is dropped",
    "CC003": "asyncio.CancelledError caught without re-raise",
    "CC004": "asyncio.wait_for/asyncio.timeout used outside the serve compat shim",
    "CC005": "stream writer closed without awaiting wait_closed",
    "CC006": "ContextVar.set token discarded",
    "CC007": "coroutine called but never awaited",
    "CC008": "wall-clock read in a seed-deterministic module",
    "CC009": "unseeded global RNG draw in a seed-deterministic module",
    "CC010": "wall-clock read inside a hot-path loop",
    "CC011": "asyncio.get_event_loop is deprecated and loop-state dependent",
    "CC012": "bare/BaseException handler in async code without re-raise",
    "CC013": "suppression comment malformed or matched no finding",
    "CC014": "additional code findings suppressed (per-rule cap reached)",
}

#: Rule catalogues registered by other subsystems (e.g. the stress
#: harness's ``ST*`` oracle IDs).  Kept separate from :data:`RULES` so the
#: static-analysis catalogue — and the doc-coverage test pinning it to
#: ``docs/STATIC_ANALYSIS.md`` — stays closed; extensions document their
#: codes in their own catalogue (``docs/TESTING.md`` for oracles).
EXTRA_RULES: dict[str, str] = {}


def register_rules(rules: Mapping[str, str]) -> None:
    """Register additional rule codes usable by :class:`Finding`.

    Idempotent for identical re-registration; raises on a code that would
    collide with a built-in rule or redefine an extension differently.
    """
    for code, summary in rules.items():
        if code in RULES:
            raise ValueError(f"rule code {code!r} collides with a built-in rule")
        existing = EXTRA_RULES.get(code)
        if existing is not None and existing != summary:
            raise ValueError(f"rule code {code!r} already registered differently")
        EXTRA_RULES[code] = summary


@dataclass(frozen=True, slots=True)
class Finding:
    """One static-analysis finding.

    Attributes
    ----------
    severity:
        :class:`Severity` level; errors make ``refill check`` exit non-zero.
    code:
        Stable rule code from :data:`RULES`.
    location:
        Where the defect sits — a template/role name for model findings,
        ``<file>:<line>`` for corpus findings.
    message:
        Human-readable description, deterministic for a given deployment.
    """

    severity: Severity
    code: str
    location: str
    message: str

    def __post_init__(self) -> None:
        if self.code not in RULES and self.code not in EXTRA_RULES:
            raise ValueError(f"unknown rule code {self.code!r}")

    @property
    def sort_key(self) -> tuple[int, str, str, str]:
        """Deterministic report order: errors first, then code/location."""
        return (-int(self.severity), self.code, self.location, self.message)

    def to_json(self) -> dict[str, str]:
        return {
            "severity": str(self.severity),
            "code": self.code,
            "location": self.location,
            "message": self.message,
        }

    def format(self) -> str:
        return f"{str(self.severity):<7} {self.code} {self.location}: {self.message}"


def error(code: str, location: str, message: str) -> Finding:
    return Finding(Severity.ERROR, code, location, message)


def warning(code: str, location: str, message: str) -> Finding:
    return Finding(Severity.WARNING, code, location, message)


def info(code: str, location: str, message: str) -> Finding:
    return Finding(Severity.INFO, code, location, message)


@dataclass
class CheckReport:
    """All findings of one ``refill check`` run plus scan statistics."""

    findings: list[Finding] = field(default_factory=list)
    #: Scan statistics (files/lines/events examined), for the report footer.
    stats: dict[str, int] = field(default_factory=dict)

    def extend(self, findings: Iterable[Finding]) -> None:
        self.findings.extend(findings)

    @property
    def errors(self) -> list[Finding]:
        return [f for f in self.findings if f.severity is Severity.ERROR]

    @property
    def warnings(self) -> list[Finding]:
        return [f for f in self.findings if f.severity is Severity.WARNING]

    @property
    def infos(self) -> list[Finding]:
        return [f for f in self.findings if f.severity is Severity.INFO]

    @property
    def ok(self) -> bool:
        """Whether the deployment passed (no error-severity findings)."""
        return not self.errors

    def exit_code(self, *, strict: bool = False) -> int:
        """CI exit status: 1 on errors (or warnings under ``strict``)."""
        if self.errors:
            return 1
        if strict and self.warnings:
            return 1
        return 0

    def sorted_findings(self) -> list[Finding]:
        return sorted(self.findings, key=lambda f: f.sort_key)

    def counts_by_code(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for f in self.findings:
            counts[f.code] = counts.get(f.code, 0) + 1
        return dict(sorted(counts.items()))

    def render_text(self) -> str:
        """Deterministic plain-text report."""
        lines = [f.format() for f in self.sorted_findings()]
        summary = (
            f"{len(self.errors)} error(s), {len(self.warnings)} warning(s), "
            f"{len(self.infos)} info"
        )
        if self.stats:
            scanned = ", ".join(f"{k}={v}" for k, v in sorted(self.stats.items()))
            summary += f" [{scanned}]"
        lines.append(summary)
        return "\n".join(lines)

    def to_json(self) -> dict[str, Any]:
        return {
            "ok": self.ok,
            "counts": {
                "error": len(self.errors),
                "warning": len(self.warnings),
                "info": len(self.infos),
            },
            "by_code": self.counts_by_code(),
            "stats": dict(sorted(self.stats.items())),
            "findings": [f.to_json() for f in self.sorted_findings()],
        }

    def to_json_str(self) -> str:
        return json.dumps(self.to_json(), indent=2)


def cap_per_rule(
    findings: Iterable[Finding], max_per_rule: int, *, summary_code: str = "LC007"
) -> list[Finding]:
    """Bound findings per (code, file) group, appending cap summaries.

    A 60 %-corrupt log shard would otherwise drown the report in thousands
    of identical ``LC001`` lines.  Grouping is by code plus the file part of
    the location (text before ``:``), so distinct files keep their own
    budget.  Suppressed groups gain one :data:`Severity.INFO` summary under
    ``summary_code`` (``LC007`` for corpus lint, ``CC014`` for code lint).
    """
    if max_per_rule <= 0:
        return list(findings)
    kept: list[Finding] = []
    counts: dict[tuple[str, str], int] = {}
    worst: dict[tuple[str, str], Severity] = {}
    for f in findings:
        group = (f.code, f.location.split(":", 1)[0])
        counts[group] = counts.get(group, 0) + 1
        worst[group] = max(worst.get(group, f.severity), f.severity)
        if counts[group] <= max_per_rule:
            kept.append(f)
    for (code, file_part), n in sorted(counts.items()):
        if n > max_per_rule:
            kept.append(
                info(
                    summary_code,
                    file_part,
                    f"{n - max_per_rule} additional {code} "
                    f"({str(worst[(code, file_part)])}) finding(s) suppressed",
                )
            )
    return kept


def summarize_mapping(counts: Mapping[str, int]) -> str:
    """``code=count`` summary line used by logs and the CLI."""
    return " ".join(f"{code}={n}" for code, n in sorted(counts.items()))
