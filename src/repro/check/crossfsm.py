"""Cross-FSM static analysis over a whole deployment (rule codes ``XF*``).

The per-template lint of :mod:`repro.fsm.validate` deliberately punts on
anything that needs *other* roles' templates.  This module closes that gap
over a :class:`DeploymentSpec` — the set of role templates plus the
(optional) node→role assignment:

- **prerequisite resolution** (``XF001``/``XF005``/``XF006``): every state a
  rule references must exist in a peer template, every rule label must be
  emitted by some role;
- **prerequisite cycles** (``XF002``): explicit-node rules whose drive
  dependencies form a cycle would deadlock (hit the recursion guard of) the
  recursive transition algorithm;
- **ambiguous jump derivation** (``XF003``): a (state, label) intra jump
  whose inferred lost-event prefix is not unique — shortest-path ties are
  broken by edge declaration order, which is deterministic but semantically
  arbitrary;
- **label collisions** (``XF004``): an event label emitted by templates of
  two different roles makes corpus lines attributable to either FSM;
- **selector recursion** (``XF007``, info): prerequisite chains through
  ``Peer`` selectors that can re-demand their own label; termination then
  relies on network topology and admissibility, not on the model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Optional

import repro.fsm.validate  # full-path import: breaks the validate→check cycle
from repro.check.findings import Finding, Severity, error, info, warning
from repro.fsm.templates import FsmTemplate


@dataclass
class DeploymentSpec:
    """Everything the static analyzer knows about a deployment.

    Attributes
    ----------
    roles:
        Role name → template.  Uniform-role protocols (the CTP workload)
        have a single entry.
    node_roles:
        Node id → role name, for deployments whose prerequisite rules name
        explicit nodes (the paper's Fig. 3 synthetic topologies).  Optional:
        selector-based rules need no node map.
    aux_labels:
        Telemetry labels that legitimately appear in logs without driving
        any FSM (e.g. CTP's ``parent_change`` route-churn records).  The
        corpus lint treats them as known instead of raising ``LC003``.
    """

    roles: Mapping[str, FsmTemplate]
    node_roles: Mapping[int, str] = field(default_factory=dict)
    aux_labels: frozenset[str] = frozenset()

    def template_of(self, node: int) -> Optional[FsmTemplate]:
        role = self.node_roles.get(node)
        return self.roles[role] if role is not None else None

    def node_templates(self) -> dict[int, FsmTemplate]:
        return {n: self.roles[r] for n, r in self.node_roles.items()}

    def vocabulary(self) -> frozenset[str]:
        """Union of event labels over every role template plus aux labels."""
        return frozenset(
            label for t in self.roles.values() for label in t.graph.events
        ) | self.aux_labels


def check_templates(spec: DeploymentSpec) -> list[Finding]:
    """All model-level findings for ``spec`` (``TP*`` re-emitted + ``XF*``)."""
    findings: list[Finding] = []
    for role in sorted(spec.roles):
        report = repro.fsm.validate.validate_template(spec.roles[role])
        # Family-level resolution below supersedes the per-template
        # "multi-role wiring?" warnings, mirroring validate_role_family.
        findings.extend(
            f
            for f in report.findings
            if not (f.code == "TP004" and "multi-role wiring" in f.message)
        )
    findings.extend(_check_prereq_resolution(spec))
    findings.extend(_check_prereq_cycles(spec))
    findings.extend(_check_ambiguous_jumps(spec))
    findings.extend(_check_label_collisions(spec))
    return findings


# --------------------------------------------------------------------- #
# prerequisite resolution (XF001 / XF005 / XF006)


def _check_prereq_resolution(spec: DeploymentSpec) -> list[Finding]:
    findings: list[Finding] = []
    all_states = {s for t in spec.roles.values() for s in t.graph.states}
    vocabulary = spec.vocabulary()
    node_templates = spec.node_templates()
    for role in sorted(spec.roles):
        template = spec.roles[role]
        loc = f"role {role!r}"
        for label, rules in sorted(template.prereqs.items()):
            if label not in vocabulary:
                findings.append(
                    warning(
                        "XF006",
                        loc,
                        f"prerequisite rule for label {label!r}, which no "
                        "role template emits",
                    )
                )
            for rule in rules:
                peer = rule.peer
                peer_template = (
                    node_templates.get(peer) if isinstance(peer, int) else None
                )
                for state in rule.states:
                    if peer_template is not None:
                        if not peer_template.graph.has_state(state):
                            findings.append(
                                error(
                                    "XF005",
                                    loc,
                                    f"prerequisite state {state!r} (label "
                                    f"{label!r}) is not a state of node "
                                    f"{peer}'s template "
                                    f"{peer_template.name!r}",
                                )
                            )
                    elif state not in all_states:
                        code = "XF005" if isinstance(peer, int) else "XF001"
                        findings.append(
                            error(
                                code,
                                loc,
                                f"prerequisite state {state!r} (label "
                                f"{label!r}, peer {_peer_name(peer)}) does "
                                "not exist in any role template",
                            )
                        )
    return findings


def _peer_name(peer) -> str:
    return f"node {peer}" if isinstance(peer, int) else str(peer)


# --------------------------------------------------------------------- #
# prerequisite cycles (XF002 explicit-node, XF007 selector recursion)


def _labels_toward(template: FsmTemplate, states: Iterable[str]) -> frozenset[str]:
    """Labels of edges that may lie on a drive path into any of ``states``.

    Driving an engine to a prerequisite state replays normal transitions;
    an edge ``u --l--> v`` may be needed iff some target state is ``v``
    itself or reachable from ``v``.  This over-approximates (the engine's
    current state is unknown statically), which is the safe direction for
    cycle detection.
    """
    targets = [s for s in states if template.graph.has_state(s)]
    labels = set()
    for t in template.graph.transitions:
        if any(
            t.dst == s or template.reach.reachable(t.dst, s) for s in targets
        ):
            labels.add(t.event)
    return frozenset(labels)


def _check_prereq_cycles(spec: DeploymentSpec) -> list[Finding]:
    findings: list[Finding] = []
    node_templates = spec.node_templates()

    # Explicit-node dependency graph over (node, label) vertices.
    vertices: list[tuple[int, str]] = []
    edges: dict[tuple[int, str], set[tuple[int, str]]] = {}
    for node in sorted(node_templates):
        template = node_templates[node]
        for label, rules in sorted(template.prereqs.items()):
            for rule in rules:
                if not isinstance(rule.peer, int):
                    continue
                peer_template = node_templates.get(rule.peer)
                if peer_template is None:
                    continue
                src = (node, label)
                if src not in edges:
                    vertices.append(src)
                    edges[src] = set()
                for needed in _labels_toward(peer_template, rule.states):
                    dst = (rule.peer, needed)
                    edges[src].add(dst)
                    if dst not in edges:
                        vertices.append(dst)
                        edges[dst] = set()
    for cycle in _cycles(vertices, edges):
        path = " -> ".join(f"node {n}:{label}" for n, label in cycle)
        findings.append(
            error(
                "XF002",
                f"node {cycle[0][0]}",
                f"inter-node prerequisite cycle: {path} -> (repeats); the "
                "recursive transition algorithm would hit its recursion "
                "guard driving these engines",
            )
        )

    # Selector-based recursion over (role, label) vertices (info only:
    # termination may still come from topology/admissibility, as with the
    # CTP recv -> SENT chain up the routing path).
    role_vertices: list[tuple[str, str]] = []
    role_edges: dict[tuple[str, str], set[tuple[str, str]]] = {}
    for role in sorted(spec.roles):
        template = spec.roles[role]
        for label, rules in sorted(template.prereqs.items()):
            for rule in rules:
                if isinstance(rule.peer, int):
                    continue
                src = (role, label)
                if src not in role_edges:
                    role_vertices.append(src)
                    role_edges[src] = set()
                for peer_role in sorted(spec.roles):
                    peer_template = spec.roles[peer_role]
                    if not any(
                        peer_template.graph.has_state(s) for s in rule.states
                    ):
                        continue
                    for needed in _labels_toward(peer_template, rule.states):
                        dst = (peer_role, needed)
                        role_edges[src].add(dst)
                        if dst not in role_edges:
                            role_vertices.append(dst)
                            role_edges[dst] = set()
    for cycle in _cycles(role_vertices, role_edges):
        path = " -> ".join(f"{role}:{label}" for role, label in cycle)
        findings.append(
            info(
                "XF007",
                f"role {cycle[0][0]!r}",
                f"prerequisite chain can re-demand its own label: {path} -> "
                "(repeats); termination relies on topology/admissibility, "
                "not the model",
            )
        )
    return findings


def _cycles(vertices, edges) -> list[list]:
    """Cyclic strongly connected components, deterministically ordered.

    Tarjan's algorithm (iterative).  Returns each SCC that contains a cycle
    — size > 1, or a single vertex with a self-edge — as a sorted vertex
    list; the result is sorted by first vertex so reports are stable.
    """
    index: dict = {}
    lowlink: dict = {}
    on_stack: set = set()
    stack: list = []
    sccs: list[list] = []
    counter = [0]

    for root in vertices:
        if root in index:
            continue
        work = [(root, iter(sorted(edges.get(root, ()))))]
        index[root] = lowlink[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            v, it = work[-1]
            advanced = False
            for w in it:
                if w not in index:
                    index[w] = lowlink[w] = counter[0]
                    counter[0] += 1
                    stack.append(w)
                    on_stack.add(w)
                    work.append((w, iter(sorted(edges.get(w, ())))))
                    advanced = True
                    break
                if w in on_stack:
                    lowlink[v] = min(lowlink[v], index[w])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[v])
            if lowlink[v] == index[v]:
                component = []
                while True:
                    w = stack.pop()
                    on_stack.discard(w)
                    component.append(w)
                    if w == v:
                        break
                if len(component) > 1 or v in edges.get(v, ()):
                    sccs.append(sorted(component))
    return sorted(sccs)


# --------------------------------------------------------------------- #
# ambiguous jump derivation (XF003)


def _check_ambiguous_jumps(spec: DeploymentSpec) -> list[Finding]:
    findings: list[Finding] = []
    for role in sorted(spec.roles):
        template = spec.roles[role]
        graph = template.graph
        loc = f"role {role!r}"
        for (state, label) in sorted(template.intra):
            if graph.transitions_from(state, label):
                continue  # a normal transition wins; the jump is never used
            jump = template.intra[(state, label)]
            dist, count = template.reach.shortest_path_stats(state)
            candidates = []
            for t in graph.transitions_with_event(label):
                if t.dst != jump.dst:
                    continue
                prefix = 0 if t.src == state else dist.get(t.src)
                if prefix is None:
                    continue
                candidates.append((prefix, t))
            if not candidates:
                continue
            best = min(prefix for prefix, _ in candidates)
            tied = [t for prefix, t in candidates if prefix == best]
            paths = 1 if best == 0 else count.get(tied[0].src, 1)
            if len(tied) <= 1 and paths <= 1:
                continue
            if len(tied) > 1:
                detail = (
                    f"{len(tied)} final edges tie at prefix length {best}: "
                    + ", ".join(f"{t.src}->{t.dst}" for t in sorted(
                        tied, key=lambda t: (t.src, t.dst)))
                )
            else:
                detail = (
                    f"{paths} distinct shortest inferred-event prefixes "
                    f"reach {tied[0].src!r}"
                )
            severity = (
                Severity.INFO if template.has_admissibility else Severity.WARNING
            )
            suffix = (
                "; the admissibility predicate may disambiguate at inference time"
                if template.has_admissibility
                else "; ties break by edge declaration order"
            )
            findings.append(
                Finding(
                    severity,
                    "XF003",
                    loc,
                    f"ambiguous jump derivation for ({state!r}, {label!r}) "
                    f"-> {jump.dst!r}: {detail}{suffix}",
                )
            )
    return findings


# --------------------------------------------------------------------- #
# label collisions (XF004)


def _check_label_collisions(spec: DeploymentSpec) -> list[Finding]:
    findings: list[Finding] = []
    by_label: dict[str, list[str]] = {}
    seen_templates: dict[int, str] = {}
    for role in sorted(spec.roles):
        template = spec.roles[role]
        # Roles sharing one template object (uniform protocols) never collide.
        if id(template) in seen_templates:
            continue
        seen_templates[id(template)] = role
        for label in template.graph.events:
            by_label.setdefault(label, []).append(role)
    for label in sorted(by_label):
        roles = by_label[label]
        if len(roles) > 1:
            findings.append(
                warning(
                    "XF004",
                    f"label {label!r}",
                    f"event label emitted by {len(roles)} role templates "
                    f"({', '.join(sorted(roles))}); corpus events with this "
                    "label are attributable to either FSM",
                )
            )
    return findings
