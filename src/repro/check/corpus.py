"""Log-corpus lint over a store directory (rule codes ``LC*``).

Streams every ``node_*.log`` file through the tolerant codec scanner
(:func:`repro.events.codec.scan_log_text` — the same scanner the store
loader uses, so the two always agree on corruption) and checks:

- **decodability** (``LC001``): the line parses at all — this surfaces the
  counts that :func:`repro.events.store.load_store` only tallies in
  ``corrupt_lines`` as per-line findings;
- **schema conformance** (``LC002``): the recorded node id matches the file
  the line sits in (a node appends only to its own log);
- **vocabulary** (``LC003``): the event label is emitted by some role
  template — an unknown label can never drive an engine and will be
  silently ignored by inference;
- **packet referential integrity** (``LC004``): ``(origin, seq)`` keys are
  well-formed and ``gen`` events sit on their packet's origin;
- **append-order sanity** (``LC005``): local timestamps are monotone within
  a file (one node, one clock) and ``gen`` sequence numbers from the file's
  own node strictly increase;
- **metadata** (``LC006``): ``operations.json`` exists and parses.

Findings per (rule, file) are capped — a 60 %-corrupt shard should not
drown the report — with an ``LC007`` summary for anything suppressed.
"""

from __future__ import annotations

import json
import pathlib
from typing import Optional

from repro.check.crossfsm import DeploymentSpec
from repro.check.findings import Finding, cap_per_rule, error, warning
from repro.events.codec import DecodeIssue, scan_log_text
from repro.events.event import Event, EventType
from repro.events.store import StoreMetadata


def check_corpus(
    directory,
    spec: Optional[DeploymentSpec] = None,
    *,
    max_per_rule: int = 8,
) -> tuple[list[Finding], dict[str, int]]:
    """Lint the store at ``directory``; returns ``(findings, stats)``.

    ``spec`` supplies the template vocabulary for ``LC003``; without one,
    vocabulary checks are skipped.  ``max_per_rule`` bounds findings per
    (rule, file) pair (0 disables the cap).
    """
    path = pathlib.Path(directory)
    findings: list[Finding] = []
    stats = {"files": 0, "lines": 0, "events": 0, "corrupt": 0}

    findings.extend(_check_metadata(path))
    vocabulary = spec.vocabulary() if spec is not None else None

    for file in sorted(path.glob("node_*.log")):
        stats["files"] += 1
        node = int(file.stem.split("_")[1])
        file_findings, file_stats = _check_file(file, node, vocabulary)
        findings.extend(file_findings)
        for key, value in file_stats.items():
            stats[key] += value

    return cap_per_rule(findings, max_per_rule), stats


def _check_metadata(path: pathlib.Path) -> list[Finding]:
    meta_path = path / "operations.json"
    if not meta_path.exists():
        return [error("LC006", meta_path.name, "store metadata file is missing")]
    try:
        StoreMetadata.from_json(json.loads(meta_path.read_text()))
    except (ValueError, KeyError, TypeError) as exc:
        return [
            error(
                "LC006",
                meta_path.name,
                f"store metadata unreadable: {exc}",
            )
        ]
    return []


def _check_file(
    file: pathlib.Path,
    node: int,
    vocabulary: Optional[frozenset[str]],
) -> tuple[list[Finding], dict[str, int]]:
    findings: list[Finding] = []
    stats = {"lines": 0, "events": 0, "corrupt": 0}
    last_time: Optional[float] = None
    last_time_lineno = 0
    last_gen_seq: Optional[int] = None

    for lineno, decoded in scan_log_text(file.read_text()):
        stats["lines"] += 1
        loc = f"{file.name}:{lineno}"
        if isinstance(decoded, DecodeIssue):
            stats["corrupt"] += 1
            findings.append(
                error("LC001", loc, f"line failed to decode: {decoded.error}")
            )
            continue
        stats["events"] += 1
        event = decoded

        if event.node != node:
            stats["corrupt"] += 1
            findings.append(
                error(
                    "LC002",
                    loc,
                    f"event recorded for node {event.node} inside the log "
                    f"file of node {node}",
                )
            )
            continue

        if vocabulary is not None and event.etype not in vocabulary:
            findings.append(
                warning(
                    "LC003",
                    loc,
                    f"event label {event.etype!r} matches no role template; "
                    "inference will ignore it",
                )
            )

        findings.extend(_check_packet_integrity(event, loc))

        # Append-order sanity: one node, one (linear) clock — local
        # timestamps must be monotone along the surviving log.
        if event.time is not None:
            if last_time is not None and event.time < last_time:
                findings.append(
                    warning(
                        "LC005",
                        loc,
                        f"timestamp {event.time} precedes {last_time} at "
                        f"line {last_time_lineno}; the log is reordered or "
                        "the clock stepped backwards",
                    )
                )
            last_time = event.time
            last_time_lineno = lineno

        # The origin's own gen records carry strictly increasing seqs.
        if event.etype == EventType.GEN.value and event.packet is not None:
            if event.packet.origin == node:
                if last_gen_seq is not None and event.packet.seq <= last_gen_seq:
                    findings.append(
                        warning(
                            "LC005",
                            loc,
                            f"gen sequence {event.packet.seq} does not "
                            f"increase past {last_gen_seq}; duplicated or "
                            "reordered generation records",
                        )
                    )
                last_gen_seq = event.packet.seq

    return findings, stats


def _check_packet_integrity(event: Event, loc: str) -> list[Finding]:
    if event.packet is None:
        return []
    findings: list[Finding] = []
    if event.packet.origin < 0 or event.packet.seq < 0:
        findings.append(
            error(
                "LC004",
                loc,
                f"packet key {event.packet} has a negative origin/seq",
            )
        )
    if (
        event.etype == EventType.GEN.value
        and event.packet.origin != event.node
    ):
        findings.append(
            error(
                "LC004",
                loc,
                f"gen event for packet {event.packet} recorded on node "
                f"{event.node}, not its origin {event.packet.origin}",
            )
        )
    return findings
