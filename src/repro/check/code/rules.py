"""The ``CC0xx`` rule visitors: one AST pass per module.

Every rule here is distilled from a bug this repo actually shipped (and
fixed by hand) — the PR 5 shutdown deadlocks and leaked reader tasks,
the ``asyncio.timeout`` 3.10 break and the ``wait_for``
cancellation-swallow it replaced, the discarded trace-ContextVar token,
and the per-line ``time.time()`` 34 % ingest regression of PR 6.  The
scanner is a single :class:`ast.NodeVisitor` walk per module carrying
enough context (async-function stack, lexical loop depth, alias map,
module classification) for each rule to fire precisely.

Rules never import or execute the code under scan; everything is
lexical.  That keeps the analyzer runnable over broken trees and over
the seeded-defect fixtures without side effects.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from ..findings import Finding, Severity
from .modules import ModuleInfo

#: Calls that block the event loop outright (error severity).
BLOCKING_CALLS: dict[str, str] = {
    "time.sleep": "use `await asyncio.sleep(...)`",
    "queue.Queue": "use `asyncio.Queue`",
    "queue.LifoQueue": "use `asyncio.LifoQueue`",
    "queue.PriorityQueue": "use `asyncio.PriorityQueue`",
    "queue.SimpleQueue": "use `asyncio.Queue`",
    "subprocess.run": "use `asyncio.create_subprocess_exec`",
    "subprocess.call": "use `asyncio.create_subprocess_exec`",
    "subprocess.check_call": "use `asyncio.create_subprocess_exec`",
    "subprocess.check_output": "use `asyncio.create_subprocess_exec`",
    "subprocess.Popen": "use `asyncio.create_subprocess_exec`",
    "os.system": "use `asyncio.create_subprocess_shell`",
    "os.popen": "use `asyncio.create_subprocess_shell`",
    "socket.create_connection": "use `asyncio.open_connection`",
    "urllib.request.urlopen": "use an async HTTP client or a thread",
    "requests.get": "use an async HTTP client or a thread",
    "requests.post": "use an async HTTP client or a thread",
    "requests.request": "use an async HTTP client or a thread",
}

#: File-I/O heuristics inside ``async def`` — warning severity, since a
#: one-shot read at startup is often fine but a per-request one is not.
BLOCKING_IO_ATTRS: frozenset[str] = frozenset(
    {"read_text", "write_text", "read_bytes", "write_bytes", "unlink", "mkdir"}
)

#: Wall-clock reads (as opposed to ``time.monotonic``/``perf_counter``,
#: which are fine everywhere: they measure durations, not wall time).
WALL_CLOCK_CALLS: frozenset[str] = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.localtime",
        "time.gmtime",
        "time.ctime",
        "time.asctime",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

#: Global (module-state-seeded) RNG draws.  ``random.Random(seed)``
#: instances and :class:`repro.util.rng.RngStreams` are the sanctioned
#: alternatives, so only the module-level functions are flagged.
GLOBAL_RANDOM_CALLS: frozenset[str] = frozenset(
    {f"random.{fn}" for fn in (
        "random", "randint", "randrange", "getrandbits", "randbytes",
        "choice", "choices", "shuffle", "sample", "uniform", "triangular",
        "gauss", "normalvariate", "expovariate", "betavariate", "seed",
    )}
    | {f"numpy.random.{fn}" for fn in (
        "seed", "rand", "randn", "randint", "random", "random_sample",
        "choice", "shuffle", "permutation", "normal", "uniform",
    )}
)

#: asyncio coroutine functions whose bare call is always a lost coroutine.
ASYNCIO_COROUTINES: frozenset[str] = frozenset(
    {
        "asyncio.sleep",
        "asyncio.gather",
        "asyncio.wait",
        "asyncio.wait_for",
        "asyncio.open_connection",
        "asyncio.open_unix_connection",
        "asyncio.start_server",
        "asyncio.start_unix_server",
        "asyncio.to_thread",
    }
)

#: Timeout primitives that must route through ``repro.serve._compat``:
#: ``asyncio.timeout`` is 3.11+ only and ``wait_for`` swallows outer
#: cancellation on 3.10 (bpo-42130).
RAW_TIMEOUT_CALLS: frozenset[str] = frozenset(
    {"asyncio.wait_for", "asyncio.timeout", "asyncio.timeout_at"}
)

TASK_SPAWNERS: frozenset[str] = frozenset(
    {"asyncio.create_task", "asyncio.ensure_future"}
)


@dataclass(frozen=True)
class RawFinding:
    """A finding before suppression filtering: keeps the line number."""

    severity: Severity
    code: str
    line: int
    message: str

    def bind(self, display: str) -> Finding:
        return Finding(self.severity, self.code, f"{display}:{self.line}", self.message)


class _AliasResolver:
    """Resolve local names back to canonical dotted module paths.

    ``import asyncio as aio`` and ``from asyncio import wait_for as wf``
    both land the hazard under a different local name; the resolver maps
    the leftmost name of any ``Name``/``Attribute`` chain through the
    module's import aliases so rule tables can key on canonical names
    like ``asyncio.wait_for``.
    """

    def __init__(self, tree: ast.Module) -> None:
        self.aliases: dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".", 1)[0]
                    canonical = alias.name if alias.asname else local
                    self.aliases[local] = canonical
            elif isinstance(node, ast.ImportFrom) and not node.level and node.module:
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    self.aliases[local] = f"{node.module}.{alias.name}"

    def canonical(self, node: ast.expr) -> str | None:
        """Canonical dotted name for a Name/Attribute chain, else None."""
        parts: list[str] = []
        cur = node
        while isinstance(cur, ast.Attribute):
            parts.append(cur.attr)
            cur = cur.value
        if not isinstance(cur, ast.Name):
            return None
        base = self.aliases.get(cur.id, cur.id)
        parts.append(base)
        return ".".join(reversed(parts))


def _mentions_cancelled(resolver: _AliasResolver, node: ast.expr | None) -> bool:
    if node is None:
        return False
    if isinstance(node, ast.Tuple):
        return any(_mentions_cancelled(resolver, elt) for elt in node.elts)
    return resolver.canonical(node) == "asyncio.CancelledError"


def _mentions_base_exception(resolver: _AliasResolver, node: ast.expr | None) -> bool:
    if node is None:  # bare except:
        return True
    if isinstance(node, ast.Tuple):
        return any(_mentions_base_exception(resolver, elt) for elt in node.elts)
    return resolver.canonical(node) == "BaseException"


def _raise_in(body: list[ast.stmt]) -> bool:
    """Whether *body* re-raises, ignoring nested function/class scopes."""
    stack: list[ast.AST] = list(body)
    while stack:
        node = stack.pop()
        if isinstance(node, ast.Raise):
            return True
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        stack.extend(ast.iter_child_nodes(node))
    return False


class ModuleScanner(ast.NodeVisitor):
    """One-pass scanner emitting :class:`RawFinding` for every rule."""

    def __init__(self, info: ModuleInfo) -> None:
        assert info.tree is not None
        self.info = info
        self.resolver = _AliasResolver(info.tree)
        self.findings: list[RawFinding] = []
        #: Innermost-function asyncness; empty at module level.
        self._func_stack: list[bool] = []
        #: Lexical loop depth inside the current function.
        self._loop_stack: list[int] = [0]
        self._contextvars = self._collect_contextvars(info.tree)
        self._async_names = self._collect_async_names(info.tree)

    # -- pre-passes ---------------------------------------------------

    @staticmethod
    def _collect_contextvars(tree: ast.Module) -> set[str]:
        names: set[str] = set()
        for node in tree.body:
            value = None
            targets: list[ast.expr] = []
            if isinstance(node, ast.Assign):
                value, targets = node.value, node.targets
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                value, targets = node.value, [node.target]
            if value is None or not isinstance(value, ast.Call):
                continue
            func = value.func
            callee = func.attr if isinstance(func, ast.Attribute) else (
                func.id if isinstance(func, ast.Name) else None
            )
            if callee != "ContextVar":
                continue
            for target in targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        return names

    @staticmethod
    def _collect_async_names(tree: ast.Module) -> set[str]:
        """Module-level async def names plus every async method name."""
        names: set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.AsyncFunctionDef):
                names.add(node.name)
        return names

    # -- helpers ------------------------------------------------------

    @property
    def in_async(self) -> bool:
        return bool(self._func_stack) and self._func_stack[-1]

    @property
    def in_loop(self) -> bool:
        return self._loop_stack[-1] > 0

    def emit(self, severity: Severity, code: str, node: ast.AST, message: str) -> None:
        self.findings.append(
            RawFinding(severity, code, getattr(node, "lineno", 1), message)
        )

    # -- scopes -------------------------------------------------------

    def _visit_function(self, node: ast.AST, is_async: bool) -> None:
        self._func_stack.append(is_async)
        self._loop_stack.append(0)
        self.generic_visit(node)
        self._loop_stack.pop()
        self._func_stack.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node, False)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._scan_writer_discipline(node)
        self._visit_function(node, True)

    def _visit_loop(self, node: ast.AST) -> None:
        self._loop_stack[-1] += 1
        self.generic_visit(node)
        self._loop_stack[-1] -= 1

    def visit_For(self, node: ast.For) -> None:
        self._visit_loop(node)

    def visit_AsyncFor(self, node: ast.AsyncFor) -> None:
        self._visit_loop(node)

    def visit_While(self, node: ast.While) -> None:
        self._visit_loop(node)

    # -- statement-level rules ----------------------------------------

    def visit_Expr(self, node: ast.Expr) -> None:
        if isinstance(node.value, ast.Call):
            self._check_dropped_task(node.value)
            self._check_discarded_token(node.value)
            self._check_unawaited_coroutine(node.value)
        self.generic_visit(node)

    def visit_Assign(self, node: ast.Assign) -> None:
        # ``_ = asyncio.create_task(...)`` drops the handle just as hard.
        if (
            isinstance(node.value, ast.Call)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
            and node.targets[0].id == "_"
        ):
            self._check_dropped_task(node.value)
        self.generic_visit(node)

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if _mentions_cancelled(self.resolver, node.type) and not _raise_in(node.body):
            self.emit(
                Severity.ERROR,
                "CC003",
                node,
                "except asyncio.CancelledError without re-raise: cancellation "
                "is swallowed and shutdown hangs (PR 5 deadlock class); "
                "clean up, then `raise`",
            )
        elif (
            self.in_async
            and _mentions_base_exception(self.resolver, node.type)
            and not _raise_in(node.body)
        ):
            self.emit(
                Severity.WARNING,
                "CC012",
                node,
                "bare/BaseException handler in async code swallows "
                "CancelledError; catch Exception instead or re-raise",
            )
        self.generic_visit(node)

    # -- call-level rules ---------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        name = self.resolver.canonical(node.func)
        if (
            name is None
            and self.in_async
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in BLOCKING_IO_ATTRS
        ):
            # Method call on an unresolvable receiver, e.g.
            # ``pathlib.Path(sock).unlink()`` — still blocking file I/O.
            self.emit(
                Severity.WARNING,
                "CC001",
                node,
                f"possible blocking file I/O (.{node.func.attr}()) inside "
                "async function; move to a thread or a sync setup/teardown "
                "path, or suppress with a reason if it is a one-shot "
                "off-hot-path call",
            )
        if name is not None:
            self._check_raw_timeout(node, name)
            self._check_blocking(node, name)
            self._check_clock_and_rng(node, name)
            if name == "asyncio.get_event_loop":
                self.emit(
                    Severity.WARNING,
                    "CC011",
                    node,
                    "asyncio.get_event_loop() is deprecated outside a running "
                    "loop and behaves differently across 3.10/3.12; use "
                    "asyncio.get_running_loop() (or asyncio.run at the top)",
                )
        self.generic_visit(node)

    def _check_raw_timeout(self, node: ast.Call, name: str) -> None:
        if name in RAW_TIMEOUT_CALLS and not self.info.is_compat_shim:
            self.emit(
                Severity.ERROR,
                "CC004",
                node,
                f"direct {name} call: route through repro.serve._compat.timeout "
                "(asyncio.timeout is 3.11+ only; wait_for swallows outer "
                "cancellation on 3.10, bpo-42130)",
            )

    def _check_blocking(self, node: ast.Call, name: str) -> None:
        if not self.in_async:
            return
        hint = BLOCKING_CALLS.get(name)
        if hint is not None:
            self.emit(
                Severity.ERROR,
                "CC001",
                node,
                f"blocking call {name}() inside async function stalls the "
                f"event loop and every connected source; {hint}",
            )
            return
        attr = name.rsplit(".", 1)[-1]
        if name == "open" or (attr in BLOCKING_IO_ATTRS and "." in name):
            self.emit(
                Severity.WARNING,
                "CC001",
                node,
                f"possible blocking file I/O ({name}) inside async function; "
                "move to a thread or a sync setup/teardown path, or suppress "
                "with a reason if it is a one-shot off-hot-path call",
            )

    def _check_clock_and_rng(self, node: ast.Call, name: str) -> None:
        if name in WALL_CLOCK_CALLS:
            if self.info.deterministic:
                self.emit(
                    Severity.ERROR,
                    "CC008",
                    node,
                    f"wall-clock read {name}() in seed-deterministic module "
                    f"{self.info.name}: replays diverge; derive time from the "
                    "simulation clock or pass timestamps in",
                )
            elif self.info.hot_path and self.in_loop:
                self.emit(
                    Severity.WARNING,
                    "CC010",
                    node,
                    f"wall-clock read {name}() inside a hot-path loop: per-line "
                    "time.time() cost serve ingest 34% in PR 6; hoist to chunk "
                    "granularity or time.monotonic outside the loop",
                )
        elif name in GLOBAL_RANDOM_CALLS and self.info.deterministic:
            self.emit(
                Severity.ERROR,
                "CC009",
                node,
                f"global RNG draw {name}() in seed-deterministic module "
                f"{self.info.name}: draws from shared module state; use a "
                "named stream from repro.util.rng.RngStreams",
            )

    def _check_dropped_task(self, node: ast.Call) -> None:
        name = self.resolver.canonical(node.func)
        is_spawner = name in TASK_SPAWNERS or (
            isinstance(node.func, ast.Attribute) and node.func.attr == "create_task"
        )
        if is_spawner:
            self.emit(
                Severity.ERROR,
                "CC002",
                node,
                "task handle dropped: the task can never be awaited or "
                "cancelled, and shutdown must hunt it down (PR 5 leaked-reader "
                "hang class); keep it in a task set and discard on completion",
            )

    def _check_discarded_token(self, node: ast.Call) -> None:
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr == "set"
            and isinstance(func.value, ast.Name)
            and func.value.id in self._contextvars
        ):
            self.emit(
                Severity.WARNING,
                "CC006",
                node,
                f"ContextVar {func.value.id}.set() token discarded: the "
                "previous value can never be restored, so state leaks across "
                "tasks sharing the context; keep the token and reset() it",
            )

    def _check_unawaited_coroutine(self, node: ast.Call) -> None:
        func = node.func
        name: str | None = None
        if isinstance(func, ast.Name) and func.id in self._async_names:
            name = func.id
        elif (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id == "self"
            and func.attr in self._async_names
        ):
            name = f"self.{func.attr}"
        else:
            canonical = self.resolver.canonical(func)
            if canonical in ASYNCIO_COROUTINES:
                name = canonical
        if name is not None:
            self.emit(
                Severity.ERROR,
                "CC007",
                node,
                f"coroutine {name}(...) called but never awaited: the body "
                "never runs (RuntimeWarning at runtime, silence in "
                "production); add `await` or wrap in a tracked task",
            )

    # -- function-level rule (writer discipline) ----------------------

    def _scan_writer_discipline(self, func: ast.AsyncFunctionDef) -> None:
        """CC005: a drained stream writer closed without ``wait_closed``.

        Heuristic: within one async function, any name that is awaited
        on ``.drain()`` is a StreamWriter; if it is ``.close()``d there
        must also be an ``await <name>.wait_closed()``, else the close
        never completes before the connection object is dropped (data
        loss on the final flush, and 3.12.1+ ``Server.wait_closed``
        waits forever for the half-closed transport).
        """
        drained: set[str] = set()
        closed: dict[str, int] = {}
        waited: set[str] = set()
        stack: list[ast.AST] = list(func.body)
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                recv = node.func.value
                if isinstance(recv, ast.Name):
                    if node.func.attr == "drain":
                        drained.add(recv.id)
                    elif node.func.attr == "close":
                        closed.setdefault(recv.id, node.lineno)
                    elif node.func.attr == "wait_closed":
                        waited.add(recv.id)
            stack.extend(ast.iter_child_nodes(node))
        for name in sorted(drained & set(closed)):
            if name not in waited:
                self.findings.append(
                    RawFinding(
                        Severity.WARNING,
                        "CC005",
                        closed[name],
                        f"stream writer {name!r} closed without `await "
                        f"{name}.wait_closed()`: the final flush may be lost "
                        "and 3.12.1+ Server.wait_closed() can hang on the "
                        "half-closed transport",
                    )
                )


def scan_module(info: ModuleInfo) -> list[RawFinding]:
    """Run every rule over one parsed module."""
    if info.tree is None:
        return [
            RawFinding(
                Severity.ERROR,
                "CC000",
                1,
                f"source failed to parse: {info.parse_error}",
            )
        ]
    scanner = ModuleScanner(info)
    scanner.visit(info.tree)
    return scanner.findings
