"""Module classification for the code analyzer.

Rules fire conditionally on *what kind of module* they are looking at:
wall-clock reads are an error in a seed-deterministic module
(``repro.stress``, ``repro.simnet``, ``repro.lognet``, the benchmarks)
but only a hot-loop warning in the serve daemon, and irrelevant in the
CLI.  This layer derives those classifications once per scan:

* **async daemon** — the module defines at least one ``async def``;
* **seed-deterministic** — the module sits under a deterministic
  namespace or pulls :mod:`repro.util.rng` (the named-stream RNG
  discipline implies the module promises replayability);
* **hot path** — an async daemon, or a module an async daemon imports
  directly (per-line serve code such as the parser and structured
  logger rides the ingest loop even though it is itself sync).

Classification is derived, never annotated — except for an explicit
module pragma (``# refill: module=deterministic`` / ``hot-path`` /
``daemon``) used by fixtures and by code whose role the heuristics
cannot see (e.g. a deterministic helper living outside the usual
namespaces).
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path

#: Namespaces whose modules promise bit-replayable output for a seed.
DETERMINISTIC_PREFIXES: tuple[str, ...] = (
    "repro.stress",
    "repro.simnet",
    "repro.lognet",
    "benchmarks",
)

#: Importing the named-stream RNG discipline marks a module deterministic.
RNG_MODULE = "repro.util.rng"

_PRAGMA_RE = re.compile(r"#\s*refill:\s*module=([a-z-]+)")

#: Pragma values accepted by :func:`module_pragmas`.
MODULE_PRAGMAS: tuple[str, ...] = ("deterministic", "hot-path", "daemon")


@dataclass
class ModuleInfo:
    """One scanned source file plus everything classification needs."""

    path: Path
    #: Dotted module name derived from the path (``repro.serve.ingest``).
    name: str
    #: Display path used in finding locations (stable, forward slashes).
    display: str
    source: str
    #: Parse tree; ``None`` when the source failed to parse (CC000).
    tree: ast.Module | None
    #: Syntax error message when ``tree`` is None.
    parse_error: str | None = None
    #: Modules imported at any level (canonical dotted names).
    imports: set[str] = field(default_factory=set)
    pragmas: set[str] = field(default_factory=set)
    defines_async: bool = False
    deterministic: bool = False
    hot_path: bool = False

    @property
    def is_compat_shim(self) -> bool:
        """The timeout shim itself may touch asyncio.timeout/wait_for."""
        return self.name.rsplit(".", 1)[-1] == "_compat"


def module_name_for(path: Path) -> str:
    """Dotted module name for *path*, anchored at a ``src`` dir if present.

    ``src/repro/serve/ingest.py`` → ``repro.serve.ingest``;
    ``benchmarks/bench_serve.py`` → ``benchmarks.bench_serve``; a path
    with no ``src`` component just dots every part.  ``__init__.py``
    names the package itself.
    """
    parts = list(path.parts)
    if "src" in parts:
        parts = parts[len(parts) - parts[::-1].index("src"):]
    parts = [p for p in parts if p not in (".", "")]
    if not parts:
        return path.stem
    leaf = parts[-1]
    if leaf.endswith(".py"):
        leaf = leaf[:-3]
    if leaf == "__init__":
        parts = parts[:-1]
    else:
        parts = parts[:-1] + [leaf]
    return ".".join(parts) if parts else path.stem


def module_pragmas(source: str) -> set[str]:
    """Module-level ``# refill: module=<kind>`` pragma values in *source*."""
    found: set[str] = set()
    for match in _PRAGMA_RE.finditer(source):
        value = match.group(1)
        if value in MODULE_PRAGMAS:
            found.add(value)
    return found


def collect_imports(tree: ast.Module, module_name: str) -> set[str]:
    """Canonical dotted names of every module *tree* imports.

    ``from M import n`` records both ``M`` and ``M.n`` (the latter in
    case ``n`` is itself a submodule); relative imports are resolved
    against *module_name*'s package.
    """
    imports: set[str] = set()
    package_parts = module_name.split(".")[:-1]
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                imports.add(alias.name)
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                base_parts = package_parts[: len(package_parts) - (node.level - 1)]
                base = ".".join(base_parts)
                if node.module:
                    base = f"{base}.{node.module}" if base else node.module
            else:
                base = node.module or ""
            if base:
                imports.add(base)
                for alias in node.names:
                    if alias.name != "*":
                        imports.add(f"{base}.{alias.name}")
    return imports


def _is_deterministic(info: ModuleInfo) -> bool:
    if "deterministic" in info.pragmas:
        return True
    for prefix in DETERMINISTIC_PREFIXES:
        if info.name == prefix or info.name.startswith(prefix + "."):
            return True
    return any(
        imp == RNG_MODULE or imp.startswith(RNG_MODULE + ".")
        for imp in info.imports
    )


def classify(modules: list[ModuleInfo]) -> None:
    """Fill the classification flags on every module, in place.

    Hot-path propagation needs the whole scan set: a sync module is hot
    when an async daemon *in the same scan* imports it directly.
    """
    by_name = {m.name: m for m in modules}
    for info in modules:
        if info.tree is not None:
            info.defines_async = any(
                isinstance(n, ast.AsyncFunctionDef) for n in ast.walk(info.tree)
            )
        info.deterministic = _is_deterministic(info)
        info.hot_path = info.defines_async or "hot-path" in info.pragmas
        if "daemon" in info.pragmas:
            info.defines_async = True
            info.hot_path = True
    for info in modules:
        if not info.defines_async:
            continue
        for imp in info.imports:
            target = by_name.get(imp)
            if target is None and "." in imp:
                # ``from pkg.mod import name`` also recorded pkg.mod.name;
                # fall back to the containing module.
                target = by_name.get(imp.rsplit(".", 1)[0])
            if target is not None:
                target.hot_path = True


def load_module(path: Path, root: Path | None = None) -> ModuleInfo:
    """Read and parse *path* into a :class:`ModuleInfo` (CC000 on failure)."""
    display = str(path if root is None else path).replace("\\", "/")
    try:
        source = path.read_text(encoding="utf-8", errors="replace")
    except OSError as exc:
        return ModuleInfo(
            path=path,
            name=module_name_for(path),
            display=display,
            source="",
            tree=None,
            parse_error=f"unreadable: {exc}",
        )
    name = module_name_for(path)
    try:
        tree = ast.parse(source)
    except (SyntaxError, ValueError, RecursionError) as exc:
        return ModuleInfo(
            path=path,
            name=name,
            display=display,
            source=source,
            tree=None,
            parse_error=str(exc).splitlines()[0] if str(exc) else type(exc).__name__,
            pragmas=module_pragmas(source),
        )
    info = ModuleInfo(
        path=path,
        name=name,
        display=display,
        source=source,
        tree=tree,
        pragmas=module_pragmas(source),
    )
    info.imports = collect_imports(tree, name)
    return info
