"""``refill check --code`` orchestration: scan, suppress, cap, report.

:func:`check_code` is the third analysis target of the findings engine
(after cross-FSM templates and the log corpus): it walks Python sources,
classifies modules (:mod:`repro.check.code.modules`), runs the ``CC0xx``
rule visitors (:mod:`repro.check.code.rules`) and returns an ordinary
:class:`~repro.check.findings.CheckReport` — same JSON shape, flood
caps, and CI exit codes as every other ``refill check`` mode.

Suppressions are inline comments with a *required* reason::

    self.book.last_seen[source] = time.time()  # refill: no-cc010 -- chunk granularity by design

or on their own line directly above the finding.  A suppression without
a ``-- reason`` is malformed and does not suppress (CC013); a
well-formed suppression that matches no finding is stale (CC013) so
fixed code sheds its pragmas.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from repro.obs import get_registry, span

from ..findings import CheckReport, Severity, cap_per_rule
from .modules import ModuleInfo, classify, load_module
from .rules import RawFinding, scan_module

_SUPPRESS_RE = re.compile(
    r"#\s*refill:\s*no-(cc\d{3})\b(?:\s*--\s*(\S.*?))?\s*$", re.IGNORECASE
)


@dataclass
class Suppression:
    """One inline ``# refill: no-ccNNN -- reason`` directive."""

    code: str
    line: int
    #: Line the suppression applies to (its own, or the next for a
    #: standalone comment line).
    target_line: int
    reason: str | None
    used: bool = False

    @property
    def malformed(self) -> bool:
        return not self.reason


@dataclass
class ScannedModule:
    info: ModuleInfo
    raw: list[RawFinding] = field(default_factory=list)
    suppressions: list[Suppression] = field(default_factory=list)


def _comment_tokens(source: str) -> list[tuple[int, int, str]]:
    """(line, col, text) of every comment, string-literal safe."""
    out: list[tuple[int, int, str]] = []
    try:
        for tok in tokenize.generate_tokens(io.StringIO(source).readline):
            if tok.type == tokenize.COMMENT:
                out.append((tok.start[0], tok.start[1], tok.string))
        return out
    except (tokenize.TokenError, IndentationError, SyntaxError, ValueError):
        pass
    # Fall back to a naive scan; only parseable files reach the rules
    # anyway, so this path covers CC000 sources.
    out = []
    for lineno, line in enumerate(source.splitlines(), start=1):
        idx = line.find("#")
        if idx >= 0:
            out.append((lineno, idx, line[idx:]))
    return out


def collect_suppressions(source: str) -> list[Suppression]:
    lines = source.splitlines()
    found: list[Suppression] = []
    for lineno, col, text in _comment_tokens(source):
        match = _SUPPRESS_RE.search(text)
        if match is None:
            continue
        code = match.group(1).upper()
        reason = match.group(2)
        prefix = lines[lineno - 1][:col] if lineno - 1 < len(lines) else ""
        standalone = not prefix.strip()
        target = lineno + 1 if standalone else lineno
        found.append(
            Suppression(code=code, line=lineno, target_line=target, reason=reason)
        )
    return found


def _apply_suppressions(module: ScannedModule) -> list[RawFinding]:
    """Filter suppressed findings; emit CC013 hygiene findings."""
    by_target: dict[tuple[str, int], list[Suppression]] = {}
    for sup in module.suppressions:
        by_target.setdefault((sup.code, sup.target_line), []).append(sup)
    kept: list[RawFinding] = []
    for raw in module.raw:
        matches = by_target.get((raw.code, raw.line), [])
        active = [s for s in matches if not s.malformed]
        if active:
            for s in active:
                s.used = True
            continue
        kept.append(raw)
    for sup in module.suppressions:
        if sup.malformed:
            kept.append(
                RawFinding(
                    Severity.WARNING,
                    "CC013",
                    sup.line,
                    f"suppression for {sup.code} is missing its reason: write "
                    f"`# refill: no-{sup.code.lower()} -- <why this is safe>`"
                    " (malformed suppressions do not suppress)",
                )
            )
        elif not sup.used and sup.code != "CC013":
            kept.append(
                RawFinding(
                    Severity.WARNING,
                    "CC013",
                    sup.line,
                    f"suppression for {sup.code} matched no finding on line "
                    f"{sup.target_line}; the defect was fixed — delete the pragma",
                )
            )
    return kept


def discover_files(paths: Sequence[Path | str]) -> list[Path]:
    """Expand *paths* to a sorted, de-duplicated list of ``.py`` files.

    Raises :class:`ValueError` for a path that does not exist, matching
    the spec/logs loading errors the CLI maps to exit code 2.
    """
    files: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.update(
                p
                for p in path.rglob("*.py")
                if "__pycache__" not in p.parts
            )
        elif path.is_file():
            files.add(path)
        else:
            raise ValueError(f"no such file or directory: {path}")
    return sorted(files, key=lambda p: str(p))


def scan_paths(paths: Sequence[Path | str]) -> list[ScannedModule]:
    """Load, classify and rule-scan every Python file under *paths*."""
    infos = [load_module(p) for p in discover_files(paths)]
    classify(infos)
    scanned = []
    for info in infos:
        module = ScannedModule(info=info, raw=scan_module(info))
        if info.source:
            module.suppressions = collect_suppressions(info.source)
        scanned.append(module)
    return scanned


def check_code(
    paths: Sequence[Path | str] | Iterable[str],
    *,
    max_per_rule: int = 8,
) -> CheckReport:
    """Run the concurrency & determinism analyzer over *paths*.

    Returns a :class:`CheckReport` whose ``stats`` record scan breadth
    (files, async daemons, deterministic/hot modules, suppressions) so
    the report footer shows coverage alongside the findings.
    """
    path_list = list(paths)
    report = CheckReport()
    registry = get_registry()
    with span("check.code"):
        scanned = scan_paths(path_list)
        findings = []
        suppressed = 0
        for module in scanned:
            kept = _apply_suppressions(module)
            suppressed += sum(1 for s in module.suppressions if s.used)
            findings.extend(raw.bind(module.info.display) for raw in kept)
        report.extend(cap_per_rule(findings, max_per_rule, summary_code="CC014"))
        report.stats.update(
            {
                "files": len(scanned),
                "async_daemons": sum(1 for m in scanned if m.info.defines_async),
                "deterministic_modules": sum(
                    1 for m in scanned if m.info.deterministic
                ),
                "hot_path_modules": sum(1 for m in scanned if m.info.hot_path),
                "suppressions_used": suppressed,
            }
        )
        registry.counter("check.code.files").inc(len(scanned))
    for severity in (Severity.ERROR, Severity.WARNING, Severity.INFO):
        count = sum(1 for f in report.findings if f.severity is severity)
        if count:
            registry.counter("check.findings", severity=str(severity)).inc(count)
    return report


__all__ = [
    "Suppression",
    "ScannedModule",
    "check_code",
    "collect_suppressions",
    "discover_files",
    "scan_paths",
]
