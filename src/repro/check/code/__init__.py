"""Concurrency & determinism code analysis (``refill check --code``).

The third analysis target of the ``refill check`` findings engine,
alongside the cross-FSM template checks and the log-corpus lint: an AST
analyzer for the Python sources themselves, encoding the concurrency
and determinism discipline this reproduction depends on (serve daemon
shutdown safety, 3.10-compatible timeouts, seed-replayable stress and
simnet runs, hot-loop clock hygiene).

- :mod:`repro.check.code.modules` — module classification: which
  modules are async daemons, seed-deterministic, hot paths;
- :mod:`repro.check.code.rules` — the ``CC0xx`` AST rule visitors;
- :mod:`repro.check.code.analyzer` — orchestration, inline
  suppressions, flood caps, the :func:`check_code` entry point.

Every rule code is catalogued in ``docs/STATIC_ANALYSIS.md``.
"""

from repro.check.code.analyzer import check_code, collect_suppressions, scan_paths
from repro.check.code.modules import ModuleInfo, classify, load_module, module_name_for
from repro.check.code.rules import ModuleScanner, scan_module

__all__ = [
    "ModuleInfo",
    "ModuleScanner",
    "check_code",
    "classify",
    "collect_suppressions",
    "load_module",
    "module_name_for",
    "scan_module",
    "scan_paths",
]
