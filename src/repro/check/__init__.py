"""Whole-deployment static analysis (``refill check``).

REFILL's inference is only as sound as its inputs: a nondeterministic
template, a cyclic inter-node prerequisite, or a malformed log line silently
corrupts every reconstructed event flow.  This package verifies a deployment
*before* any reconstruction runs:

- :mod:`repro.check.findings` — the shared findings engine: severities,
  stable rule codes, deterministic text/JSON reports and CI exit codes;
- :mod:`repro.check.crossfsm` — cross-FSM analysis over a
  :class:`DeploymentSpec` (prerequisite resolution across per-role
  templates, inter-node prerequisite cycles, ambiguous jump derivations,
  event-label collisions);
- :mod:`repro.check.corpus` — log-corpus lint over a store directory
  (schema conformance, append-order sanity, packet referential integrity,
  unknown labels, corrupt lines);
- :mod:`repro.check.code` — AST-based concurrency & determinism lint over
  the Python sources themselves (``refill check --code``, ``CC*`` codes);
- :mod:`repro.check.runner` — orchestration plus the pre-flight gate used
  by :mod:`repro.analysis.pipeline`;
- :mod:`repro.check.specs` — named deployment specs for the CLI.

``docs/STATIC_ANALYSIS.md`` catalogues every rule code with a triggering
example and remediation.
"""

from repro.check.code import check_code
from repro.check.corpus import check_corpus
from repro.check.crossfsm import DeploymentSpec, check_templates
from repro.check.findings import (
    CheckReport,
    Finding,
    RULES,
    Severity,
)
from repro.check.runner import PreflightError, preflight_check, run_check
from repro.check.specs import BUILTIN_SPECS, load_spec

__all__ = [
    "BUILTIN_SPECS",
    "CheckReport",
    "DeploymentSpec",
    "Finding",
    "PreflightError",
    "RULES",
    "Severity",
    "check_code",
    "check_corpus",
    "check_templates",
    "load_spec",
    "preflight_check",
    "run_check",
]
