"""Orchestration for ``refill check`` plus the pipeline pre-flight gate.

:func:`run_check` runs every analyzer family over a deployment and returns
one :class:`~repro.check.findings.CheckReport`; it instruments itself
through :mod:`repro.obs` (``check.*`` spans, ``check.findings`` counters)
so pre-flight cost and outcomes show up in the run's metrics snapshot.

:func:`preflight_check` is the thin gate the analysis pipeline calls before
reconstruction: model errors raise :class:`PreflightError` because a broken
template silently corrupts every reconstructed flow, while corpus findings
never block — field data is expected to be dirty and the store loader is
tolerant by design.
"""

from __future__ import annotations

from typing import Optional

from repro.check.corpus import check_corpus
from repro.check.crossfsm import DeploymentSpec, check_templates
from repro.check.findings import CheckReport, Finding, Severity
from repro.fsm.templates import FsmTemplate
from repro.obs import get_registry, span


class PreflightError(RuntimeError):
    """A deployment failed its pre-flight static analysis."""

    def __init__(self, findings: list[Finding]) -> None:
        self.findings = findings
        detail = "; ".join(f.format() for f in findings[:5])
        more = f" (+{len(findings) - 5} more)" if len(findings) > 5 else ""
        super().__init__(f"pre-flight check failed: {detail}{more}")


def run_check(
    spec: DeploymentSpec,
    logs_dir=None,
    *,
    max_per_rule: int = 8,
) -> CheckReport:
    """Static-analyze a whole deployment.

    Always checks the role templates; additionally lints the log corpus at
    ``logs_dir`` when one is given.
    """
    report = CheckReport()
    registry = get_registry()
    with span("check"):
        with span("check.templates"):
            report.extend(check_templates(spec))
        report.stats["roles"] = len(spec.roles)
        if logs_dir is not None:
            with span("check.corpus"):
                corpus_findings, stats = check_corpus(
                    logs_dir, spec, max_per_rule=max_per_rule
                )
            report.extend(corpus_findings)
            report.stats.update(stats)
            registry.counter("check.corpus.lines").inc(stats.get("lines", 0))
            registry.counter("check.corpus.corrupt").inc(stats.get("corrupt", 0))
    for severity in (Severity.ERROR, Severity.WARNING, Severity.INFO):
        count = sum(1 for f in report.findings if f.severity is severity)
        if count:
            registry.counter("check.findings", severity=str(severity)).inc(count)
    return report


def model_errors(report: CheckReport) -> list[Finding]:
    """Error findings about the *model* (templates), not the corpus.

    These are the findings that justify refusing to reconstruct: corrupt
    log data is survivable (tolerant decoding), a broken FSM is not.
    """
    return [f for f in report.errors if not f.code.startswith("LC")]


def preflight_check(
    template: "FsmTemplate | object",
    *,
    raise_on_error: bool = True,
) -> Optional[CheckReport]:
    """Gate a pipeline run on its template's static analysis.

    ``template`` is whatever :class:`~repro.core.refill.Refill` carries — a
    single :class:`FsmTemplate` or a per-node factory.  Factories cannot be
    enumerated statically, so they pass without analysis (``None`` return).
    Raises :class:`PreflightError` on model errors unless told otherwise.
    """
    if not isinstance(template, FsmTemplate):
        return None
    spec = DeploymentSpec(roles={template.name: template})
    with span("check.preflight"):
        report = run_check(spec)
    errors = model_errors(report)
    if errors and raise_on_error:
        raise PreflightError(errors)
    return report
