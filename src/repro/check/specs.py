"""Named deployment specs for the ``refill check`` CLI.

``refill check --spec NAME`` resolves here: the built-in names cover the
workloads this repository ships, and the ``module:callable`` form loads a
custom spec — the callable (or plain attribute) must produce a
:class:`~repro.check.crossfsm.DeploymentSpec`.  CI fixtures use the dynamic
form to check seeded-defect deployments that live outside the package.
"""

from __future__ import annotations

import importlib
from typing import Callable

from repro.check.crossfsm import DeploymentSpec
from repro.fsm.templates import (
    dissemination_templates,
    forwarder_template,
    query_templates,
)


# Route-churn telemetry the simulator logs for the analysis layer; it does
# not drive the forwarder FSM and must not trip the corpus vocabulary lint.
_CTP_AUX_LABELS = frozenset({"parent_change"})


def _ctp_spec() -> DeploymentSpec:
    return DeploymentSpec(
        roles={"forwarder": forwarder_template()}, aux_labels=_CTP_AUX_LABELS
    )


def _ctp_nogen_spec() -> DeploymentSpec:
    return DeploymentSpec(
        roles={"forwarder": forwarder_template(with_gen=False)},
        aux_labels=_CTP_AUX_LABELS,
    )


def _dissemination_spec() -> DeploymentSpec:
    template_for = dissemination_templates(seeder=0)
    return DeploymentSpec(
        roles={"seeder": template_for(0), "receiver": template_for(1)},
        node_roles={0: "seeder"},
    )


def _query_spec() -> DeploymentSpec:
    template_for = query_templates(origin=0)
    return DeploymentSpec(roles={"node": template_for(0)})


BUILTIN_SPECS: dict[str, Callable[[], DeploymentSpec]] = {
    "ctp": _ctp_spec,
    "ctp-nogen": _ctp_nogen_spec,
    "dissemination": _dissemination_spec,
    "query-flood": _query_spec,
}


def load_spec(ref: str) -> DeploymentSpec:
    """Resolve ``ref`` to a :class:`DeploymentSpec`.

    ``ref`` is a built-in name (see :data:`BUILTIN_SPECS`), a path to a
    serialized :class:`~repro.learn.spec.LearnedSpec` (``*.json``, as
    written by ``refill learn``), or a ``module:attribute`` reference; the
    attribute may be the spec itself or a zero-argument callable returning
    one.
    """
    if ref in BUILTIN_SPECS:
        return BUILTIN_SPECS[ref]()
    if ref.endswith(".json"):
        # Lazy: the learn package realizes templates through fsm/, which
        # must not become an import-time dependency of the check layer.
        from repro.learn.spec import load_learned_spec

        return load_learned_spec(ref).deployment_spec()
    if ":" not in ref:
        known = ", ".join(sorted(BUILTIN_SPECS))
        raise ValueError(
            f"unknown spec {ref!r}; built-ins: {known} "
            "(or a learned-spec *.json path, or the module:attribute form)"
        )
    module_name, _, attr = ref.partition(":")
    module = importlib.import_module(module_name)
    try:
        obj = getattr(module, attr)
    except AttributeError as exc:
        raise ValueError(f"module {module_name!r} has no attribute {attr!r}") from exc
    spec = obj() if callable(obj) else obj
    if not isinstance(spec, DeploymentSpec):
        raise ValueError(f"{ref!r} did not produce a DeploymentSpec")
    return spec
