"""Dissemination workload simulator (paper Fig. 3b/d at workload scale).

A seeder pushes a versioned update to its radio neighbourhood: each round it
re-broadcasts to the targets that have not confirmed, receivers apply the
update and send a confirmation back over their (lossy) link, and the seeder
records completion once everyone confirmed (or gives up after the round
budget).  Every node logs locally; :mod:`repro.lognet` degrades the logs;
the :func:`repro.fsm.templates.dissemination_templates` engines reconstruct
who actually received what.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.events.event import Event
from repro.events.log import NodeLog
from repro.events.packet import PacketKey
from repro.simnet.link import LinkModel, LinkParams
from repro.simnet.topology import Topology, make_grid_topology
from repro.util.rng import RngStreams


@dataclass(frozen=True, slots=True)
class DisseminationParams:
    """One dissemination campaign."""

    n_nodes: int = 16
    seed: int = 3
    #: Re-broadcast rounds before the seeder gives up on silent targets.
    max_rounds: int = 4
    #: Seconds between rounds.
    round_interval: float = 5.0
    #: Number of updates (versions) pushed sequentially.
    updates: int = 1


@dataclass
class DisseminationResult:
    """True outcome + true logs of a campaign."""

    topology: Topology
    seeder: int
    targets: tuple[int, ...]
    true_logs: dict[int, NodeLog]
    #: Per update: targets that actually applied it.
    applied: dict[PacketKey, frozenset[int]]
    #: Per update: did the seeder record completion?
    completed: dict[PacketKey, bool]


def run_dissemination(params: DisseminationParams) -> DisseminationResult:
    """Simulate the campaign and return ground truth + true logs."""
    rng = RngStreams(params.seed)
    topology = make_grid_topology(params.n_nodes, rng)
    link = LinkModel(topology, rng, LinkParams())
    seeder = topology.sink  # reuse the central node as the seeder
    targets = tuple(sorted(topology.neighbors(seeder)))
    logs = {n: NodeLog(n) for n in topology.nodes}
    chance = rng.stream("dissemination")

    applied: dict[PacketKey, frozenset[int]] = {}
    completed: dict[PacketKey, bool] = {}
    t = 0.0
    for version in range(1, params.updates + 1):
        update = PacketKey(seeder, version)
        have: set[int] = set()
        confirmed: set[int] = set()
        targets_info = ",".join(str(n) for n in targets)
        for _ in range(params.max_rounds):
            pending = [n for n in targets if n not in confirmed]
            if not pending:
                break
            logs[seeder].append(
                Event.make("adv", seeder, packet=update, time=t, targets=targets_info)
            )
            for node in pending:
                if chance.random() >= link.prr(seeder, node, t):
                    continue  # broadcast frame missed
                if node not in have:
                    have.add(node)
                    logs[node].append(
                        Event.make(
                            "update_recv", node, src=seeder, dst=node, packet=update, time=t
                        )
                    )
                # confirm (each received round re-confirms until heard)
                logs[node].append(
                    Event.make(
                        "update_ack", node, src=node, dst=seeder, packet=update,
                        time=t + 0.5,
                    )
                )
                if chance.random() < link.prr(node, seeder, t):
                    confirmed.add(node)
            t += params.round_interval
        done = set(targets) <= confirmed
        if done:
            logs[seeder].append(
                Event.make("complete", seeder, packet=update, time=t, targets=targets_info)
            )
        applied[update] = frozenset(have)
        completed[update] = done
        t += params.round_interval
    return DisseminationResult(
        topology=topology,
        seeder=seeder,
        targets=targets,
        true_logs=logs,
        applied=applied,
        completed=completed,
    )
