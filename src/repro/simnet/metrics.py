"""Network-level metrics over a simulation's ground truth.

Operator-facing statistics used by examples and benchmarks: per-node
delivery, hop-length distribution, load concentration — the numbers a
CitySee-style deployment dashboard would show.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.simnet.network import SimulationResult
from repro.simnet.truth import TrueCause


@dataclass
class NetworkReport:
    """Ground-truth statistics of one run."""

    packets: int
    delivered: int
    per_origin_delivery: dict[int, float]
    hop_histogram: Counter
    node_forwarding_load: Counter
    loss_counts: dict[TrueCause, int]

    @property
    def delivery_ratio(self) -> float:
        return self.delivered / self.packets if self.packets else 0.0

    def mean_hops(self) -> float:
        total = sum(self.hop_histogram.values())
        if not total:
            return 0.0
        return sum(h * c for h, c in self.hop_histogram.items()) / total


def summarize(result: SimulationResult) -> NetworkReport:
    """Compute the report from a simulation's ground truth."""
    truth = result.truth
    bs = result.base_station_node
    per_origin: dict[int, list[int]] = {}
    hop_histogram: Counter = Counter()
    load: Counter = Counter()
    for packet, fate in truth.fates.items():
        per_origin.setdefault(packet.origin, [0, 0])
        per_origin[packet.origin][1] += 1
        per_origin[packet.origin][0] += fate.delivered
        path = truth.true_path(packet, exclude=frozenset({bs}))
        if fate.delivered:
            hop_histogram[max(0, len(path) - 1)] += 1
        for node in path[1:]:  # forwarding work: everyone after the origin
            load[node] += 1
    return NetworkReport(
        packets=len(truth.fates),
        delivered=len(truth.delivered_packets()),
        per_origin_delivery={
            origin: ok / total for origin, (ok, total) in sorted(per_origin.items())
        },
        hop_histogram=hop_histogram,
        node_forwarding_load=load,
        loss_counts=truth.loss_counts(),
    )
