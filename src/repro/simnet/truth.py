"""Ground truth: what *actually* happened to every packet.

The physical CitySee deployment could only assert causes qualitatively; the
simulator records the authoritative per-packet fate and the full true event
sequence, enabling the accuracy ablations (benchmarks A1-A3 in DESIGN.md)
that score REFILL's reconstruction.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Mapping, Optional

from repro.events.event import Event
from repro.events.packet import PacketKey


class TrueCause(str, enum.Enum):
    """Authoritative loss causes (simulator-side vocabulary).

    Note the deliberate asymmetry with the observer-side
    :class:`~repro.core.diagnosis.LossCause`: "acked loss" does not exist
    here — it is an *observation* artifact (whether the receiver's receive
    record survived), not a physical mechanism.
    """

    DELIVERED = "delivered"
    #: All MAC retries failed and the sender dropped the packet.
    TIMEOUT = "timeout"
    #: Dropped by a duplicate-cache hit (routing loop) with no live copy left.
    DUPLICATE = "duplicated"
    #: Receiver forwarding queue full.
    OVERFLOW = "overflow"
    #: Died inside a node after reception (task-post failure etc.).
    IN_NODE = "in_node"
    #: Silent RS232 drop between sink and base station.
    SERIAL = "serial"
    #: Base-station server outage.
    OUTAGE = "server_outage"
    #: Hop/TTL budget exceeded (persistent loop).
    TTL = "ttl"
    #: No route toward the sink when the packet had to be forwarded.
    NO_ROUTE = "no_route"
    #: The holding node crashed with the packet in its RAM queue.
    CRASH = "crash"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True, slots=True)
class TrueFate:
    """Final outcome of one packet."""

    cause: TrueCause
    #: Node where the packet was lost (or the base station when delivered).
    position: Optional[int]
    #: True time of the terminal event.
    time: float

    @property
    def delivered(self) -> bool:
        return self.cause is TrueCause.DELIVERED


class GroundTruth:
    """Per-packet true record: every event (logged or not) plus the fate."""

    def __init__(self) -> None:
        self.events: dict[PacketKey, list[Event]] = {}
        self.fates: dict[PacketKey, TrueFate] = {}
        self.gen_times: dict[PacketKey, float] = {}

    def record_event(self, packet: PacketKey, event: Event) -> None:
        """Append a true event to the packet's record."""
        self.events.setdefault(packet, []).append(event)

    def record_gen(self, packet: PacketKey, time: float) -> None:
        """Record the packet's generation time."""
        self.gen_times[packet] = time

    def record_fate(self, packet: PacketKey, fate: TrueFate) -> None:
        if packet in self.fates:
            raise ValueError(f"fate of {packet} already recorded")
        self.fates[packet] = fate

    # ------------------------------------------------------------------ #

    def packets(self) -> list[PacketKey]:
        """All packets with a recorded fate, sorted."""
        return sorted(self.fates)

    def lost_packets(self) -> list[PacketKey]:
        """Packets that did not reach the base station."""
        return [p for p in self.packets() if not self.fates[p].delivered]

    def delivered_packets(self) -> list[PacketKey]:
        """Packets that reached the base station."""
        return [p for p in self.packets() if self.fates[p].delivered]

    def delivery_ratio(self) -> float:
        """Delivered fraction over all fated packets."""
        if not self.fates:
            return 0.0
        return len(self.delivered_packets()) / len(self.fates)

    def loss_counts(self) -> dict[TrueCause, int]:
        """Loss counts per true cause."""
        counts: dict[TrueCause, int] = {}
        for fate in self.fates.values():
            if not fate.delivered:
                counts[fate.cause] = counts.get(fate.cause, 0) + 1
        return counts

    # ------------------------------------------------------------------ #
    # persistence (stress-harness reproducer artifacts)

    def to_json(self) -> dict[str, Any]:
        """JSON-compatible dump: events in the log-line codec, fates flat.

        The inverse of :meth:`from_json`; used by the stress harness to
        ship ground truth alongside a reproducer corpus so a differential
        oracle can be replayed without re-running the simulation.
        """
        from repro.events.codec import encode_event  # events ↔ codec cycle guard

        return {
            "events": {
                str(p): [encode_event(e) for e in evs]
                for p, evs in sorted(self.events.items())
            },
            "fates": {
                str(p): {
                    "cause": str(f.cause),
                    "position": f.position,
                    "time": f.time,
                }
                for p, f in sorted(self.fates.items())
            },
            "gen_times": {str(p): t for p, t in sorted(self.gen_times.items())},
        }

    @classmethod
    def from_json(cls, data: Mapping[str, Any]) -> "GroundTruth":
        from repro.events.codec import decode_event

        truth = cls()
        for key, lines in data.get("events", {}).items():
            packet = PacketKey.parse(key)
            truth.events[packet] = [decode_event(line) for line in lines]
        for key, fate in data.get("fates", {}).items():
            truth.fates[PacketKey.parse(key)] = TrueFate(
                cause=TrueCause(fate["cause"]),
                position=fate["position"],
                time=float(fate["time"]),
            )
        for key, t in data.get("gen_times", {}).items():
            truth.gen_times[PacketKey.parse(key)] = float(t)
        return truth

    def true_path(self, packet: PacketKey, *, exclude: frozenset[int] = frozenset()) -> list[int]:
        """Nodes the packet actually visited, in order.

        Derived from the true generation/receive events; ``exclude`` drops
        pseudo-nodes (e.g. the base station) for radio-path comparisons.
        """
        path: list[int] = []
        for event in self.events.get(packet, []):
            if event.etype in ("gen", "recv") and event.node not in exclude:
                if not path or path[-1] != event.node:
                    path.append(event.node)
        return path


# --------------------------------------------------------------------- #
# ground-truth exports for the learning pipeline


def ground_truth_template():
    """The authoritative template behind the simulator's event stream.

    The CitySee simulator drives every node with the CTP forwarder FSM;
    :mod:`repro.learn.evaluate` compares a learned graph against this one.
    Imported lazily — :mod:`repro.fsm` must not become a simnet dependency.
    """
    from repro.fsm.templates import forwarder_template

    return forwarder_template()


def true_label_traces(truth: "GroundTruth") -> list[tuple[str, ...]]:
    """Per-(packet, node) true label sequences, sorted and deduplicated.

    The lossless analog of what :mod:`repro.learn.traces` extracts from
    collected logs — the oracle training corpus for learner self-tests.
    """
    per: dict[tuple[PacketKey, int], list[str]] = {}
    for packet in sorted(truth.events):
        for event in truth.events[packet]:
            per.setdefault((packet, event.node), []).append(event.etype)
    return sorted({tuple(labels) for labels in per.values()})
