"""The network orchestrator: packets, queues, logging, ground truth.

Ties the substrate layers together into a running network.  Every node logs
its own events (``gen``/``recv``/``trans``/``ack_recvd``/``dup``/
``overflow``/``timeout``, paper Table I) into a *true* per-node log with
true timestamps; :mod:`repro.lognet` later degrades those into the lossy
collected logs REFILL sees.  Silent losses — in-node task failures, serial
drops, server outages — produce **no** event, which is precisely what makes
them invisible to naive analysis and recoverable by REFILL's inference.

Model simplifications (documented per DESIGN.md §1.3): packets move as a
single live copy (a hardware-ack loss makes the sender time out and drop
while the receiver's copy continues — no forking); MAC contention between
nodes is not modelled; the origin's application queue never overflows (CTP
clients have a dedicated send slot).
"""

from __future__ import annotations

from collections import OrderedDict, deque
from dataclasses import dataclass, replace
from typing import Optional

from repro.events.event import Event, EventType
from repro.events.log import NodeLog
from repro.events.packet import PacketKey
from repro.simnet.ctp import CtpParams, CtpRouting
from repro.simnet.link import Disturbance, LinkModel, LinkParams
from repro.simnet.mac import LplMac, MacParams
from repro.simnet.sim import Simulator
from repro.simnet.sinkpath import BaseStationModel, SerialLink
from repro.simnet.topology import Topology, make_grid_topology
from repro.simnet.truth import GroundTruth, TrueCause, TrueFate
from repro.util.rng import RngStreams


@dataclass(frozen=True, slots=True)
class NodeParams:
    """Per-node resource model (paper §V-D3: losses *inside* nodes)."""

    queue_capacity: int = 12
    dup_cache_size: int = 64
    #: Probability a received packet dies being handed to upper layers
    #: (task-post failure, component conflicts) — a silent in-node loss.
    task_fail_p: float = 0.004
    #: Per-packet processing delay before the radio takes over.
    proc_delay: float = 0.005
    #: Serial transfer time of one packet at the sink.
    serial_time: float = 0.02
    #: Hop budget (CTP's THL); exceeded = persistent loop.
    max_hops: int = 25

    def __post_init__(self) -> None:
        if self.queue_capacity < 1 or self.dup_cache_size < 1 or self.max_hops < 1:
            raise ValueError("capacities must be positive")
        if not 0.0 <= self.task_fail_p <= 1.0:
            raise ValueError("task_fail_p must be a probability")


@dataclass(frozen=True, slots=True)
class CrashParams:
    """Runtime node failures (paper §III: "malfunction of nodes").

    Crashes follow a per-node Poisson process; a crashed node drops its RAM
    queue (silent in-node losses), stops generating/forwarding (neighbours'
    sends time out) and returns after ``repair_time``.  Its flash log
    survives — log-side losses are :mod:`repro.lognet`'s department.
    """

    #: Expected crashes per node per ``day_seconds`` of simulated time.
    rate_per_day: float = 0.0
    day_seconds: float = 7200.0
    repair_time: float = 600.0

    def __post_init__(self) -> None:
        if self.rate_per_day < 0:
            raise ValueError("rate_per_day must be non-negative")
        if self.repair_time <= 0 or self.day_seconds <= 0:
            raise ValueError("repair_time/day_seconds must be positive")


@dataclass(frozen=True)
class ScenarioParams:
    """Everything needed to build and run one network scenario."""

    n_nodes: int = 60
    duration: float = 3600.0
    gen_interval: float = 300.0
    #: Width of the window the per-node sampling phases fall in.  Sensing
    #: applications sample on a common period, so phases cluster: rounds of
    #: near-simultaneous generation hit the relays as arrival bursts (and,
    #: when links are also degraded, as queue overflow).  ``None`` spreads
    #: phases uniformly over the whole interval.
    gen_sync_window: Optional[float] = 30.0
    seed: int = 7
    spacing: float = 50.0
    jitter: float = 10.0
    radio_range: float = 80.0
    link: LinkParams = LinkParams()
    disturbances: tuple[Disturbance, ...] = ()
    mac: MacParams = MacParams()
    ctp: CtpParams = CtpParams()
    node: NodeParams = NodeParams()
    serial: SerialLink = SerialLink()
    base_station: BaseStationModel = BaseStationModel()
    crash: CrashParams = CrashParams()

    def with_(self, **changes) -> "ScenarioParams":
        """Functional update."""
        return replace(self, **changes)


@dataclass
class SimulationResult:
    """Everything a downstream analysis needs."""

    params: ScenarioParams
    topology: Topology
    #: True per-node logs (true timestamps, nothing lost yet).
    true_logs: dict[int, NodeLog]
    truth: GroundTruth
    #: Data packets received at the base station, with true arrival times —
    #: the input of the sink-view baseline (paper Fig. 4).
    bs_arrivals: list[tuple[PacketKey, float]]
    sim_events: int

    @property
    def sink(self) -> int:
        return self.topology.sink

    @property
    def base_station_node(self) -> int:
        return self.topology.base_station

    def delivery_ratio(self) -> float:
        return self.truth.delivery_ratio()


class Network:
    """Builds and runs one scenario."""

    def __init__(self, params: ScenarioParams) -> None:
        self.params = params
        self.rng = RngStreams(params.seed)
        self.topology = make_grid_topology(
            params.n_nodes,
            self.rng,
            spacing=params.spacing,
            jitter=params.jitter,
            radio_range=params.radio_range,
        )
        self.link = LinkModel(self.topology, self.rng, params.link, params.disturbances)
        self.mac = LplMac(self.link, self.rng, params.mac)
        self.routing = CtpRouting(self.topology, self.link, self.rng, params.ctp)
        self.sim = Simulator()
        self.truth = GroundTruth()
        self.logs: dict[int, NodeLog] = {
            n: NodeLog(n) for n in [*self.topology.nodes, self.topology.base_station]
        }
        self.bs_arrivals: list[tuple[PacketKey, float]] = []
        #: Per-node forwarding FIFO; the transmitter serves it serially, so
        #: degraded links (long retry storms) back queues up — the source of
        #: bursty overflow losses (paper Fig. 5).
        self._fifo: dict[int, deque[tuple[PacketKey, int]]] = {
            n: deque() for n in self.topology.nodes
        }
        self._busy: dict[int, bool] = {n: False for n in self.topology.nodes}
        self._dup_cache: dict[int, OrderedDict[PacketKey, None]] = {
            n: OrderedDict() for n in self.topology.nodes
        }
        self._seq: dict[int, int] = {n: 0 for n in self.topology.nodes}
        self._gen_stream = self.rng.stream("gen")
        self._node_stream = self.rng.stream("node")
        self._serial_stream = self.rng.stream("serial")
        self._crash_stream = self.rng.stream("crash")
        self._alive: dict[int, bool] = {n: True for n in self.topology.nodes}
        self.routing.is_alive = self._alive.__getitem__

    # ------------------------------------------------------------------ #

    def run(self) -> SimulationResult:
        """Converge routing, generate traffic, run to completion."""
        p = self.params
        self.routing.converge(0.0)
        self._schedule_beacons()
        window = p.gen_sync_window if p.gen_sync_window is not None else p.gen_interval
        for node in self.topology.nodes:
            if node == self.topology.sink:
                continue
            phase = self._gen_stream.uniform(0.0, window)
            if phase < p.duration:
                self.sim.at(phase, self._make_generator(node, phase, 0))
        self._schedule_crashes()
        self.sim.run()
        return SimulationResult(
            params=p,
            topology=self.topology,
            true_logs=self.logs,
            truth=self.truth,
            bs_arrivals=self.bs_arrivals,
            sim_events=self.sim.events_run,
        )

    # ------------------------------------------------------------------ #
    # scheduling helpers

    def _schedule_beacons(self) -> None:
        interval = self.params.ctp.beacon_interval
        t = interval
        while t <= self.params.duration:
            self.sim.at(t, self._make_beacon(t))
            t += interval

    def _make_beacon(self, t: float):
        def fire() -> None:
            before = dict(self.routing.parent)
            self.routing.beacon_round(t)
            # nodes log their own parent switches — real CTP deployments do,
            # and it is exactly the packet-less log noise REFILL must skip
            # while the route analytics consume it
            now = self.sim.now
            for node, parent in self.routing.parent.items():
                if parent != before.get(node) and self._alive[node]:
                    # info values as strings: the text codec is typeless and
                    # round-trips must be exact
                    self.logs[node].append(
                        Event.make(
                            "parent_change",
                            node,
                            time=now,
                            old=str(before.get(node)),
                            new=str(parent),
                        )
                    )
        return fire

    def _schedule_crashes(self) -> None:
        """Poisson crash/repair schedule per node (sink excluded: a dead
        sink ends the deployment rather than being a per-packet fate)."""
        p = self.params.crash
        if p.rate_per_day <= 0:
            return
        rate = p.rate_per_day / p.day_seconds
        for node in self.topology.nodes:
            if node == self.topology.sink:
                continue
            t = self._crash_stream.expovariate(rate)
            while t < self.params.duration:
                self.sim.at(t, self._make_crash(node))
                recover = t + p.repair_time
                self.sim.at(recover, self._make_repair(node))
                t = recover + self._crash_stream.expovariate(rate)

    def _make_crash(self, node: int):
        def crash() -> None:
            self._alive[node] = False
            now = self.sim.now
            # the RAM queue dies with the node; the flash log survives
            for packet, _hops in self._fifo[node]:
                self.truth.record_fate(packet, TrueFate(TrueCause.CRASH, node, now))
            self._fifo[node].clear()
        return crash

    def _make_repair(self, node: int):
        def repair() -> None:
            self._alive[node] = True
            self._busy[node] = False
        return repair

    def _make_generator(self, node: int, phase: float, round_no: int):
        def fire() -> None:
            self._generate(node)
            interval = self.params.gen_interval
            # anchored to the sampling epoch so phases stay clustered
            jitter = self._gen_stream.uniform(-0.02, 0.02) * interval
            nxt = phase + (round_no + 1) * interval + jitter
            if self.sim.now < nxt < self.params.duration:
                self.sim.at(nxt, self._make_generator(node, phase, round_no + 1))
        return fire

    # ------------------------------------------------------------------ #
    # packet lifecycle

    def _log(self, packet: PacketKey, event: Event) -> None:
        self.logs[event.node].append(event)
        self.truth.record_event(packet, event)

    def _generate(self, node: int) -> None:
        if not self._alive[node]:
            return  # crashed: skip this sensing round
        now = self.sim.now
        self._seq[node] += 1
        packet = PacketKey(node, self._seq[node])
        self.truth.record_gen(packet, now)
        self._log(packet, Event.make(EventType.GEN, node, packet=packet, time=now))
        # the application slot: always accepted (see module docstring)
        self._dup_cache_add(node, packet)
        self._enqueue(node, packet, hops=0)

    def _enqueue(self, node: int, packet: PacketKey, hops: int) -> None:
        """Put the packet on the node's transmit FIFO; kick the transmitter."""
        self._fifo[node].append((packet, hops))
        if not self._busy[node]:
            self._busy[node] = True
            self.sim.after(self.params.node.proc_delay, lambda: self._service(node))

    def _service(self, node: int) -> None:
        """Serve the head of the node's FIFO; reschedules itself while busy."""
        fifo = self._fifo[node]
        if not self._alive[node] or not fifo:
            self._busy[node] = False
            return
        packet, hops = fifo.popleft()
        duration = self._transmit(node, packet, hops)
        self.sim.after(duration, lambda: self._service(node))

    def _transmit(self, node: int, packet: PacketKey, hops: int) -> float:
        """One forwarding step; returns how long the transmitter is busy."""
        now = self.sim.now
        if node == self.topology.sink:
            self._deliver_serial(packet)
            return self.params.node.serial_time
        parent = self.routing.next_hop(node, now)
        if parent is None:
            self.truth.record_fate(packet, TrueFate(TrueCause.NO_ROUTE, node, now))
            return self.params.node.proc_delay
        if not self._alive[parent]:
            # the parent crashed: every attempt dies, the sender times out
            duration = self.params.mac.max_retries * self.params.mac.attempt_time
            done = now + duration
            self._log(
                packet,
                Event.make(EventType.TRANS, node, src=node, dst=parent, packet=packet, time=now),
            )
            self.sim.at(done, self._make_timeout_logger(node, parent, packet, done))
            self.truth.record_fate(packet, TrueFate(TrueCause.TIMEOUT, node, done))
            return duration
        outcome = self.mac.send(node, parent, now)
        self._log(
            packet,
            Event.make(EventType.TRANS, node, src=node, dst=parent, packet=packet, time=now),
        )
        done = now + outcome.duration
        if outcome.delivered:
            self.sim.at(done, lambda: self._arrive(parent, node, packet, hops + 1))
        if outcome.acked:
            self.sim.at(done, self._make_ack_logger(node, parent, packet, done))
        else:
            self.sim.at(done, self._make_timeout_logger(node, parent, packet, done))
            if not outcome.delivered:
                self.truth.record_fate(packet, TrueFate(TrueCause.TIMEOUT, node, done))
        return outcome.duration

    def _make_ack_logger(self, node: int, parent: int, packet: PacketKey, t: float):
        return lambda: self._log(
            packet,
            Event.make(EventType.ACK, node, src=node, dst=parent, packet=packet, time=t),
        )

    def _make_timeout_logger(self, node: int, parent: int, packet: PacketKey, t: float):
        return lambda: self._log(
            packet,
            Event.make(EventType.TIMEOUT, node, src=node, dst=parent, packet=packet, time=t),
        )

    def _arrive(self, node: int, sender: int, packet: PacketKey, hops: int) -> None:
        now = self.sim.now
        if not self._alive[node]:
            # the node died between the send decision and the arrival
            self.truth.record_fate(packet, TrueFate(TrueCause.CRASH, node, now))
            return
        if hops > self.params.node.max_hops:
            self.truth.record_fate(packet, TrueFate(TrueCause.TTL, node, now))
            return
        if packet in self._dup_cache[node]:
            self._log(
                packet,
                Event.make(EventType.DUP, node, src=sender, dst=node, packet=packet, time=now),
            )
            self.truth.record_fate(packet, TrueFate(TrueCause.DUPLICATE, node, now))
            return
        if len(self._fifo[node]) >= self.params.node.queue_capacity:
            self._log(
                packet,
                Event.make(
                    EventType.OVERFLOW, node, src=sender, dst=node, packet=packet, time=now
                ),
            )
            self.truth.record_fate(packet, TrueFate(TrueCause.OVERFLOW, node, now))
            return
        self._log(
            packet,
            Event.make(EventType.RECV, node, src=sender, dst=node, packet=packet, time=now),
        )
        self._dup_cache_add(node, packet)
        if self._node_stream.random() < self.params.node.task_fail_p:
            # silent in-node loss: the recv is logged, nothing else ever is
            self.truth.record_fate(packet, TrueFate(TrueCause.IN_NODE, node, now))
            return
        self._enqueue(node, packet, hops)

    def _deliver_serial(self, packet: PacketKey) -> None:
        now = self.sim.now
        sink = self.topology.sink
        bs = self.topology.base_station
        if self._serial_stream.random() >= self.params.serial.quality(now):
            # silent RS232 drop: the sink's recv is the packet's last event
            self.truth.record_fate(packet, TrueFate(TrueCause.SERIAL, sink, now))
            return
        if self.params.base_station.is_down(now):
            self.truth.record_fate(packet, TrueFate(TrueCause.OUTAGE, bs, now))
            return
        # the serial write is real but no logger ever captures it; it lives
        # only in ground truth so inferred [sink-bs trans] events score as
        # correct rather than spurious
        self.truth.record_event(
            packet,
            Event.make(EventType.TRANS, sink, src=sink, dst=bs, packet=packet, time=now),
        )
        self._log(
            packet,
            Event.make(EventType.RECV, bs, src=sink, dst=bs, packet=packet, time=now),
        )
        self.bs_arrivals.append((packet, now))
        self.truth.record_fate(packet, TrueFate(TrueCause.DELIVERED, bs, now))

    def _dup_cache_add(self, node: int, packet: PacketKey) -> None:
        cache = self._dup_cache[node]
        cache[packet] = None
        if len(cache) > self.params.node.dup_cache_size:
            cache.popitem(last=False)
