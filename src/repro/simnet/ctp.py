"""CTP routing over the ETX metric (paper §V-A3).

"The link ETX is calculated as 1/q ... Each node selects the path with
smallest ETX as the routing path."  Beacons propagate path-ETX values
asynchronously: at each beacon round a node recomputes its route from the
values its neighbours *advertised at the previous round*.  That one-round
staleness is what real CTP has between beacons — when link qualities swing
(bursts, snow), transient routing loops arise naturally, which is exactly
how the paper's duplicate losses happen ("often due to routing loops",
Table I).  An optional ``loop_churn_p`` injects occasional stale parent
choices to keep loop events present at small scales.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.simnet.link import LinkModel
from repro.simnet.topology import Topology
from repro.util.rng import RngStreams

#: Path ETX of unreachable nodes.
INFINITE_ETX = float("inf")

#: Links below this PRR are unusable for routing.
MIN_ROUTABLE_PRR = 0.1

#: ETX ceiling per link (1/PRR capped, mirroring CTP implementations).
MAX_LINK_ETX = 10.0


@dataclass(frozen=True, slots=True)
class CtpParams:
    """Routing knobs."""

    beacon_interval: float = 60.0
    #: Probability per (node, round) of adopting a *stale* parent choice (a
    #: delayed/corrupted beacon makes a random routable neighbour look
    #: good); the controlled source of transient loops at small scale.
    loop_churn_p: float = 0.001
    #: Hysteresis: switch parents only for an ETX gain above this.
    parent_switch_threshold: float = 1.0
    #: EWMA weight of the link-quality estimator (real CTP smooths ETX over
    #: beacon windows; routing on instantaneous PRR would flap unrealistically).
    etx_alpha: float = 0.2


class CtpRouting:
    """Distributed ETX tree maintenance with beacon staleness."""

    def __init__(
        self,
        topology: Topology,
        link: LinkModel,
        rng: RngStreams,
        params: CtpParams = CtpParams(),
    ) -> None:
        self.topology = topology
        self.link = link
        self.params = params
        self._stream = rng.stream("ctp")
        self.parent: dict[int, int | None] = {n: None for n in topology.nodes}
        self.path_etx: dict[int, float] = {n: INFINITE_ETX for n in topology.nodes}
        self.path_etx[topology.sink] = 0.0
        #: Values neighbours can currently hear (previous round's state).
        self._advertised: dict[int, float] = dict(self.path_etx)
        #: EWMA-smoothed link quality per undirected pair.
        self._smoothed_q: dict[tuple[int, int], float] = {}
        #: Liveness hook (set by the network when runtime crashes are on):
        #: dead nodes advertise nothing and keep their stale route.
        self.is_alive = lambda node: True
        self.rounds_run = 0

    # ------------------------------------------------------------------ #

    def _smoothed(self, a: int, b: int, t: float) -> float:
        """EWMA of the pair's quality, updated once per beacon round."""
        key = (a, b) if a < b else (b, a)
        return self._smoothed_q.get(key, self.link.base_prr(a, b))

    def _update_smoothing(self, t: float) -> None:
        alpha = self.params.etx_alpha
        link = self.link
        smoothed = self._smoothed_q
        for node in self.topology.nodes:
            for nbr in self.topology.neighbors(node):
                if nbr < node:
                    continue  # handle each undirected pair once
                key = (node, nbr)
                q = link.prr(node, nbr, t)
                old = smoothed.get(key)
                smoothed[key] = q if old is None else old + alpha * (q - old)

    def link_etx(self, a: int, b: int, t: float) -> float:
        """``1/q`` from the smoothed link quality, with floor/cap.

        Real CTP keeps routing over a degraded link (and pays
        retransmissions) rather than instantly dropping it — the ETX is
        capped, not infinite, for any physically existing link.
        """
        q = self._smoothed(a, b, t)
        if q <= 0.0:
            return INFINITE_ETX
        return min(MAX_LINK_ETX, 1.0 / max(q, MIN_ROUTABLE_PRR))

    def beacon_round(self, t: float) -> None:
        """One network-wide beacon exchange at time ``t``.

        Every node recomputes (parent, path ETX) from the *advertised*
        (one-round-stale) neighbour values; advertisements update at the end
        of the round.
        """
        self._update_smoothing(t)
        sink = self.topology.sink
        rng = self._stream
        new_etx: dict[int, float] = {sink: 0.0}
        for node in self.topology.nodes:
            if node == sink:
                self.parent[sink] = None
                continue
            if not self.is_alive(node):
                # a dead node beacons nothing and keeps its stale route
                new_etx[node] = INFINITE_ETX
                continue
            candidates: list[tuple[float, int]] = []
            best_parent, best_etx = None, INFINITE_ETX
            for nbr in self.topology.neighbors(node):
                if not self.is_alive(nbr):
                    continue
                through = self._advertised.get(nbr, INFINITE_ETX) + self.link_etx(node, nbr, t)
                if through < INFINITE_ETX:
                    candidates.append((through, nbr))
                if through < best_etx:
                    best_parent, best_etx = nbr, through
            current = self.parent[node]
            if (
                current is not None
                and best_parent is not None
                and current != best_parent
            ):
                current_through = self._advertised.get(current, INFINITE_ETX) + self.link_etx(
                    node, current, t
                )
                if current_through < best_etx + self.params.parent_switch_threshold:
                    best_parent, best_etx = current, current_through
            if candidates and rng.random() < self.params.loop_churn_p:
                # stale/corrupted beacon: a random routable neighbour looks
                # attractive for one round — the seed of a transient loop
                best_etx, best_parent = candidates[rng.randrange(len(candidates))]
            self.parent[node] = best_parent
            new_etx[node] = best_etx
        self.path_etx = new_etx
        self._advertised = dict(new_etx)
        self.rounds_run += 1

    def converge(self, t: float = 0.0, rounds: int | None = None) -> None:
        """Run beacon rounds until the tree stabilizes (setup phase)."""
        if rounds is None:
            # diameter bound: one round propagates ETX one hop
            rounds = len(self.topology.nodes)
        previous: dict[int, int | None] = {}
        for _ in range(rounds):
            self.beacon_round(t)
            if self.parent == previous:
                break
            previous = dict(self.parent)

    def next_hop(self, node: int, t: float) -> int | None:
        """Current parent of ``node`` (None when no route)."""
        return self.parent.get(node)

    def routed_fraction(self) -> float:
        """Fraction of non-sink nodes that currently have a route."""
        nodes = [n for n in self.topology.nodes if n != self.topology.sink]
        if not nodes:
            return 1.0
        return sum(1 for n in nodes if self.parent[n] is not None) / len(nodes)
