"""LPL-style MAC layer (paper §V-A2).

"If a node has packets to send, it repeatedly sends the packets until an
ACK is received or a timeout of a certain period" — each attempt delivers
with the link's data-direction PRR; on delivery the receiver's radio sends a
hardware ACK which itself can be lost (reverse-direction PRR), causing
retransmissions the receiver's MAC dedupes silently by DSN.  Up to
``max_retries`` attempts (the paper mentions "up to 30 retransmissions",
§V-D3).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.simnet.link import LinkModel
from repro.util.rng import RngStreams


@dataclass(frozen=True, slots=True)
class MacParams:
    """MAC timing/retry knobs.

    ``attempt_time`` covers the LPL preamble + data + ack window of one
    attempt (coarse; only relative timing matters to the model).
    """

    max_retries: int = 30
    attempt_time: float = 0.02

    def __post_init__(self) -> None:
        if self.max_retries < 1:
            raise ValueError("max_retries must be >= 1")
        if self.attempt_time <= 0:
            raise ValueError("attempt_time must be positive")


@dataclass(frozen=True, slots=True)
class MacOutcome:
    """Result of one MAC send (one routing-layer transmission).

    ``delivered`` — at least one data frame reached the receiver;
    ``acked`` — the sender saw a hardware ACK;
    ``delivered and not acked`` is the interesting asymmetry: the receiver
    holds the packet while the sender times out.
    """

    delivered: bool
    acked: bool
    attempts: int
    duration: float


class LplMac:
    """Simulates unicast sends over the link model."""

    def __init__(self, link: LinkModel, rng: RngStreams, params: MacParams = MacParams()) -> None:
        self.link = link
        self.params = params
        self._stream = rng.stream("mac")

    def send(self, src: int, dst: int, t: float) -> MacOutcome:
        """One routing-layer unicast with retransmissions until ack/timeout."""
        rng = self._stream
        prr_data = self.link.prr(src, dst, t)
        prr_ack = self.link.prr(dst, src, t)
        delivered = False
        attempts = 0
        for attempts in range(1, self.params.max_retries + 1):
            if rng.random() < prr_data:
                delivered = True
                if rng.random() < prr_ack:
                    return MacOutcome(True, True, attempts, attempts * self.params.attempt_time)
        return MacOutcome(
            delivered, False, attempts, attempts * self.params.attempt_time
        )
