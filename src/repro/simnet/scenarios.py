"""Scenario presets for the paper's figures (scaled CitySee).

The paper's deployment: 1200 nodes, 30 days, snow on days 9-10, sink
replaced after day 23, server outages causing 22.6% of losses.  The presets
keep every mechanism at a laptop-runnable scale (DESIGN.md §1.3 documents
the substitution); absolute counts shrink, the qualitative shape — who
loses packets where and why — is what the benchmarks assert.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

from repro.simnet.ctp import CtpParams
from repro.simnet.link import Disturbance, LinkParams
from repro.simnet.mac import MacParams
from repro.simnet.network import Network, NodeParams, ScenarioParams, SimulationResult
from repro.simnet.sinkpath import BaseStationModel, SerialLink
from repro.util.rng import RngStreams

#: One scaled "day" of simulated time.  Real days would work too (times are
#: floats), but shorter days keep beacon counts proportionate.
DAY = 7200.0


def _interference_bursts(
    rng: RngStreams,
    duration: float,
    *,
    per_day: float,
    area: float,
    factor: float = 0.25,
) -> list[Disturbance]:
    """Short regional PRR dips — the bursty timeout/dup episodes of Fig. 5."""
    stream = rng.stream("bursts")
    count = max(1, int(per_day * duration / DAY))
    bursts = []
    for _ in range(count):
        start = stream.uniform(0.0, duration)
        length = stream.uniform(0.02 * DAY, 0.08 * DAY)
        center = (stream.uniform(0.0, area), stream.uniform(0.0, area))
        radius = stream.uniform(0.15 * area, 0.35 * area)
        bursts.append(
            Disturbance(start, min(duration, start + length), factor, center, radius)
        )
    return bursts


def _snow(days: Sequence[int], factor: float = 0.35) -> list[Disturbance]:
    """Global degradation covering whole days (paper: days 9-10)."""
    out = []
    for day in days:
        out.append(Disturbance(day * DAY, (day + 1) * DAY, factor))
    return out


def _outages(rng: RngStreams, duration: float, *, fraction: float) -> tuple[tuple[float, float], ...]:
    """Server outage windows totalling ``fraction`` of the timeline."""
    stream = rng.stream("outage-windows")
    target = duration * fraction
    windows: list[tuple[float, float]] = []
    accumulated = 0.0
    while accumulated < target:
        length = stream.uniform(0.05 * DAY, 0.20 * DAY)
        start = stream.uniform(0.0, duration - length)
        windows.append((start, start + length))
        accumulated += length
    return tuple(sorted(windows))


def citysee(
    *,
    n_nodes: int = 120,
    days: int = 30,
    packets_per_node_per_day: float = 12.0,
    seed: int = 7,
    snow_days: Sequence[int] = (8, 9),
    sink_fix_day: Optional[int] = 23,
    outage_fraction: float = 0.042,
    task_fail_p: float = 0.005,
    serial_unstable_quality: float = 0.85,
    loop_churn_p: float = 0.0012,
    burst_factor: float = 0.13,
    bursts_per_day: float = 3.0,
    queue_capacity: int = 10,
) -> ScenarioParams:
    """The scaled CitySee scenario behind Figs. 4, 5, 6, 8, 9.

    Defaults are tuned so the *loss composition* lands in the paper's
    regime: serial drops at the sink dominate (received+acked bands),
    server outages contribute a ~20% slice, in-node losses spread over the
    network, and timeout/dup/overflow stay in the low percents.
    """
    duration = days * DAY
    rng = RngStreams(seed).spawn("scenario")
    cols = max(2, int(math.ceil(math.sqrt(n_nodes))))
    area = cols * 50.0
    disturbances = (
        *_interference_bursts(
            rng, duration, per_day=bursts_per_day, area=area, factor=burst_factor
        ),
        *_snow([d for d in snow_days if d < days]),
    )
    fix_time = sink_fix_day * DAY if sink_fix_day is not None and sink_fix_day < days else float("inf")
    # the outdoor serial cable suffers in the snow too (paper Fig. 6: the
    # snow days show markedly more losses, most of them at the sink)
    serial_weather = tuple(
        (d * DAY, (d + 1) * DAY, 0.75) for d in snow_days if d < days
    )
    return ScenarioParams(
        n_nodes=n_nodes,
        duration=duration,
        gen_interval=DAY / packets_per_node_per_day,
        gen_sync_window=10.0,
        seed=seed,
        disturbances=disturbances,
        link=LinkParams(),
        mac=MacParams(attempt_time=0.1),
        ctp=CtpParams(beacon_interval=0.005 * DAY, loop_churn_p=loop_churn_p),
        node=NodeParams(task_fail_p=task_fail_p, queue_capacity=queue_capacity),
        serial=SerialLink(
            unstable_quality=serial_unstable_quality,
            fix_time=fix_time,
            weather_windows=serial_weather,
        ),
        base_station=BaseStationModel(outages=_outages(rng, duration, fraction=outage_fraction)),
    )


def small_network(*, n_nodes: int = 25, seed: int = 3, minutes: float = 30.0) -> ScenarioParams:
    """A quick scenario for tests and the quickstart example."""
    return ScenarioParams(
        n_nodes=n_nodes,
        duration=minutes * 60.0,
        gen_interval=120.0,
        seed=seed,
        ctp=CtpParams(beacon_interval=30.0),
        serial=SerialLink(unstable_quality=0.9, fix_time=float("inf")),
    )


def run_scenario(params: ScenarioParams) -> SimulationResult:
    """Build and run a network for ``params``."""
    return Network(params).run()
