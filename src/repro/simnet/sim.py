"""Minimal discrete-event simulation core.

A binary-heap event queue with FIFO tie-breaking for equal timestamps —
enough for the packet-granularity WSN model (the guides' advice applies:
keep the hot loop simple; the scheduler is not the bottleneck, the per-event
Python callbacks are).
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, Optional


class Simulator:
    """Event-driven simulation clock."""

    def __init__(self) -> None:
        self._queue: list[tuple[float, int, Callable[[], None]]] = []
        self._counter = itertools.count()
        self.now: float = 0.0
        self._events_run = 0

    def at(self, time: float, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` at absolute ``time`` (>= now)."""
        if time < self.now:
            raise ValueError(f"cannot schedule in the past ({time} < {self.now})")
        heapq.heappush(self._queue, (time, next(self._counter), callback))

    def after(self, delay: float, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` after ``delay`` seconds."""
        if delay < 0:
            raise ValueError("delay must be non-negative")
        self.at(self.now + delay, callback)

    def run(self, until: Optional[float] = None) -> None:
        """Run events in time order until the queue drains (or ``until``).

        Events scheduled exactly at ``until`` still run; later ones stay
        queued (so a subsequent ``run`` can continue).
        """
        while self._queue:
            time, _, callback = self._queue[0]
            if until is not None and time > until:
                break
            heapq.heappop(self._queue)
            self.now = time
            self._events_run += 1
            callback()
        if until is not None and until > self.now:
            self.now = until

    @property
    def events_run(self) -> int:
        """Total callbacks executed (diagnostics/benchmarks)."""
        return self._events_run

    @property
    def pending(self) -> int:
        return len(self._queue)
