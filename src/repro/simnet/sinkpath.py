"""The sink-to-base-station path (paper Fig. 7, §V-B/C).

CitySee's sink forwarded packets to a mesh backbone node over a long RS232
cable whose signal was unstable outdoors — the paper's headline diagnosis:
most "received/acked losses on the sink" were silent serial drops, fixed by
replacing the sink after day 23.  The base-station *server* also suffered
outages responsible for 22.6% of all losses (§V-C), recorded in an
operations log the analysis layer consults.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.rng import RngStreams


@dataclass(frozen=True, slots=True)
class SerialLink:
    """RS232 delivery probability over time.

    ``unstable_quality`` applies before ``fix_time`` (the long-cable era),
    ``fixed_quality`` after (the replaced sink).  ``weather_windows`` are
    ``(start, end, factor)`` periods where the outdoor cable degrades
    further — the paper's snow days hit the sink path visibly (Fig. 6).
    """

    unstable_quality: float = 0.72
    fixed_quality: float = 0.999
    fix_time: float = float("inf")
    weather_windows: tuple[tuple[float, float, float], ...] = ()

    def __post_init__(self) -> None:
        for name in ("unstable_quality", "fixed_quality"):
            q = getattr(self, name)
            if not 0.0 <= q <= 1.0:
                raise ValueError(f"{name} must be a probability, got {q}")
        for start, end, factor in self.weather_windows:
            if end <= start:
                raise ValueError(f"weather window ({start}, {end}) has no duration")
            if not 0.0 <= factor <= 1.0:
                raise ValueError(f"weather factor must be in [0, 1], got {factor}")

    def quality(self, t: float) -> float:
        base = self.fixed_quality if t >= self.fix_time else self.unstable_quality
        for start, end, factor in self.weather_windows:
            if start <= t < end:
                base *= factor
        return base


@dataclass(frozen=True, slots=True)
class BaseStationModel:
    """Server availability: packets arriving inside an outage window vanish.

    ``outages`` is the operations log of ``(start, end)`` windows; it is
    *known* to the analysis layer (the paper attributes outage losses from
    it before running REFILL on the rest, §V-C).
    """

    outages: tuple[tuple[float, float], ...] = ()

    def __post_init__(self) -> None:
        for start, end in self.outages:
            if end <= start:
                raise ValueError(f"outage window ({start}, {end}) has no duration")

    def is_down(self, t: float) -> bool:
        return any(start <= t < end for start, end in self.outages)

    def total_downtime(self) -> float:
        return sum(end - start for start, end in self.outages)


def random_outages(
    rng: RngStreams,
    duration: float,
    *,
    count: int,
    min_len: float,
    max_len: float,
) -> tuple[tuple[float, float], ...]:
    """``count`` non-anchored outage windows inside ``[0, duration]``."""
    stream = rng.stream("outages")
    windows = []
    for _ in range(count):
        length = stream.uniform(min_len, max_len)
        start = stream.uniform(0.0, max(0.0, duration - length))
        windows.append((start, start + length))
    return tuple(sorted(windows))
