"""CitySee-like WSN discrete-event simulator (substrate for §V).

The paper evaluates REFILL on a physical 1200-node deployment.  We do not
have that deployment, so this package builds the closest synthetic
equivalent that exercises the same code paths *and* records ground truth —
which the physical network could not provide:

- :mod:`repro.simnet.sim` — discrete-event core;
- :mod:`repro.simnet.topology` — urban-grid placement, sink + base station;
- :mod:`repro.simnet.link` — distance-based PRR with temporal disturbances
  (regional interference bursts, the paper's snow days);
- :mod:`repro.simnet.mac` — LPL-style MAC with hardware acks and up to 30
  retransmissions (§V-A2);
- :mod:`repro.simnet.ctp` — CTP/ETX routing with beacon staleness, so
  transient loops (and hence duplicate events) arise naturally (§V-A3);
- :mod:`repro.simnet.sinkpath` — the unstable RS232 sink-to-base-station
  link and the server outage schedule (§V-B/C, Fig. 7);
- :mod:`repro.simnet.network` — the orchestrator producing true per-node
  event logs plus a :class:`~repro.simnet.truth.GroundTruth`;
- :mod:`repro.simnet.scenarios` — presets for every figure.
"""

from repro.simnet.sim import Simulator
from repro.simnet.topology import Topology, make_grid_topology
from repro.simnet.link import Disturbance, LinkModel, LinkParams
from repro.simnet.mac import LplMac, MacOutcome, MacParams
from repro.simnet.ctp import CtpParams, CtpRouting
from repro.simnet.sinkpath import BaseStationModel, SerialLink
from repro.simnet.truth import GroundTruth, TrueFate
from repro.simnet.network import (
    CrashParams,
    Network,
    NodeParams,
    ScenarioParams,
    SimulationResult,
)
from repro.simnet.query import QueryParams, QueryResult, run_query
from repro.simnet.scenarios import citysee, small_network

__all__ = [
    "Simulator",
    "Topology",
    "make_grid_topology",
    "Disturbance",
    "LinkModel",
    "LinkParams",
    "LplMac",
    "MacOutcome",
    "MacParams",
    "CtpParams",
    "CtpRouting",
    "BaseStationModel",
    "SerialLink",
    "GroundTruth",
    "TrueFate",
    "CrashParams",
    "Network",
    "NodeParams",
    "ScenarioParams",
    "SimulationResult",
    "QueryParams",
    "QueryResult",
    "run_query",
    "citysee",
    "small_network",
]
