"""Spatial topology: urban-grid node placement (paper Fig. 8's deployment).

CitySee deployed ~1200 nodes across an urban area with one sink wired to a
mesh backbone.  We place nodes on a jittered grid, put the sink near the
centroid and attach the base station as a pseudo-node co-located with the
sink (its only "link" is the RS232 serial path, handled by
:mod:`repro.simnet.sinkpath`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.util.rng import RngStreams


@dataclass
class Topology:
    """Node positions plus radio-range neighborhood structure."""

    positions: dict[int, tuple[float, float]]
    sink: int
    base_station: int
    radio_range: float
    _neighbors: dict[int, tuple[int, ...]] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if self.sink not in self.positions:
            raise ValueError("sink must have a position")
        if self.base_station in self.positions:
            raise ValueError("the base station is a pseudo-node without a radio position")
        if self.radio_range <= 0:
            raise ValueError("radio_range must be positive")
        self._build_neighbors()

    def _build_neighbors(self) -> None:
        nodes = sorted(self.positions)
        coords = np.array([self.positions[n] for n in nodes])
        # pairwise distances, vectorized (guides: prefer numpy over loops)
        deltas = coords[:, None, :] - coords[None, :, :]
        dists = np.sqrt((deltas**2).sum(axis=2))
        within = dists <= self.radio_range
        np.fill_diagonal(within, False)
        for i, node in enumerate(nodes):
            self._neighbors[node] = tuple(
                nodes[j] for j in np.flatnonzero(within[i])
            )

    @property
    def nodes(self) -> list[int]:
        """Radio nodes (excludes the base-station pseudo-node)."""
        return sorted(self.positions)

    def distance(self, a: int, b: int) -> float:
        xa, ya = self.positions[a]
        xb, yb = self.positions[b]
        return math.hypot(xa - xb, ya - yb)

    def neighbors(self, node: int) -> tuple[int, ...]:
        """Nodes within radio range of ``node``."""
        return self._neighbors[node]

    def connected_to_sink(self) -> set[int]:
        """Nodes with a multi-hop radio path to the sink."""
        seen = {self.sink}
        frontier = [self.sink]
        while frontier:
            cur = frontier.pop()
            for nbr in self.neighbors(cur):
                if nbr not in seen:
                    seen.add(nbr)
                    frontier.append(nbr)
        return seen


def make_grid_topology(
    n_nodes: int,
    rng: RngStreams,
    *,
    spacing: float = 50.0,
    jitter: float = 10.0,
    radio_range: float = 80.0,
    sink: Optional[int] = None,
) -> Topology:
    """Jittered-grid placement of ``n_nodes`` sensor nodes.

    Node ids are ``1..n_nodes``; the base station gets id ``n_nodes + 1``.
    The sink defaults to the node closest to the area centroid (CitySee's
    sink sat centrally, wired to the backbone).
    """
    if n_nodes < 2:
        raise ValueError("need at least two nodes")
    stream = rng.stream("topology")
    cols = max(2, int(math.ceil(math.sqrt(n_nodes))))
    positions: dict[int, tuple[float, float]] = {}
    for i in range(n_nodes):
        row, col = divmod(i, cols)
        x = col * spacing + stream.uniform(-jitter, jitter)
        y = row * spacing + stream.uniform(-jitter, jitter)
        positions[i + 1] = (x, y)

    if sink is None:
        cx = sum(p[0] for p in positions.values()) / n_nodes
        cy = sum(p[1] for p in positions.values()) / n_nodes
        sink = min(positions, key=lambda n: math.hypot(positions[n][0] - cx, positions[n][1] - cy))

    return Topology(
        positions=positions,
        sink=sink,
        base_station=n_nodes + 1,
        radio_range=radio_range,
    )
