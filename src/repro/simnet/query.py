"""Query-response workload: flood a query down, collect responses up.

The paper's negotiation pattern (Fig. 3d) composed with its data-collection
workload: the sink floods a query over the routing tree (each node
rebroadcasts to its children), queried nodes answer with a response packet
routed back over CTP.  The campaign's question — *which nodes actually
heard the query, and whose answers made it back?* — is exactly the kind of
network-wide fact REFILL reconstructs from individual lossy logs.

Per-node events:

- ``query_recv`` — the query (id ``q``) arrived from the parent; recorded on
  the hearer, with the forwarding parent as ``src``;
- ``query_fwd`` — the node rebroadcast the query to its children (related
  information carries the child list);
- the response packet then produces ordinary forwarder events
  (``gen``/``trans``/``recv``/...), handled by the standard CTP template.

The engines for the query side live in
:func:`repro.fsm.templates.query_templates`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.events.event import Event, EventType
from repro.events.log import NodeLog
from repro.events.packet import PacketKey
from repro.simnet.network import Network, ScenarioParams
from repro.simnet.scenarios import small_network
from repro.util.rng import RngStreams


@dataclass(frozen=True, slots=True)
class QueryParams:
    """One query campaign over a small network."""

    scenario: ScenarioParams = field(default_factory=lambda: small_network(n_nodes=20))
    #: Query identifier (origin = sink, seq = the query id).
    query_id: int = 1
    #: Per-hop probability the query broadcast reaches a child (floods
    #: retry, so per-child reliability is high; misses still compound with
    #: depth — a missed relay silences its whole subtree).
    flood_reliability: float = 0.97
    #: Probability a hearer answers at all (duty cycling, app logic).
    answer_p: float = 0.95


@dataclass
class QueryResult:
    """Ground truth + true logs of one campaign."""

    network: Network
    query: PacketKey
    #: Nodes that actually heard the query.
    heard: frozenset[int]
    #: Nodes that generated a response.
    answered: frozenset[int]
    #: Response packet per answering node.
    responses: dict[int, PacketKey]
    true_logs: dict[int, NodeLog]

    @property
    def sink(self) -> int:
        return self.network.topology.sink

    @property
    def base_station(self) -> int:
        return self.network.topology.base_station

    def delivered_answers(self) -> frozenset[int]:
        """Answering nodes whose response reached the base station."""
        truth = self.network.truth
        return frozenset(
            node
            for node, packet in self.responses.items()
            if packet in truth.fates and truth.fates[packet].delivered
        )


def run_query(params: QueryParams) -> QueryResult:
    """Flood the query, generate responses, run the collection network.

    The flood happens over a converged routing tree (children = nodes whose
    parent is the forwarder); responses are injected as ordinary data
    packets and travel through the full simulator (losses and all).
    """
    network = Network(params.scenario)
    network.routing.converge(0.0)
    network._schedule_beacons()

    sink = network.topology.sink
    query = PacketKey(sink, params.query_id)
    rng = RngStreams(params.scenario.seed).spawn("query").stream("flood")

    # children per node from the converged tree
    children: dict[int, list[int]] = {n: [] for n in network.topology.nodes}
    for node, parent in network.routing.parent.items():
        if parent is not None:
            children[parent].append(node)

    heard: set[int] = set()
    answered: set[int] = set()
    responses: dict[int, PacketKey] = {}
    t = 1.0

    def flood(node: int, depth: int) -> None:
        nonlocal t
        kids = sorted(children[node])
        if not kids:
            return
        now = 1.0 + depth * 0.5
        network.logs[node].append(
            Event.make(
                "query_fwd",
                node,
                packet=query,
                time=now,
                targets=",".join(str(k) for k in kids),
            )
        )
        network.truth.record_event(query, network.logs[node][-1])
        for child in kids:
            if rng.random() >= params.flood_reliability:
                continue  # broadcast frame missed this child
            heard.add(child)
            event = Event.make(
                "query_recv", child, src=node, dst=child, packet=query,
                time=now + 0.1,
            )
            network.logs[child].append(event)
            network.truth.record_event(query, event)
            flood(child, depth + 1)

    heard.add(sink)
    flood(sink, 0)

    # answers: injected as ordinary data packets through the live network
    for node in sorted(heard - {sink}):
        if rng.random() >= params.answer_p:
            continue
        answered.add(node)
        network._seq[node] += 1
        packet = PacketKey(node, network._seq[node])
        responses[node] = packet
        start = 2.0 + node * 0.01
        network.sim.at(start, _make_response(network, node, packet))
    network.sim.run()

    return QueryResult(
        network=network,
        query=query,
        heard=frozenset(heard),
        answered=frozenset(answered),
        responses=responses,
        true_logs=network.logs,
    )


def _make_response(network: Network, node: int, packet: PacketKey):
    def fire() -> None:
        now = network.sim.now
        network.truth.record_gen(packet, now)
        network._log(
            packet, Event.make(EventType.GEN, node, packet=packet, time=now)
        )
        network._dup_cache_add(node, packet)
        network._enqueue(node, packet, hops=0)
    return fire
