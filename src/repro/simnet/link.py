"""Wireless link quality model.

Packet reception ratio (PRR) decays with distance (the classic CC2420
transition region), gets a static per-link fudge (multipath), and is
modulated over time by *disturbances*:

- **regional interference bursts** — short windows where links near a point
  degrade sharply; these produce the bursty timeout/duplicate losses the
  paper's Fig. 5 circles;
- **global weather** — the snow on days 9-10 that degraded the whole
  network (paper §V-B: "On the 9th and 10th day, the packet losses become
  high due to snow").
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.simnet.topology import Topology
from repro.util.rng import RngStreams


@dataclass(frozen=True, slots=True)
class Disturbance:
    """A multiplicative PRR factor active during ``[start, end)``.

    ``region`` limits the effect to links with an endpoint within
    ``radius`` of ``center``; ``None`` makes it global (weather).
    """

    start: float
    end: float
    factor: float
    center: Optional[tuple[float, float]] = None
    radius: float = 0.0

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ValueError("disturbance must have positive duration")
        if not 0.0 <= self.factor <= 1.0:
            raise ValueError("factor must be in [0, 1]")

    def active(self, t: float) -> bool:
        return self.start <= t < self.end

    def affects(self, position: tuple[float, float]) -> bool:
        if self.center is None:
            return True
        return math.hypot(position[0] - self.center[0], position[1] - self.center[1]) <= self.radius


@dataclass(frozen=True, slots=True)
class LinkParams:
    """Distance → PRR curve parameters.

    PRR is ``good_prr`` inside the connected region, decays quadratically
    across the transition region, and hits zero at ``radio_range``.
    """

    good_prr: float = 0.97
    good_range_fraction: float = 0.55
    floor_prr: float = 0.05
    static_jitter: float = 0.06


class LinkModel:
    """PRR between node pairs as a function of time."""

    def __init__(
        self,
        topology: Topology,
        rng: RngStreams,
        params: LinkParams = LinkParams(),
        disturbances: Sequence[Disturbance] = (),
    ) -> None:
        self.topology = topology
        self.params = params
        self.disturbances = sorted(disturbances, key=lambda d: d.start)
        self._stream = rng.stream("links")
        self._base: dict[tuple[int, int], float] = {}
        # piecewise-constant active set: boundaries where it changes, plus a
        # cache of the disturbances active in the current window (queries are
        # mostly time-ordered, so the cache hit rate is high; the common
        # no-disturbance window reduces prr() to one dict lookup).
        self._boundaries = sorted(
            {0.0}
            | {d.start for d in self.disturbances}
            | {d.end for d in self.disturbances}
        )
        self._window: tuple[float, float, tuple[Disturbance, ...]] = (
            -float("inf"),
            -float("inf"),
            (),
        )

    def base_prr(self, a: int, b: int) -> float:
        """Time-invariant PRR of the ``a -> b`` link (symmetric base)."""
        key = (a, b) if a < b else (b, a)
        prr = self._base.get(key)
        if prr is None:
            prr = self._compute_base(*key)
            self._base[key] = prr
        return prr

    def _compute_base(self, a: int, b: int) -> float:
        p = self.params
        d = self.topology.distance(a, b)
        r = self.topology.radio_range
        good = p.good_range_fraction * r
        if d <= good:
            prr = p.good_prr
        elif d >= r:
            prr = 0.0
        else:
            frac = (d - good) / (r - good)
            prr = p.good_prr * (1.0 - frac**2)
        # deterministic per-link static jitter (hash the pair for stability)
        jitter = (self._pair_hash(a, b) * 2.0 - 1.0) * p.static_jitter
        return float(min(1.0, max(p.floor_prr if d < r else 0.0, prr + jitter)))

    @staticmethod
    def _pair_hash(a: int, b: int) -> float:
        # xorshift-style mix; stable across runs, uniform-ish in [0, 1)
        x = (a * 2654435761 ^ b * 40503) & 0xFFFFFFFF
        x ^= x >> 13
        x = (x * 1274126177) & 0xFFFFFFFF
        x ^= x >> 16
        return x / 2**32

    def _active_at(self, t: float) -> tuple[Disturbance, ...]:
        lo, hi, active = self._window
        if lo <= t < hi:
            return active
        i = bisect.bisect_right(self._boundaries, t)
        lo = self._boundaries[i - 1] if i > 0 else -float("inf")
        hi = self._boundaries[i] if i < len(self._boundaries) else float("inf")
        active = tuple(d for d in self.disturbances if d.active(t))
        self._window = (lo, hi, active)
        return active

    def temporal_factor(self, a: int, b: int, t: float) -> float:
        """Product of active disturbance factors touching the link."""
        active = self._active_at(t)
        if not active:
            return 1.0
        factor = 1.0
        pa = self.topology.positions[a]
        pb = self.topology.positions[b]
        for disturbance in active:
            if disturbance.affects(pa) or disturbance.affects(pb):
                factor *= disturbance.factor
        return factor

    def prr(self, a: int, b: int, t: float) -> float:
        """Instantaneous PRR of the directed ``a -> b`` link at time ``t``."""
        return self.base_prr(a, b) * self.temporal_factor(a, b, t)
