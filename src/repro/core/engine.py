"""A single inference engine: one FSM instance per (node, packet).

The engine tracks its current state, how many times each state was visited
(and which flow entry produced each visit), and the index of the last flow
entry it emitted.  Visit counts are what make inter-node prerequisites work
for repeated episodes: a second ``ack`` on the sender demands a *second*
receive on the receiver (paper Table II case 4), while a single broadcast
visit can satisfy many distinct consumers (paper Fig. 3c).

Transition *selection* prefers normal transitions and falls back to the
derived intra-node jumps (paper §IV-B "Processing Events", steps 1-2).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Optional, Protocol

from repro.events.packet import PacketKey
from repro.fsm.graph import Transition
from repro.fsm.reachability import EdgeFilter
from repro.fsm.templates import FsmTemplate, NeighborContext


class CounterLike(Protocol):
    """Anything with ``inc`` — a real or null obs counter."""

    def inc(self, n: int = 1) -> None: ...


@dataclass(frozen=True, slots=True)
class Selection:
    """Outcome of transition selection for an event label at a state."""

    #: ``"normal"`` or ``"intra"``.
    kind: str
    #: Destination state.
    target: str


class EngineInstance:
    """FSM state of one node for one packet."""

    def __init__(
        self,
        template: FsmTemplate,
        node: int,
        packet: Optional[PacketKey],
        *,
        fire_counter: Optional["CounterLike"] = None,
    ) -> None:
        self.template = template
        self.node = node
        self.packet = packet
        #: Observability hook: incremented on every fired transition
        #: (``engine.fires``).  ``None`` keeps standalone engines metric-free.
        self.fire_counter = fire_counter
        self.state: str = template.initial_state(node, packet)
        self.visited: set[str] = {self.state}
        self.trajectory: list[str] = [self.state]
        #: Times each state was entered; the initial state counts once.
        self.visit_count: Counter[str] = Counter({self.state: 1})
        #: Flow entry index of each visit (None for the initial state).
        self.visit_entries: dict[str, list[Optional[int]]] = {self.state: [None]}
        #: All visits in order: (state, flow entry index) pairs.
        self.visit_seq: list[tuple[str, Optional[int]]] = [(self.state, None)]
        #: Flow index of the last entry this engine emitted (per-node order).
        self.last_entry: Optional[int] = None

    # ------------------------------------------------------------------ #

    def select(self, label: str) -> Optional[Selection]:
        """Pick the transition for ``label`` at the current state.

        Normal transitions take precedence over intra-node jumps.  Returns
        ``None`` when the event is unprocessable here (step 3 of the
        algorithm: such events are eventually omitted).
        """
        normal = self.template.graph.transitions_from(self.state, label)
        if normal:
            # Per-(state, label) determinism is a template invariant; keep
            # declaration order as the deterministic tie-break.
            return Selection("normal", normal[0].dst)
        jump = self.template.intra.get((self.state, label))
        if jump is not None:
            return Selection("intra", jump.dst)
        return None

    def fire(self, target: str, entry: Optional[int]) -> None:
        """Move to ``target``; ``entry`` is the flow index of the cause."""
        if self.fire_counter is not None:
            self.fire_counter.inc()
        self.state = target
        self.visited.add(target)
        self.trajectory.append(target)
        self.visit_count[target] += 1
        self.visit_entries.setdefault(target, []).append(entry)
        self.visit_seq.append((target, entry))
        if entry is not None:
            self.last_entry = entry

    def visit_entry(self, state: str, nth: int) -> Optional[int]:
        """Flow index of the ``nth`` (1-based) visit of ``state``."""
        entries = self.visit_entries.get(state, [])
        if not 1 <= nth <= len(entries):
            raise IndexError(f"visit {nth} of {state!r} not recorded")
        return entries[nth - 1]

    def visits_of(self, states: tuple[str, ...]) -> int:
        """Total visits across a set of acceptable states."""
        return sum(self.visit_count[s] for s in states)

    def visit_entry_of(self, states: tuple[str, ...], nth: int) -> Optional[int]:
        """Flow index of the ``nth`` (1-based) visit among ``states``."""
        wanted = set(states)
        seen = 0
        for state, entry in self.visit_seq:
            if state in wanted:
                seen += 1
                if seen == nth:
                    return entry
        raise IndexError(f"visit {nth} of {states!r} not recorded")

    # ------------------------------------------------------------------ #
    # inference-path helpers

    def edge_filter(self, ctx: NeighborContext) -> EdgeFilter:
        """Admissibility predicate bound to this engine's node/packet."""
        template, node, packet = self.template, self.node, self.packet
        return lambda t: template.edge_admissible(t, node, packet, ctx)

    def inference_path(
        self, target: str, ctx: NeighborContext
    ) -> Optional[list[Transition]]:
        """Shortest admissible normal path from the current state to ``target``.

        When the engine already *is* at ``target`` but a fresh visit is
        demanded, the shortest positive-length cycle back to ``target`` is
        returned instead.
        """
        edge_filter = self.edge_filter(ctx)
        if self.state != target:
            return self.template.reach.shortest_path(self.state, target, edge_filter)
        best: Optional[list[Transition]] = None
        for first in self.template.graph.outgoing(self.state):
            if not edge_filter(first):
                continue
            rest = self.template.reach.shortest_path(first.dst, target, edge_filter)
            if rest is None:
                continue
            candidate = [first, *rest]
            if best is None or len(candidate) < len(best):
                best = candidate
        return best

    def intra_inference_path(
        self, label: str, target: str, ctx: NeighborContext
    ) -> Optional[list[Transition]]:
        """Lost-event prefix for an intra-node jump ``state --label--> target``.

        The path leads to the source of a normal ``label`` transition into
        ``target``; the final ``label`` edge is the observed event itself and
        is excluded (paper §IV-B).
        """
        return self.template.reach.shortest_path_via_event(
            self.state, target, label, self.edge_filter(ctx)
        )

    def distance_to(self, target: str, ctx: NeighborContext) -> Optional[int]:
        """Length of the shortest admissible path to ``target``.

        Positive-length when a fresh visit is demanded at the current state;
        ``None`` when unreachable.
        """
        path = self.inference_path(target, ctx)
        return None if path is None else len(path)

    def nearest_of(
        self, states: tuple[str, ...], ctx: NeighborContext
    ) -> tuple[Optional[str], Optional[int]]:
        """The member of ``states`` with the shortest fresh-visit path.

        Returns ``(state, distance)``; ``(None, None)`` when none reachable.
        """
        best_state, best_distance = None, None
        for state in states:
            distance = self.distance_to(state, ctx)
            if distance is not None and (best_distance is None or distance < best_distance):
                best_state, best_distance = state, distance
        return best_state, best_distance

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"EngineInstance(node={self.node}, state={self.state!r})"
