"""A single inference engine: one FSM instance per (node, packet).

The engine tracks its current state, how many times each state was visited
(and which flow entry produced each visit), and the index of the last flow
entry it emitted.  Visit counts are what make inter-node prerequisites work
for repeated episodes: a second ``ack`` on the sender demands a *second*
receive on the receiver (paper Table II case 4), while a single broadcast
visit can satisfy many distinct consumers (paper Fig. 3c).

Transition *selection* prefers normal transitions and falls back to the
derived intra-node jumps (paper §IV-B "Processing Events", steps 1-2); the
template precomputes that preference as a ``(state, label)`` table, so a
select is one dict probe.  Path queries go through the template's
:class:`~repro.fsm.reachability.CompiledReachability`: the engine evaluates
its admissibility predicate once per context change into an edge bitmask
(cached against :attr:`PacketContext.version`) and every shortest-path
question becomes a table lookup instead of a fresh graph walk.
"""

from __future__ import annotations

from typing import Optional, Protocol

from repro.events.packet import PacketKey
from repro.fsm.graph import Transition
from repro.fsm.intra import Selection
from repro.fsm.reachability import EdgeFilter
from repro.fsm.templates import FsmTemplate, NeighborContext

__all__ = ["CounterLike", "EngineInstance", "Selection"]


class CounterLike(Protocol):
    """Anything with ``inc`` — a real or null obs counter."""

    def inc(self, n: int = 1) -> None: ...


class EngineInstance:
    """FSM state of one node for one packet."""

    __slots__ = (
        "template",
        "select_table",
        "node",
        "packet",
        "fire_counter",
        "state",
        "trajectory",
        "visit_count",
        "visit_entries",
        "visit_seq",
        "last_entry",
        "_mask_ctx",
        "_mask_version",
        "_mask",
    )

    def __init__(
        self,
        template: FsmTemplate,
        node: int,
        packet: Optional[PacketKey],
        *,
        fire_counter: Optional["CounterLike"] = None,
    ) -> None:
        self.template = template
        self.select_table = template.select_table
        self.node = node
        self.packet = packet
        #: Observability hook: incremented on every fired transition
        #: (``engine.fires``).  ``None`` keeps standalone engines metric-free.
        self.fire_counter = fire_counter
        self.state: str = template.initial_state(node, packet)
        self.trajectory: list[str] = [self.state]
        #: Times each state was entered; the initial state counts once.
        #: (A plain dict — read through ``visits_of`` / ``.get``.)
        self.visit_count: dict[str, int] = {self.state: 1}
        #: Flow entry index of each visit (None for the initial state).
        self.visit_entries: dict[str, list[Optional[int]]] = {self.state: [None]}
        #: All visits in order: (state, flow entry index) pairs.
        self.visit_seq: list[tuple[str, Optional[int]]] = [(self.state, None)]
        #: Flow index of the last entry this engine emitted (per-node order).
        self.last_entry: Optional[int] = None
        #: Admissible-edge bitmask cache, keyed on the context identity and
        #: its version (the mask only depends on template/node/packet/ctx).
        self._mask_ctx: Optional[NeighborContext] = None
        self._mask_version = -1
        self._mask = 0

    # ------------------------------------------------------------------ #

    def select(self, label: str) -> Optional[Selection]:
        """Pick the transition for ``label`` at the current state.

        Normal transitions take precedence over intra-node jumps.  Returns
        ``None`` when the event is unprocessable here (step 3 of the
        algorithm: such events are eventually omitted).
        """
        return self.select_table.get((self.state, label))

    def fire(self, target: str, entry: Optional[int]) -> None:
        """Move to ``target``; ``entry`` is the flow index of the cause."""
        if self.fire_counter is not None:
            self.fire_counter.inc()
        self.state = target
        self.trajectory.append(target)
        counts = self.visit_count
        counts[target] = counts.get(target, 0) + 1
        entries = self.visit_entries.get(target)
        if entries is None:
            self.visit_entries[target] = [entry]
        else:
            entries.append(entry)
        self.visit_seq.append((target, entry))
        if entry is not None:
            self.last_entry = entry

    def visit_entry(self, state: str, nth: int) -> Optional[int]:
        """Flow index of the ``nth`` (1-based) visit of ``state``."""
        entries = self.visit_entries.get(state, [])
        if not 1 <= nth <= len(entries):
            raise IndexError(f"visit {nth} of {state!r} not recorded")
        return entries[nth - 1]

    def visits_of(self, states: tuple[str, ...]) -> int:
        """Total visits across a set of acceptable states."""
        counts = self.visit_count
        n = len(states)
        if n == 1:
            return counts.get(states[0], 0)
        if n == 2:
            return counts.get(states[0], 0) + counts.get(states[1], 0)
        return sum(counts.get(s, 0) for s in states)

    def visit_entry_of(self, states: tuple[str, ...], nth: int) -> Optional[int]:
        """Flow index of the ``nth`` (1-based) visit among ``states``."""
        if len(states) == 1:
            return self.visit_entry(states[0], nth)
        wanted = set(states)
        seen = 0
        for state, entry in self.visit_seq:
            if state in wanted:
                seen += 1
                if seen == nth:
                    return entry
        raise IndexError(f"visit {nth} of {states!r} not recorded")

    # ------------------------------------------------------------------ #
    # inference-path helpers

    def edge_filter(self, ctx: NeighborContext) -> EdgeFilter:
        """Admissibility predicate bound to this engine's node/packet."""
        template, node, packet = self.template, self.node, self.packet
        return lambda t: template.edge_admissible(t, node, packet, ctx)

    def admissible_mask(self, ctx: NeighborContext) -> int:
        """Admissible-edge bitmask for the current context.

        Recomputed only when the context object or its version changed —
        admissibility predicates are pure functions of (edge, node, packet,
        context), so an unchanged context means an unchanged mask.
        """
        template = self.template
        pred = template._admissible
        if pred is None:
            return template.compiled.full_mask
        version = getattr(ctx, "version", None)
        if version is None:
            # contexts without change tracking can't be cached against
            return template.compiled.compute_mask_of(pred, self.node, self.packet, ctx)
        if self._mask_ctx is not ctx or self._mask_version != version:
            self._mask = template.compiled.compute_mask_of(
                pred, self.node, self.packet, ctx
            )
            self._mask_ctx = ctx
            self._mask_version = version
        return self._mask

    def inference_path(
        self, target: str, ctx: NeighborContext
    ) -> Optional[list[Transition]]:
        """Shortest admissible normal path from the current state to ``target``.

        When the engine already *is* at ``target`` but a fresh visit is
        demanded, the shortest positive-length cycle back to ``target`` is
        returned instead.
        """
        compiled = self.template.compiled
        mask = self.admissible_mask(ctx)
        index = compiled.index
        src_i, target_i = index[self.state], index[target]
        if src_i != target_i:
            return compiled.path(src_i, target_i, mask)
        best: Optional[list[Transition]] = None
        for edge_bit, dst_i, first in compiled.outgoing[src_i]:
            if not (mask >> edge_bit) & 1:
                continue
            rest = compiled.path(dst_i, target_i, mask)
            if rest is None:
                continue
            if best is None or len(rest) + 1 < len(best):
                best = [first, *rest]
        return best

    def intra_inference_path(
        self, label: str, target: str, ctx: NeighborContext
    ) -> Optional[list[Transition]]:
        """Lost-event prefix for an intra-node jump ``state --label--> target``.

        The path leads to the source of a normal ``label`` transition into
        ``target``; the final ``label`` edge is the observed event itself and
        is excluded (paper §IV-B).
        """
        compiled = self.template.compiled
        index = compiled.index
        return compiled.path_via_event(
            index[self.state], index[target], label, self.admissible_mask(ctx)
        )

    def distance_to(self, target: str, ctx: NeighborContext) -> Optional[int]:
        """Length of the shortest admissible path to ``target``.

        Positive-length when a fresh visit is demanded at the current state;
        ``None`` when unreachable.
        """
        compiled = self.template.compiled
        mask = self.admissible_mask(ctx)
        index = compiled.index
        src_i, target_i = index[self.state], index[target]
        if src_i != target_i:
            return compiled.dist(src_i, target_i, mask)
        best: Optional[int] = None
        for edge_bit, dst_i, _first in compiled.outgoing[src_i]:
            if not (mask >> edge_bit) & 1:
                continue
            rest = compiled.dist(dst_i, target_i, mask)
            if rest is None:
                continue
            if best is None or rest + 1 < best:
                best = rest + 1
        return best

    def distance_between(
        self, start: str, target: str, ctx: NeighborContext
    ) -> Optional[int]:
        """Shortest admissible path length from an arbitrary ``start``.

        Unlike :meth:`distance_to` this has no fresh-visit semantics:
        ``start == target`` is distance 0 (the legacy
        ``len(reach.shortest_path(start, target))`` contract).
        """
        compiled = self.template.compiled
        index = compiled.index
        return compiled.dist(index[start], index[target], self.admissible_mask(ctx))

    def nearest_of(
        self, states: tuple[str, ...], ctx: NeighborContext
    ) -> tuple[Optional[str], Optional[int]]:
        """The member of ``states`` with the shortest fresh-visit path.

        Returns ``(state, distance)``; ``(None, None)`` when none reachable.
        """
        best_state, best_distance = None, None
        for state in states:
            distance = self.distance_to(state, ctx)
            if distance is not None and (best_distance is None or distance < best_distance):
                best_state, best_distance = state, distance
        return best_state, best_distance

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"EngineInstance(node={self.node}, state={self.state!r})"
