"""Parallel reconstruction across worker processes.

Per-packet flows are independent — reconstruction is embarrassingly
parallel.  This module shards the packet set over a ``multiprocessing``
pool: each worker builds its FSM template once (via a picklable factory
passed to the pool initializer) and processes packet batches, so per-task
overhead is one pickle of the packet's events and one of the resulting
flow.

Guides' advice applied: measure before optimizing — the serial engine does
~60k events/s, so parallelism only pays past ~10^5 logged events; under
``min_packets`` the implementation silently runs serially.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Mapping, Optional, Sequence

from repro.core.event_flow import EventFlow
from repro.core.refill import Refill, RefillOptions
from repro.core.transition_algorithm import PacketReconstructor, ReconstructorOptions
from repro.events.event import Event
from repro.events.log import NodeLog
from repro.events.merge import group_by_packet
from repro.events.packet import PacketKey
from repro.fsm.templates import FsmTemplate, forwarder_template
from repro.obs.registry import MetricsRegistry, get_registry, use_registry
from repro.obs.spans import span

#: A zero-argument, *module-level* (hence picklable-by-reference) function
#: returning the FSM template — each worker calls it once.
TemplateFactory = Callable[[], FsmTemplate]

# per-worker state, initialized once per process
_worker_template: Optional[FsmTemplate] = None
_worker_options: ReconstructorOptions = ReconstructorOptions()


def _init_worker(factory: TemplateFactory, options: ReconstructorOptions) -> None:
    global _worker_template, _worker_options
    _worker_template = factory()
    _worker_options = options


def _reconstruct_batch(
    batch: Sequence[tuple[PacketKey, dict[int, list[Event]]]]
) -> tuple[list[tuple[PacketKey, EventFlow]], MetricsRegistry]:
    """One batch in one worker; metrics land in a private per-batch registry.

    The registry rides back with the flows (it pickles cleanly — plain
    dicts, no locks) and the parent folds it into its own, so counter
    totals match a serial run over the same store exactly.
    """
    assert _worker_template is not None, "worker not initialized"
    out = []
    with use_registry(MetricsRegistry()) as registry:
        for packet, events_by_node in batch:
            reconstructor = PacketReconstructor(_worker_template, packet, _worker_options)
            out.append((packet, reconstructor.reconstruct(events_by_node)))
    return out, registry


class ParallelRefill:
    """Multi-process variant of :class:`~repro.core.refill.Refill`.

    Parameters
    ----------
    template_factory:
        Module-level callable building the template (default: the CTP
        forwarder).  It must be importable from workers — lambdas and
        closures will fail to pickle on spawn-based platforms.
    workers:
        Process count (default: ``os.cpu_count()``).
    min_packets:
        Below this many packets the pool is not worth its startup cost and
        reconstruction runs serially.
    """

    def __init__(
        self,
        template_factory: TemplateFactory = forwarder_template,
        options: RefillOptions = RefillOptions(),
        *,
        workers: Optional[int] = None,
        min_packets: int = 500,
        batch_size: int = 200,
    ) -> None:
        self.template_factory = template_factory
        self.options = options
        self.workers = workers or os.cpu_count() or 1
        self.min_packets = min_packets
        self.batch_size = batch_size

    def reconstruct(self, logs: Mapping[int, NodeLog]) -> dict[PacketKey, EventFlow]:
        """Event flow of every packet, sharded over worker processes."""
        with span("reconstruct"):
            with span("reconstruct.merge"):
                grouped = group_by_packet(logs)
            items = sorted(grouped.items())
            if len(items) < self.min_packets or self.workers <= 1:
                refill = Refill(self.template_factory(), self.options)
                return {
                    packet: refill.reconstruct_packet(packet, events)
                    for packet, events in items
                }
            batches = [
                items[i : i + self.batch_size]
                for i in range(0, len(items), self.batch_size)
            ]
            flows: dict[PacketKey, EventFlow] = {}
            parent_registry = get_registry()
            reconstructor_options = self.options.reconstructor_options()
            with ProcessPoolExecutor(
                max_workers=self.workers,
                initializer=_init_worker,
                initargs=(self.template_factory, reconstructor_options),
            ) as pool:
                for result, worker_registry in pool.map(_reconstruct_batch, batches):
                    flows.update(result)
                    parent_registry.merge(worker_registry)
            return flows
