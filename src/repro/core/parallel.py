"""Parallel reconstruction across worker processes — pool door to the session.

:class:`ParallelRefill` is a thin compatibility shim over
:class:`~repro.core.session.ReconstructionSession` with a
:class:`~repro.core.backends.ProcessPoolBackend`; the pool mechanics
(picklable template factories, per-worker metrics registries, the
``min_packets`` serial fallback) live in
:mod:`repro.core.backends.process`.  Because the session normalizes options
*before* sharding, pooled runs honor ``strip_times`` exactly like serial
ones.
"""

from __future__ import annotations

import os
from typing import Mapping, Optional

from repro.core.backends import ProcessPoolBackend, TemplateFactory
from repro.core.event_flow import EventFlow
from repro.core.session import ReconstructionSession, RefillOptions
from repro.events.log import NodeLog
from repro.events.packet import PacketKey
from repro.fsm.templates import forwarder_template

__all__ = ["ParallelRefill", "TemplateFactory"]


class ParallelRefill:
    """Multi-process variant of :class:`~repro.core.refill.Refill`.

    Parameters
    ----------
    template_factory:
        Module-level callable building the template (default: the CTP
        forwarder).  It must be importable from workers — lambdas and
        closures will fail to pickle on spawn-based platforms.
    workers:
        Process count (default: ``os.cpu_count()``).
    min_packets:
        Below this many packets the pool is not worth its startup cost and
        reconstruction runs serially.
    batch_size:
        Packet groups per pool task.
    """

    def __init__(
        self,
        template_factory: TemplateFactory = forwarder_template,
        options: RefillOptions = RefillOptions(),
        *,
        workers: Optional[int] = None,
        min_packets: int = 500,
        batch_size: int = 200,
    ) -> None:
        self.template_factory = template_factory
        self.options = options
        self.workers = workers or os.cpu_count() or 1
        self.min_packets = min_packets
        self.batch_size = batch_size

    def reconstruct(self, logs: Mapping[int, NodeLog]) -> dict[PacketKey, EventFlow]:
        """Event flow of every packet, sharded over worker processes."""
        session = ReconstructionSession(
            options=self.options,
            template_factory=self.template_factory,
            backend=ProcessPoolBackend(
                workers=self.workers, min_packets=self.min_packets
            ),
            batch_size=self.batch_size,
        )
        return session.reconstruct(logs)
