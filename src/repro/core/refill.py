"""The REFILL facade (paper Fig. 1).

Collect → merge → associate events with node state → connect engines →
output event flows.  :class:`Refill` wires the pieces: it groups collected
node logs by packet, runs the :class:`~repro.core.transition_algorithm.PacketReconstructor`
per packet and exposes diagnosis over the resulting flows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional, Sequence

from repro.events.event import Event
from repro.events.log import NodeLog
from repro.events.merge import group_by_packet
from repro.events.packet import PacketKey
from repro.core.diagnosis import LossReport, classify_flow
from repro.core.event_flow import EventFlow
from repro.core.transition_algorithm import (
    PacketReconstructor,
    ReconstructorOptions,
    TemplateFor,
)
from repro.fsm.templates import FsmTemplate, forwarder_template
from repro.obs.spans import span


@dataclass(frozen=True)
class RefillOptions:
    """Top-level configuration.

    Attributes
    ----------
    enable_intra / enable_inter:
        Forwarded to the reconstructor; ablation switches.
    strip_times:
        Drop timestamps from log events before inference, asserting that the
        reconstruction never depends on clocks (the paper's setting).  The
        returned flows then carry time only on events the caller re-attaches.
    """

    enable_intra: bool = True
    enable_inter: bool = True
    strip_times: bool = False

    def reconstructor_options(self) -> ReconstructorOptions:
        return ReconstructorOptions(
            enable_intra=self.enable_intra, enable_inter=self.enable_inter
        )


class Refill:
    """Reconstruct per-packet event flows from individual lossy logs."""

    def __init__(
        self,
        template: FsmTemplate | TemplateFor | None = None,
        options: RefillOptions = RefillOptions(),
    ) -> None:
        self.template: FsmTemplate | TemplateFor = template or forwarder_template()
        self.options = options

    # ------------------------------------------------------------------ #

    def reconstruct(self, logs: Mapping[int, NodeLog]) -> dict[PacketKey, EventFlow]:
        """Event flow of every packet mentioned anywhere in ``logs``."""
        with span("reconstruct"):
            with span("reconstruct.merge"):
                grouped = group_by_packet(logs)
            flows: dict[PacketKey, EventFlow] = {}
            for packet in sorted(grouped):
                flows[packet] = self.reconstruct_packet(packet, grouped[packet])
            return flows

    def reconstruct_packet(
        self, packet: Optional[PacketKey], events_by_node: Mapping[int, Sequence[Event]]
    ) -> EventFlow:
        """Event flow of a single packet from its per-node ordered events."""
        if self.options.strip_times:
            events_by_node = {
                node: [e.without_time() for e in events]
                for node, events in events_by_node.items()
            }
        reconstructor = PacketReconstructor(
            self.template, packet, self.options.reconstructor_options()
        )
        return reconstructor.reconstruct(events_by_node)

    def diagnose(
        self,
        flows: Mapping[PacketKey, EventFlow],
        *,
        delivery_node: Optional[int] = None,
    ) -> dict[PacketKey, LossReport]:
        """Loss cause + position per packet (paper §V-B)."""
        return {
            packet: classify_flow(flow, delivery_node=delivery_node)
            for packet, flow in flows.items()
        }
