"""The REFILL facade (paper Fig. 1) — batch door to the unified session.

Collect → merge → associate events with node state → connect engines →
output event flows.  :class:`Refill` is a thin compatibility shim over
:class:`~repro.core.session.ReconstructionSession` with a
:class:`~repro.core.backends.SerialBackend`: the session owns the canonical
pipeline (streaming merge, option normalization, diagnosis, metrics), this
class keeps the historical two-method API.  :class:`RefillOptions` lives
with the session and is re-exported here.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

from repro.core.backends import SerialBackend
from repro.core.diagnosis import LossReport
from repro.core.event_flow import EventFlow
from repro.core.session import ReconstructionSession, RefillOptions
from repro.core.transition_algorithm import TemplateFor
from repro.events.event import Event
from repro.events.log import NodeLog
from repro.events.packet import PacketKey
from repro.fsm.templates import FsmTemplate, forwarder_template

__all__ = ["Refill", "RefillOptions"]


class Refill:
    """Reconstruct per-packet event flows from individual lossy logs."""

    def __init__(
        self,
        template: FsmTemplate | TemplateFor | None = None,
        options: RefillOptions = RefillOptions(),
    ) -> None:
        self.template: FsmTemplate | TemplateFor = template or forwarder_template()
        self.options = options

    # ------------------------------------------------------------------ #

    def _session(self, *, delivery_node: Optional[int] = None) -> ReconstructionSession:
        return ReconstructionSession(
            self.template,
            self.options,
            backend=SerialBackend(),
            delivery_node=delivery_node,
        )

    def reconstruct(self, logs: Mapping[int, NodeLog]) -> dict[PacketKey, EventFlow]:
        """Event flow of every packet mentioned anywhere in ``logs``."""
        return self._session().reconstruct(logs)

    def reconstruct_packet(
        self, packet: Optional[PacketKey], events_by_node: Mapping[int, Sequence[Event]]
    ) -> EventFlow:
        """Event flow of a single packet from its per-node ordered events."""
        return self._session().reconstruct_group(packet, events_by_node)

    def diagnose(
        self,
        flows: Mapping[PacketKey, EventFlow],
        *,
        delivery_node: Optional[int] = None,
    ) -> dict[PacketKey, LossReport]:
        """Loss cause + position per packet (paper §V-B)."""
        return self._session(delivery_node=delivery_node).diagnose(flows)
