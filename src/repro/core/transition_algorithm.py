"""The recursive transition algorithm (paper §IV-B "Processing Events").

Given the merged per-node event queues of one packet, the algorithm walks
the connected inference engines:

1. A normal state transition for the current event is taken directly.
2. Otherwise, an intra-node jump is taken; the prerequisite events on the
   skipped normal path are emitted as *inferred* lost events (each processed
   recursively, so their own inter-node prerequisites resolve too).
3. Before any transition fires, its inter-node prerequisite rules are
   resolved: each prerequisite engine must have *visited* the prerequisite
   state often enough.  Demands are counted per consumer: the N-th time one
   consumer (node, event label, peer) requires a state, the peer must have
   visited it at least N times — so a second ``ack`` demands a second
   receive (Table II case 4) while a single broadcast visit satisfies many
   *distinct* consumers (Fig. 3c).  A missing visit is produced by *driving*
   the peer: consuming its real pending events while they move toward the
   target, then inferring the remainder along the shortest admissible
   normal-transition path.
4. Events with no available transition are omitted — but only after a full
   pass over all nodes makes no progress, so an event that is merely
   *temporarily* unprocessable gets its chance (design decision #2 in
   DESIGN.md).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Mapping, Optional, Sequence

from repro.events.event import Event
from repro.events.packet import PacketKey
from repro.core.context import PacketContext
from repro.core.engine import EngineInstance, Selection
from repro.core.event_flow import EventFlow
from repro.fsm.templates import FsmTemplate
from repro.obs.registry import MetricsRegistry, get_registry
from repro.obs.spans import span

#: Maps a node id to the FSM template its engine runs.
TemplateFor = Callable[[int], FsmTemplate]


class ReconCounters:
    """Counters the reconstructor increments, bound once per packet.

    Names are catalogued in ``docs/OBSERVABILITY.md``.  Binding resolves
    each registry lookup up front so the hot loop pays one attribute access
    and one integer add per increment (or a no-op under a
    :class:`~repro.obs.registry.NullRegistry`).
    """

    __slots__ = (
        "packets",
        "events_logged",
        "events_inferred",
        "events_omitted",
        "trans_normal",
        "trans_intra",
        "trans_inter",
        "prereq_drives",
        "prereq_unmet",
        "anomalies",
        "engine_fires",
    )

    @classmethod
    def for_registry(cls, registry: MetricsRegistry) -> "ReconCounters":
        """Memoized per registry: binding happens once, not per packet."""
        bound = registry.bind_cache.get(cls)
        if bound is None:
            bound = registry.bind_cache[cls] = cls(registry)
        return bound  # type: ignore[return-value]

    def __init__(self, registry: MetricsRegistry) -> None:
        counter = registry.counter
        self.packets = counter("refill.packets")
        self.events_logged = counter("refill.events.logged")
        self.events_inferred = counter("refill.events.inferred")
        self.events_omitted = counter("refill.events.omitted")
        self.trans_normal = counter("refill.transitions.normal")
        self.trans_intra = counter("refill.transitions.intra")
        self.trans_inter = counter("refill.transitions.inter")
        self.prereq_drives = counter("refill.prereq.drives")
        self.prereq_unmet = counter("refill.prereq.unmet")
        self.anomalies = counter("refill.anomalies")
        self.engine_fires = counter("engine.fires")


@dataclass(frozen=True, slots=True)
class ReconstructorOptions:
    """Feature switches (used by the ablation benchmarks).

    Attributes
    ----------
    enable_intra:
        Use derived intra-node jump transitions (step 2).  Off, the engine
        behaves like a plain FSM replay that omits anything a lost event
        made unreachable.
    enable_inter:
        Resolve inter-node prerequisites (step 3).  Off, engines run in
        isolation — the NetCheck-style baseline.
    max_depth:
        Recursion guard for pathological prerequisite cascades.
    """

    enable_intra: bool = True
    enable_inter: bool = True
    max_depth: int = 400


class PacketReconstructor:
    """Reconstructs the event flow of a single packet."""

    def __init__(
        self,
        template_for: TemplateFor | FsmTemplate,
        packet: Optional[PacketKey] = None,
        options: ReconstructorOptions = ReconstructorOptions(),
    ) -> None:
        if isinstance(template_for, FsmTemplate):
            template = template_for
            self._template_for: TemplateFor = lambda node: template
        else:
            self._template_for = template_for
        self.packet = packet
        self.options = options
        # hot-loop copies of the (frozen) option switches
        self._intra = options.enable_intra
        self._inter = options.enable_inter
        self._max_depth = options.max_depth

    # ------------------------------------------------------------------ #

    def reconstruct(self, events_by_node: Mapping[int, Sequence[Event]]) -> EventFlow:
        """Run the transition algorithm over per-node ordered event lists."""
        with span("reconstruct.packet"):
            return self._reconstruct(events_by_node)

    def _reconstruct(self, events_by_node: Mapping[int, Sequence[Event]]) -> EventFlow:
        self.flow = EventFlow(self.packet)
        self.ctx = PacketContext()
        self.metrics = ReconCounters.for_registry(get_registry())
        self.engines: dict[int, EngineInstance] = {}
        self.queues: dict[int, deque[Event]] = {
            node: deque(events) for node, events in sorted(events_by_node.items())
        }
        for queue in self.queues.values():
            self.ctx.preseed(queue)
        #: Per-consumer prerequisite demand counts; key is
        #: (consumer node, event label, peer node, prerequisite state).
        self._demands: dict[tuple[int, str, int, tuple[str, ...]], int] = {}
        self._driving: set[tuple[int, str]] = set()
        self._depth = 0

        rotation = self._rotation()
        while any(self.queues.values()):
            progressed = False
            for node in rotation:
                queue = self.queues[node]
                engine = self._engine(node) if queue else None
                while queue:
                    head = queue[0]
                    selection = self._select(engine, head.etype)
                    if selection is None:
                        break  # temporarily unprocessable; revisit next pass
                    queue.popleft()
                    self._process(head, False, None, "logged", selection)
                    progressed = True
            if not progressed:
                self._omit_one(rotation)

        for node, engine in sorted(self.engines.items()):
            self.flow.final_states[node] = engine.state
            # every state the engine entered: the initial state plus all
            # fired targets — exactly the visit-count keys
            self.flow.visited_states[node] = frozenset(engine.visit_count)

        m = self.metrics
        m.packets.inc()
        inferred = self.flow.inferred_count
        m.events_inferred.inc(inferred)
        m.events_logged.inc(len(self.flow.entries) - inferred)
        m.events_omitted.inc(len(self.flow.omitted))
        m.anomalies.inc(len(self.flow.anomalies))
        return self.flow

    # ------------------------------------------------------------------ #
    # internals

    def _rotation(self) -> list[int]:
        nodes = sorted(self.queues)
        if self.packet is not None and self.packet.origin in self.queues:
            nodes.remove(self.packet.origin)
            nodes.insert(0, self.packet.origin)
        return nodes

    def _engine(self, node: int) -> EngineInstance:
        engine = self.engines.get(node)
        if engine is None:
            engine = EngineInstance(
                self._template_for(node), node, self.packet,
                fire_counter=self.metrics.engine_fires,
            )
            self.engines[node] = engine
        return engine

    def _select(self, engine: EngineInstance, label: str):
        selection = engine.select(label)
        if selection is not None and not self._intra and selection.kind == "intra":
            return None
        return selection

    def _omit_one(self, rotation: list[int]) -> None:
        for node in rotation:
            queue = self.queues[node]
            if queue:
                event = queue.popleft()
                self.flow.omitted.append(event)
                return
        raise AssertionError("omit requested with all queues empty")  # pragma: no cover

    def _process(
        self,
        event: Event,
        inferred: bool,
        forced_target: Optional[str] = None,
        provenance: str = "logged",
        selection: Optional[Selection] = None,
    ) -> None:
        """Steps 1-2 for one event, with recursive prerequisite resolution.

        ``selection`` lets the caller hand over a selection it already made
        at the engine's current state (the main loop probes before it pops),
        saving the re-probe; it is ignored under ``forced_target``.
        """
        if self._depth >= self._max_depth:
            self.flow.anomalies.append(f"recursion limit while processing {event}")
            self.flow.omitted.append(event)
            return
        self._depth += 1
        try:
            engine = self.engines.get(event.node)
            if engine is None:
                engine = self._engine(event.node)
            template = engine.template
            label = event.etype

            if forced_target is not None:
                target = forced_target
                prefix = []
            else:
                if selection is None:
                    selection = self._select(engine, label)
                if selection is None:
                    self.flow.omitted.append(event)
                    return
                target = selection.target
                prefix = []
                if selection.kind == "intra":
                    self.metrics.trans_intra.inc()
                    prefix = engine.intra_inference_path(label, target, self.ctx) or []
                else:
                    self.metrics.trans_normal.inc()

            # Step 2: inferred prerequisite events on the skipped normal path.
            for edge in prefix:
                lost = template.realize_event(edge.event, event.node, self.packet, self.ctx)
                self._process(
                    lost, True, edge.dst, f"intra: skipped by {event.pair_label()}"
                )

            # Step 3: inter-node prerequisites of this event.
            prereq_entries: list[int] = []
            rules = template.prereqs.get(label) if self._inter else None
            if rules:
                for rule in rules:
                    peers = rule.resolve_nodes(event)
                    if not peers:
                        self.flow.anomalies.append(
                            f"unresolvable prerequisite peer for {event}"
                        )
                        continue
                    for peer in peers:
                        if peer == event.node:
                            self.flow.anomalies.append(
                                f"self-referential prerequisite for {event}"
                            )
                            continue
                        entry = self._require_visit(event.node, label, peer, rule.states)
                        if entry is not None:
                            prereq_entries.append(entry)

            # Fire and emit.
            last = engine.last_entry
            after: Sequence[int]
            if prereq_entries:
                if last is not None:
                    prereq_entries.append(last)
                after = sorted(set(prereq_entries))
            elif last is not None:
                after = (last,)
            else:
                after = ()
            index = self.flow.append(
                event, inferred=inferred, after=after, provenance=provenance
            )
            engine.fire(target, index)
            self.ctx.note(event, not inferred)
        finally:
            self._depth -= 1

    # ------------------------------------------------------------------ #
    # prerequisite resolution

    def _require_visit(
        self, consumer: int, label: str, peer: int, states: tuple[str, ...]
    ) -> Optional[int]:
        """Ensure ``peer`` visited one of ``states`` often enough.

        Demands are per consumer (node, label, peer, state-set); the N-th
        demand needs N total visits across the acceptable states.  Returns
        the flow index of the visit that satisfies the demand (for a
        happens-before edge), or ``None`` when it is the peer's initial
        state or the demand could not be met.
        """
        demand_key = (consumer, label, peer, states)
        demand = self._demands.get(demand_key, 0) + 1
        self._demands[demand_key] = demand
        self.metrics.trans_inter.inc()
        engine = self.engines.get(peer)
        if engine is None:
            engine = self._engine(peer)
        if engine.visits_of(states) < demand:
            self._drive(
                peer, states, demand,
                reason=f"prereq: required by {label} at node {consumer}",
            )
        if engine.visits_of(states) >= demand:
            return engine.visit_entry_of(states, demand)
        self.metrics.prereq_unmet.inc()
        self.flow.anomalies.append(
            f"prerequisite {states!r} (visit {demand}) unmet on node {peer}"
        )
        return engine.last_entry

    def _drive(
        self, node: int, states: tuple[str, ...], demand: int, *, reason: str = "prereq"
    ) -> None:
        """Drive ``node``'s engine until ``states`` have ``demand`` visits.

        Real pending events are consumed while they strictly decrease the
        distance to the nearest acceptable state; the remainder of the
        shortest admissible path is inferred step by step.
        """
        key = (node, states)
        if key in self._driving:
            self.flow.anomalies.append(f"prerequisite cycle at node {node} -> {states}")
            return
        self.metrics.prereq_drives.inc()
        self._driving.add(key)
        try:
            engine = self._engine(node)
            while engine.visits_of(states) < demand:
                target, distance = engine.nearest_of(states, self.ctx)
                if target is None:
                    self.flow.anomalies.append(
                        f"prerequisite states {states!r} unreachable on node {node}"
                    )
                    return
                if self._consume_toward(engine, node, states, target, distance):
                    continue
                # Infer one step along the shortest admissible path.
                path = engine.inference_path(target, self.ctx)
                if not path:  # pragma: no cover - distance>0 guarantees a path
                    self.flow.anomalies.append(
                        f"no inference path to {target!r} on node {node}"
                    )
                    return
                edge = path[0]
                lost = engine.template.realize_event(edge.event, node, self.packet, self.ctx)
                before = len(engine.trajectory)
                self._process(lost, True, edge.dst, reason)
                if len(engine.trajectory) == before:
                    # the inferred step could not fire (e.g. depth limit):
                    # abort the drive instead of spinning
                    self.flow.anomalies.append(
                        f"drive to {target!r} on node {node} made no progress"
                    )
                    return
        finally:
            self._driving.discard(key)

    def _consume_toward(
        self,
        engine: EngineInstance,
        node: int,
        states: tuple[str, ...],
        target: str,
        distance: int,
    ) -> bool:
        """Consume the node's next real event if it moves toward a target."""
        queue = self.queues.get(node)
        if not queue:
            return False
        head = queue[0]
        selection = self._select(engine, head.etype)
        if selection is None:
            return False
        if selection.target not in states:
            after = self._distance_from(engine, selection.target, target)
            if after is None or after >= distance:
                return False
        queue.popleft()
        self._process(head, False)
        return True

    def _distance_from(self, engine: EngineInstance, start: str, target: str) -> Optional[int]:
        return engine.distance_between(start, target, self.ctx)
