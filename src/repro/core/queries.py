"""Flow-level queries (paper §II).

"With the event flow, the detailed behavior of the packet can be revealed
... the packet related information, e.g. per-packet delay, packet
retransmission, packet loss, can also be revealed."  This module answers
those questions over reconstructed flows — including delay estimation that
*corrects for clock skew* by chaining per-hop local timestamps instead of
subtracting across unsynchronized clocks.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Mapping, Optional

from repro.core.event_flow import EventFlow
from repro.core.tracing import trace_packet
from repro.events.event import EventType
from repro.events.packet import PacketKey


@dataclass(frozen=True, slots=True)
class PacketStats:
    """Per-packet behaviour extracted from one flow."""

    packet: Optional[PacketKey]
    hop_count: int
    retransmissions: int
    duplicates: int
    has_loop: bool
    #: Sum of per-hop residence estimates (None when not estimable).
    delay_estimate: Optional[float]
    #: Fraction of the flow's events that had to be inferred.
    inferred_fraction: float


def packet_stats(flow: EventFlow) -> PacketStats:
    """Summarize one packet's reconstructed behaviour."""
    trace = trace_packet(flow)
    total = len(flow.entries)
    inferred = len(flow.inferred_events())
    return PacketStats(
        packet=flow.packet,
        hop_count=max(0, len(trace.path) - 1),
        retransmissions=trace.retransmissions,
        duplicates=trace.duplicates,
        has_loop=trace.has_loop,
        delay_estimate=estimate_delay(flow),
        inferred_fraction=inferred / total if total else 0.0,
    )


def estimate_delay(flow: EventFlow) -> Optional[float]:
    """End-to-end delay estimate robust to unsynchronized clocks.

    Timestamps from different nodes cannot be subtracted (offsets reach
    minutes); timestamps from the *same* node share one clock, and crystal
    drift over a packet's seconds-long transit is negligible.  So the delay
    is assembled from per-node residence times (last local event minus first
    local event on each node), which chain along the path.  Radio flight
    time (microseconds) is ignored.  Returns ``None`` when no node has two
    timestamped events.
    """
    first_seen: dict[int, float] = {}
    last_seen: dict[int, float] = {}
    for entry in flow.entries:
        event = entry.event
        if event.time is None:
            continue
        first_seen.setdefault(event.node, event.time)
        last_seen[event.node] = event.time
    residences = [last_seen[n] - first_seen[n] for n in first_seen]
    if not residences:
        return None
    return float(sum(residences))


@dataclass
class NetworkStats:
    """Aggregates over a whole reconstruction."""

    packets: int = 0
    delivered: int = 0
    lost: int = 0
    hop_histogram: Counter = field(default_factory=Counter)
    retransmission_total: int = 0
    loops: int = 0
    #: Per-node: how many flows visited it (from traced paths).
    node_load: Counter = field(default_factory=Counter)
    #: Mean inferred fraction across flows.
    inferred_fraction: float = 0.0
    #: Mean delay estimate across flows that had one.
    mean_delay: Optional[float] = None

    def delivery_ratio(self) -> float:
        return self.delivered / self.packets if self.packets else 0.0


def network_stats(
    flows: Mapping[PacketKey, EventFlow],
    *,
    delivery_node: Optional[int] = None,
) -> NetworkStats:
    """Aggregate packet behaviour across all reconstructed flows."""
    stats = NetworkStats()
    inferred_sum = 0.0
    delays: list[float] = []
    for _packet, flow in flows.items():
        s = packet_stats(flow)
        stats.packets += 1
        delivered = delivery_node is not None and any(
            e.node == delivery_node and e.etype == EventType.RECV.value
            for e in flow.events
        )
        stats.delivered += delivered
        stats.lost += not delivered
        stats.hop_histogram[s.hop_count] += 1
        stats.retransmission_total += s.retransmissions
        stats.loops += s.has_loop
        inferred_sum += s.inferred_fraction
        if s.delay_estimate is not None:
            delays.append(s.delay_estimate)
        for node in trace_packet(flow).path:
            stats.node_load[node] += 1
    if stats.packets:
        stats.inferred_fraction = inferred_sum / stats.packets
    if delays:
        stats.mean_delay = sum(delays) / len(delays)
    return stats


def retransmission_hotspots(
    flows: Mapping[PacketKey, EventFlow], *, top: int = 10
) -> list[tuple[tuple[int, int], int]]:
    """Links ranked by observed retransmission count (network tuning aid)."""
    counts: Counter = Counter()
    for flow in flows.values():
        seen: Counter = Counter()
        for event in flow.events:
            if event.etype == EventType.TRANS.value and event.src is not None:
                pair = (event.src, event.dst)
                if seen[pair]:
                    counts[pair] += 1
                seen[pair] += 1
    return counts.most_common(top)
