"""Per-packet neighbour knowledge shared by the engines of one packet.

When REFILL realizes an inferred event (say ``[1-2 recv]`` on node 2) it
must name the counterpart node.  That knowledge comes from the packet's
*other* events — a processed ``1-2 trans`` teaches us that node 2's upstream
is node 1 and node 1's downstream is node 2.  :class:`PacketContext` collects
these facts as events are processed (and is pre-seeded from all pending
events so inference can run even when the teaching event is processed
later).
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.events.event import Event


class PacketContext:
    """Upstream/downstream relations learned for one packet.

    First-seen values win during pre-seeding (queue order approximates
    chronology); values learned from *processed* events overwrite, since the
    transition algorithm processes events in reconstructed order.
    """

    def __init__(self) -> None:
        self._upstream: dict[int, int] = {}
        self._downstream: dict[int, int] = {}

    def upstream(self, node: int) -> Optional[int]:
        """Known sender that forwarded the packet to ``node``."""
        return self._upstream.get(node)

    def downstream(self, node: int) -> Optional[int]:
        """Known next hop of ``node`` for this packet."""
        return self._downstream.get(node)

    def note(self, event: Event, *, overwrite: bool = True) -> None:
        """Learn neighbour relations from a processed event."""
        if event.src is None or event.dst is None:
            return
        self._set(self._downstream, event.src, event.dst, overwrite)
        self._set(self._upstream, event.dst, event.src, overwrite)

    def preseed(self, events: Iterable[Event]) -> None:
        """Learn from not-yet-processed events without overwriting."""
        for event in events:
            self.note(event, overwrite=False)

    @staticmethod
    def _set(table: dict[int, int], key: int, value: int, overwrite: bool) -> None:
        if overwrite or key not in table:
            table[key] = value
