"""Per-packet neighbour knowledge shared by the engines of one packet.

When REFILL realizes an inferred event (say ``[1-2 recv]`` on node 2) it
must name the counterpart node.  That knowledge comes from the packet's
*other* events — a processed ``1-2 trans`` teaches us that node 2's upstream
is node 1 and node 1's downstream is node 2.  :class:`PacketContext` collects
these facts as events are processed (and is pre-seeded from all pending
events so inference can run even when the teaching event is processed
later).
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.events.event import Event


class PacketContext:
    """Upstream/downstream relations learned for one packet.

    First-seen values win during pre-seeding (queue order approximates
    chronology); values learned from *processed* events overwrite, since the
    transition algorithm processes events in reconstructed order.
    """

    __slots__ = ("_upstream", "_downstream", "version")

    def __init__(self) -> None:
        self._upstream: dict[int, int] = {}
        self._downstream: dict[int, int] = {}
        #: Bumped whenever a relation actually changes.  Engines key their
        #: cached admissible-edge masks on it: admissibility predicates only
        #: read the context, so an unchanged version means an unchanged mask.
        self.version = 0

    def upstream(self, node: int) -> Optional[int]:
        """Known sender that forwarded the packet to ``node``."""
        return self._upstream.get(node)

    def downstream(self, node: int) -> Optional[int]:
        """Known next hop of ``node`` for this packet."""
        return self._downstream.get(node)

    def note(self, event: Event, overwrite: bool = True) -> None:
        """Learn neighbour relations from a processed event."""
        src, dst = event.src, event.dst
        if src is None or dst is None:
            return
        downstream, upstream = self._downstream, self._upstream
        if (overwrite or src not in downstream) and downstream.get(src) != dst:
            downstream[src] = dst
            self.version += 1
        if (overwrite or dst not in upstream) and upstream.get(dst) != src:
            upstream[dst] = src
            self.version += 1

    def preseed(self, events: Iterable[Event]) -> None:
        """Learn from not-yet-processed events without overwriting."""
        downstream, upstream = self._downstream, self._upstream
        bumps = 0
        for event in events:
            src, dst = event.src, event.dst
            if src is None or dst is None:
                continue
            if src not in downstream:
                downstream[src] = dst
                bumps += 1
            if dst not in upstream:
                upstream[dst] = src
                bumps += 1
        self.version += bumps

