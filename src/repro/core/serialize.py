"""JSON serialization of event flows and diagnoses.

Reconstruction results feed dashboards and downstream tooling; this module
round-trips :class:`~repro.core.event_flow.EventFlow` (entries, provenance,
happens-before edges, omissions, anomalies, engine states) and
:class:`~repro.core.diagnosis.LossReport` through plain JSON-compatible
dicts.
"""

from __future__ import annotations

import json
from typing import Any, Mapping

from repro.core.diagnosis import LossCause, LossReport
from repro.core.event_flow import EventFlow
from repro.events.event import Event
from repro.events.packet import PacketKey


def event_to_dict(event: Event) -> dict[str, Any]:
    out: dict[str, Any] = {"etype": event.etype, "node": event.node}
    if event.src is not None:
        out["src"] = event.src
    if event.dst is not None:
        out["dst"] = event.dst
    if event.packet is not None:
        out["packet"] = str(event.packet)
    if event.time is not None:
        out["time"] = event.time
    if event.info:
        out["info"] = {k: v for k, v in event.info}
    return out


def event_from_dict(data: Mapping[str, Any]) -> Event:
    return Event.make(
        data["etype"],
        data["node"],
        src=data.get("src"),
        dst=data.get("dst"),
        packet=PacketKey.parse(data["packet"]) if "packet" in data else None,
        time=data.get("time"),
        **data.get("info", {}),
    )


def flow_to_dict(flow: EventFlow) -> dict[str, Any]:
    """JSON-compatible representation of a flow."""
    return {
        "packet": str(flow.packet) if flow.packet else None,
        "entries": [
            {
                "event": event_to_dict(e.event),
                "inferred": e.inferred,
                "provenance": e.provenance,
            }
            for e in flow.entries
        ],
        "happens_before": sorted(list(edge) for edge in flow.hb_edges),
        "omitted": [event_to_dict(e) for e in flow.omitted],
        "anomalies": list(flow.anomalies),
        "final_states": {str(n): s for n, s in flow.final_states.items()},
        "visited_states": {
            str(n): sorted(states) for n, states in flow.visited_states.items()
        },
    }


def flow_from_dict(data: Mapping[str, Any]) -> EventFlow:
    """Rebuild a flow from its JSON form."""
    flow = EventFlow(PacketKey.parse(data["packet"]) if data.get("packet") else None)
    for entry in data["entries"]:
        flow.append(
            event_from_dict(entry["event"]),
            inferred=entry["inferred"],
            provenance=entry.get("provenance", "logged"),
        )
    for before, after in data.get("happens_before", []):
        flow.add_order(before, after)
    flow.omitted.extend(event_from_dict(e) for e in data.get("omitted", []))
    flow.anomalies.extend(data.get("anomalies", []))
    flow.final_states.update(
        {int(n): s for n, s in data.get("final_states", {}).items()}
    )
    flow.visited_states.update(
        {
            int(n): frozenset(states)
            for n, states in data.get("visited_states", {}).items()
        }
    )
    return flow


def report_to_dict(report: LossReport) -> dict[str, Any]:
    return {
        "cause": report.cause.value,
        "position": report.position,
        "anchor": event_to_dict(report.anchor) if report.anchor else None,
    }


def report_from_dict(data: Mapping[str, Any]) -> LossReport:
    return LossReport(
        cause=LossCause(data["cause"]),
        position=data.get("position"),
        anchor=event_from_dict(data["anchor"]) if data.get("anchor") else None,
    )


def flows_to_json(flows: Mapping[PacketKey, EventFlow]) -> dict[str, Any]:
    """``{"p<o>.<s>": flow_to_dict(...)}`` sorted by packet key."""
    return {str(packet): flow_to_dict(flows[packet]) for packet in sorted(flows)}


def reports_to_json(reports: Mapping[PacketKey, LossReport]) -> dict[str, Any]:
    """``{"p<o>.<s>": report_to_dict(...)}`` sorted by packet key."""
    return {str(packet): report_to_dict(reports[packet]) for packet in sorted(reports)}


def dumps_canonical(data: Any) -> str:
    """Byte-stable JSON: sorted keys, no whitespace.

    The equivalence contract between the batch CLI (``refill analyze
    --flows-out``) and the serve layer's query API is *byte identity* of
    this form — both sides must serialize through here.
    """
    return json.dumps(data, sort_keys=True, separators=(",", ":"))
