"""Logging advisor: which events does REFILL actually need? (paper §VII)

"In the future, we will ... work on more efficient and effective logging
methods for REFILL."  Logging costs flash writes, radio bandwidth and
energy; REFILL's own inference machinery tells us which log statements pull
their weight:

- an event label is **structurally inferable** when losing it never stalls
  an engine: at every state where it can occur, an intra-node jump exists
  for every label that can follow it, or an inter-node prerequisite from a
  peer regenerates it;
- labels also differ in **diagnostic value**: a label that anchors a loss
  cause (timeout/dup/overflow/recv) cannot be dropped without losing the
  classification, even if flows still reconstruct.

The advisor scores each label on both axes and proposes logging plans;
``bench_ablation_logging_plans.py`` measures the plans against ground
truth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.events.event import EventType
from repro.fsm.templates import FsmTemplate

#: Labels whose presence anchors a loss cause (§V-B classification).
DIAGNOSTIC_LABELS = frozenset(
    {
        EventType.RECV.value,
        EventType.ACK.value,
        EventType.TIMEOUT.value,
        EventType.DUP.value,
        EventType.OVERFLOW.value,
    }
)


@dataclass(frozen=True, slots=True)
class LabelAdvice:
    """Advisor verdict for one event label."""

    label: str
    #: Every occurrence skipped by losing this label can be re-derived via
    #: an intra-node jump of some later label.
    intra_recoverable: bool
    #: Some peer's event regenerates this label through a prerequisite
    #: drive (the label lies on a path to a prerequisite state).
    inter_recoverable: bool
    #: Dropping the label removes a loss-cause anchor.
    diagnostic: bool

    @property
    def droppable(self) -> bool:
        """Safe to stop logging: recoverable and not a diagnosis anchor."""
        return (self.intra_recoverable or self.inter_recoverable) and not self.diagnostic


def advise(template: FsmTemplate) -> dict[str, LabelAdvice]:
    """Score every event label of ``template``."""
    graph = template.graph
    advice: dict[str, LabelAdvice] = {}
    prereq_states = _prerequisite_states(template)
    for label in graph.events:
        advice[label] = LabelAdvice(
            label=label,
            intra_recoverable=_intra_recoverable(template, label),
            inter_recoverable=_inter_recoverable(template, label, prereq_states),
            diagnostic=label in DIAGNOSTIC_LABELS,
        )
    return advice


def _intra_recoverable(template: FsmTemplate, label: str) -> bool:
    """Losing one ``label`` record never stalls the engine.

    For every transition ``s --label--> t`` and every label ``m`` that can
    occur from ``t``, the engine must still be able to process ``m`` at
    ``s`` (a normal transition or a derived intra-node jump) — then a lost
    ``label`` is skipped over and re-emitted as an inferred event.
    """
    graph = template.graph
    for t in graph.transitions_with_event(label):
        for follow in graph.outgoing(t.dst):
            if graph.transitions_from(t.src, follow.event):
                continue
            if (t.src, follow.event) not in template.intra:
                return False
    return True


def _prerequisite_states(template: FsmTemplate) -> set[str]:
    states: set[str] = set()
    for rules in template.prereqs.values():
        for rule in rules:
            states.update(rule.states)
    return states


def _inter_recoverable(
    template: FsmTemplate, label: str, prereq_states: set[str]
) -> bool:
    """Some peer event's prerequisite drive would regenerate ``label``.

    True when a ``label`` transition lands on (or leads into) a state that
    peers demand: the drive to that state walks the normal path and emits
    the label as an inferred event.
    """
    reach = template.reach
    for t in template.graph.transitions_with_event(label):
        for state in prereq_states:
            if t.dst == state or reach.reachable(t.dst, state):
                return True
    return False


# --------------------------------------------------------------------- #
# logging plans


@dataclass(frozen=True, slots=True)
class LoggingPlan:
    """A subset of labels to actually log."""

    name: str
    logged: frozenset[str]

    def keeps(self, label: str) -> bool:
        return label in self.logged


def full_plan(template: FsmTemplate) -> LoggingPlan:
    return LoggingPlan("full", frozenset(template.graph.events))


def advised_plan(template: FsmTemplate) -> LoggingPlan:
    """Log everything except labels the advisor marks droppable."""
    advice = advise(template)
    logged = frozenset(label for label, a in advice.items() if not a.droppable)
    return LoggingPlan("advised", logged)


def minimal_diagnostic_plan(template: FsmTemplate) -> LoggingPlan:
    """Log only the diagnosis anchors (aggressive energy saving)."""
    logged = frozenset(
        label for label in template.graph.events if label in DIAGNOSTIC_LABELS
    )
    return LoggingPlan("diagnostic-only", logged)


def apply_plan(logs: Mapping[int, "NodeLog"], plan: LoggingPlan) -> dict[int, "NodeLog"]:
    """Filter node logs down to the plan's labels (simulating sparse logging)."""
    from repro.events.log import NodeLog

    return {
        node: NodeLog(node, (e for e in log if plan.keeps(e.etype)))
        for node, log in logs.items()
    }


def savings(logs: Mapping[int, "NodeLog"], plan: LoggingPlan) -> float:
    """Fraction of log records the plan avoids writing."""
    total = sum(len(log) for log in logs.values())
    if total == 0:
        return 0.0
    kept = sum(
        sum(1 for e in log if plan.keeps(e.etype)) for log in logs.values()
    )
    return 1.0 - kept / total
