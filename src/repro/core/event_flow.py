"""Event flows (paper §II Eq. 1, §IV-C).

An event flow is the reconstructed ordering of all events related to one
packet, with events REFILL inferred as lost shown "in square brackets".
Besides the linearization the flow keeps the *happens-before* edges that are
actually determined by per-node log order and prerequisite constraints, so
callers can distinguish determined from incidental orderings (paper Fig. 3b:
"The ordering between e1 and e5 cannot be determined").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Optional

from repro.events.event import Event
from repro.events.packet import PacketKey


@dataclass(frozen=True, slots=True)
class FlowEntry:
    """One position in an event flow."""

    event: Event
    #: True when REFILL inferred the event as lost (bracketed in the paper).
    inferred: bool = False
    #: Where the entry came from: ``"logged"`` for real records,
    #: ``"intra: ..."`` for events recovered by an intra-node jump,
    #: ``"prereq: ..."`` for events recovered by a prerequisite drive.
    provenance: str = "logged"

    def label(self) -> str:
        text = self.event.pair_label()
        return f"[{text}]" if self.inferred else text


class EventFlow:
    """Reconstructed per-packet event flow.

    Attributes
    ----------
    packet:
        The packet the flow describes (``None`` for packet-less workloads
        such as the Fig. 3 synthetic examples).
    entries:
        The linearized flow, inferred events marked.
    omitted:
        Events the transition algorithm could not process (paper §IV-B step
        3: "we omit those events").
    anomalies:
        Human-readable notes about degenerate situations (unresolvable
        prerequisite peers, prerequisite cycles, ...).
    final_states / visited_states:
        Per-node engine state at the end of processing and the set of states
        each engine visited.
    """

    def __init__(self, packet: Optional[PacketKey] = None) -> None:
        self.packet = packet
        self.entries: list[FlowEntry] = []
        self.omitted: list[Event] = []
        self.anomalies: list[str] = []
        self.final_states: dict[int, str] = {}
        self.visited_states: dict[int, frozenset[str]] = {}
        # happens-before edges between entry indices (i before j).
        self._hb: set[tuple[int, int]] = set()
        #: Count of inferred entries, maintained by :meth:`append`.
        self.inferred_count = 0

    # ------------------------------------------------------------------ #
    # construction (used by the transition algorithm)

    def append(
        self,
        event: Event,
        *,
        inferred: bool,
        after: Iterable[int] = (),
        provenance: str = "logged",
    ) -> int:
        """Append an entry; ``after`` are indices that happen before it."""
        entries = self.entries
        index = len(entries)
        entries.append(FlowEntry(event, inferred, provenance))
        if inferred:
            self.inferred_count += 1
        if after:
            hb = self._hb
            for i in after:
                if not 0 <= i < index:
                    raise ValueError(f"happens-before index {i} out of range")
                hb.add((i, index))
        return index

    def add_order(self, before: int, after: int) -> None:
        """Record that entry ``before`` happens before entry ``after``."""
        if before == after or not (0 <= before < len(self.entries)) or not (
            0 <= after < len(self.entries)
        ):
            raise ValueError(f"invalid happens-before pair ({before}, {after})")
        self._hb.add((before, after))

    # ------------------------------------------------------------------ #
    # queries

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self) -> Iterator[FlowEntry]:
        return iter(self.entries)

    def __getitem__(self, index: int) -> FlowEntry:
        return self.entries[index]

    @property
    def events(self) -> list[Event]:
        return [entry.event for entry in self.entries]

    def real_events(self) -> list[Event]:
        """Events that were actually present in the collected logs."""
        return [e.event for e in self.entries if not e.inferred]

    def inferred_events(self) -> list[Event]:
        """Events REFILL inferred as lost."""
        return [e.event for e in self.entries if e.inferred]

    def last_event(self) -> Optional[Event]:
        """The flow's final event (the paper's loss-cause anchor, §V-B)."""
        return self.entries[-1].event if self.entries else None

    def labels(self) -> list[str]:
        """Paper-style labels, inferred events bracketed."""
        return [entry.label() for entry in self.entries]

    def format(self, sep: str = ", ") -> str:
        """The flow rendered in the paper's notation."""
        return sep.join(self.labels())

    def explain(self) -> str:
        """Annotated rendering: every entry with its provenance.

        The drill-down an operator reads when they do not trust a bracketed
        event — which observation forced REFILL to infer it.
        """
        lines = []
        for i, entry in enumerate(self.entries):
            note = "" if entry.provenance == "logged" else f"    <- {entry.provenance}"
            lines.append(f"{i:3d}  {entry.label():<28}{note}")
        for event in self.omitted:
            lines.append(f"  -  {event.pair_label():<28}    <- omitted (no transition)")
        for anomaly in self.anomalies:
            lines.append(f"  !  {anomaly}")
        return "\n".join(lines)

    def nodes(self) -> set[int]:
        """All nodes whose engines saw at least one (real) event."""
        return {entry.event.node for entry in self.entries}

    def visited(self, node: int, state: str) -> bool:
        """Whether ``node``'s engine visited ``state``."""
        return state in self.visited_states.get(node, frozenset())

    # ------------------------------------------------------------------ #
    # happens-before

    @property
    def hb_edges(self) -> frozenset[tuple[int, int]]:
        return frozenset(self._hb)

    def happens_before(self, before: int, after: int) -> bool:
        """Whether entry ``before`` is *determined* to precede ``after``.

        Computed as reachability over the recorded happens-before edges
        (per-node log order + prerequisite constraints); linear positions in
        ``entries`` that are not connected are incidental.
        """
        if before == after:
            return False
        adjacency: dict[int, list[int]] = {}
        for i, j in self._hb:
            adjacency.setdefault(i, []).append(j)
        stack = [before]
        seen = {before}
        while stack:
            cur = stack.pop()
            for nxt in adjacency.get(cur, ()):
                if nxt == after:
                    return True
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append(nxt)
        return False

    def order_determined(self, a: int, b: int) -> bool:
        """Whether the relative order of entries ``a`` and ``b`` is forced."""
        return self.happens_before(a, b) or self.happens_before(b, a)

    def maximal_entries(self) -> list[int]:
        """Indices of entries with no happens-before successor.

        These are the flow's "frontier": nothing is determined to follow
        them.  Diagnosis anchors on the frontier rather than the last linear
        position, which can be an artifact of the merge interleaving.
        """
        has_successor = {i for i, _ in self._hb}
        return [i for i in range(len(self.entries)) if i not in has_successor]

    def index_of(self, event: Event) -> int:
        """Index of the first entry whose event equals ``event``."""
        for i, entry in enumerate(self.entries):
            if entry.event == event:
                return i
        raise ValueError(f"event {event} not in flow")

    def find(self, etype: str, node: Optional[int] = None) -> list[int]:
        """Indices of entries with the given type (and optionally node)."""
        return [
            i
            for i, entry in enumerate(self.entries)
            if entry.event.etype == etype and (node is None or entry.event.node == node)
        ]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        pkt = f" {self.packet}" if self.packet else ""
        return f"EventFlow({pkt} {self.format()})"
