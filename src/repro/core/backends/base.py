"""The execution-backend contract of a reconstruction session.

Per-packet independence (paper §IV–V) means *how* packet groups get turned
into event flows is a deployment choice, not an algorithmic one: in one
process, across a worker pool, or statefully as evidence trickles in from a
live collection.  :class:`ExecutionBackend` is that seam.  The session owns
everything above it — streaming merge, option normalization (including
``strip_times``), diagnosis, metrics — and hands each backend fully
normalized, per-node-ordered packet groups, so every backend reconstructs
from byte-identical inputs and must produce byte-identical flows.

Lifecycle::

    backend.start(plan)          # once; plan = template + options
    backend.submit(batch)        # any number of times; may yield flows
    backend.finish()             # flush; yields remaining flows; reusable
    backend.close()              # release pools/state

``submit`` and ``finish`` yield ``(packet, flow)`` pairs; a backend is free
to defer work (pool dispatch, dirty-set accumulation) and emit flows later.
Backends with ``accumulates = True`` accept *partial* evidence per submit
(a packet may gain more events in a later batch) and re-derive the affected
flows on ``finish``; the others require every submitted group to be
complete.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, Optional, Sequence

from repro.core.event_flow import EventFlow
from repro.core.transition_algorithm import (
    PacketReconstructor,
    ReconstructorOptions,
    TemplateFor,
)
from repro.events.merge import PacketGroup
from repro.events.packet import PacketKey
from repro.fsm.templates import FsmTemplate

#: A zero-argument, *module-level* (hence picklable-by-reference) function
#: returning the FSM template — process workers call it once each.
TemplateFactory = Callable[[], FsmTemplate]


@dataclass(frozen=True)
class ExecutionPlan:
    """Everything a backend needs to reconstruct: model + switches.

    ``template`` is always usable in-process (an :class:`FsmTemplate` or a
    per-node factory); ``template_factory`` is the picklable spelling that
    process pools require and is ``None`` when the session was built from a
    bare template.
    """

    template: FsmTemplate | TemplateFor
    options: ReconstructorOptions
    template_factory: Optional[TemplateFactory] = None


class ExecutionBackend(abc.ABC):
    """Strategy for executing per-packet reconstructions."""

    #: Stable identifier (CLI ``--backend`` value, metrics label).
    name: str = "abstract"
    #: True when ``submit`` accepts partial evidence for a packet and
    #: ``finish`` re-derives the dirtied flows (streaming ingest).
    accumulates: bool = False

    def __init__(self) -> None:
        self.plan: Optional[ExecutionPlan] = None

    def start(self, plan: ExecutionPlan) -> None:
        """Bind the plan; called once before any ``submit``."""
        self.plan = plan

    @abc.abstractmethod
    def submit(
        self, batch: Sequence[PacketGroup]
    ) -> Iterable[tuple[PacketKey, EventFlow]]:
        """Take one batch of normalized packet groups; may yield flows."""

    def finish(self) -> Iterable[tuple[PacketKey, EventFlow]]:
        """Flush deferred work; the backend stays usable afterwards."""
        return ()

    def close(self) -> None:
        """Release resources (worker pools, accumulated state)."""

    # ------------------------------------------------------------------ #

    def _reconstruct_serially(
        self, groups: Iterable[PacketGroup]
    ) -> Iterator[tuple[PacketKey, EventFlow]]:
        """The one group→flow loop every in-process path shares.

        One :class:`PacketReconstructor` is reused across the whole batch —
        ``reconstruct`` resets every per-packet structure, so only the packet
        key needs rebinding, and the template/options plumbing is paid once
        per batch instead of once per packet.
        """
        plan = self._plan()
        reconstructor = PacketReconstructor(plan.template, None, plan.options)
        for packet, events_by_node in groups:
            reconstructor.packet = packet
            yield packet, reconstructor.reconstruct(events_by_node)

    def _plan(self) -> ExecutionPlan:
        if self.plan is None:
            raise RuntimeError(f"{type(self).__name__} used before start()")
        return self.plan
