"""In-process, one-at-a-time execution — the reference backend.

Every other backend's contract is "produce exactly what SerialBackend
produces"; the equivalence suite in ``tests/core/test_backend_equivalence.py``
enforces it.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.core.backends.base import ExecutionBackend
from repro.core.event_flow import EventFlow
from repro.events.merge import PacketGroup
from repro.events.packet import PacketKey


class SerialBackend(ExecutionBackend):
    """Reconstruct each group immediately on the calling thread."""

    name = "serial"

    def submit(
        self, batch: Sequence[PacketGroup]
    ) -> Iterable[tuple[PacketKey, EventFlow]]:
        return self._reconstruct_serially(batch)
