"""Worker-pool execution across processes.

Per-packet flows are independent — reconstruction is embarrassingly
parallel.  Each worker builds its FSM template once (via a picklable
factory passed to the pool initializer) and processes whole batches, so
per-task overhead is one pickle of the batch's events and one of the
resulting flows.

Guides' advice applied: measure before optimizing — the serial engine does
~60k events/s, so parallelism only pays past ~10^5 logged events.  The pool
is therefore *lazy*: submitted batches buffer until ``min_packets`` groups
have arrived, and a run that never reaches the threshold (or has
``workers <= 1``) reconstructs serially in-process on ``finish``, skipping
pool startup entirely.

Worker metrics land in private per-batch registries that ride back with the
flows (they pickle cleanly — plain dicts, no locks) and are folded into the
parent's active registry, so counter totals match a serial run exactly.
"""

from __future__ import annotations

import os
from collections import deque
from concurrent.futures import Future, ProcessPoolExecutor
from typing import Iterable, Iterator, Optional, Sequence

from repro.core.backends.base import ExecutionBackend, ExecutionPlan, TemplateFactory
from repro.core.event_flow import EventFlow
from repro.core.transition_algorithm import PacketReconstructor, ReconstructorOptions
from repro.events.merge import PacketGroup
from repro.events.packet import PacketKey
from repro.fsm.templates import FsmTemplate
from repro.obs.registry import MetricsRegistry, get_registry, use_registry

# per-worker state, initialized once per process
_worker_template: Optional[FsmTemplate] = None
_worker_options: ReconstructorOptions = ReconstructorOptions()


def _init_worker(factory: TemplateFactory, options: ReconstructorOptions) -> None:
    global _worker_template, _worker_options
    _worker_template = factory()
    _worker_options = options


def _reconstruct_batch(
    batch: Sequence[PacketGroup],
) -> tuple[list[tuple[PacketKey, EventFlow]], MetricsRegistry]:
    """One batch in one worker; metrics land in a private registry."""
    assert _worker_template is not None, "worker not initialized"
    out = []
    with use_registry(MetricsRegistry()) as registry:
        for packet, events_by_node in batch:
            reconstructor = PacketReconstructor(_worker_template, packet, _worker_options)
            out.append((packet, reconstructor.reconstruct(events_by_node)))
    return out, registry


class ProcessPoolBackend(ExecutionBackend):
    """Shard batches over a ``multiprocessing`` pool.

    Parameters
    ----------
    workers:
        Process count (default: ``os.cpu_count()``).
    min_packets:
        Below this many packets the pool is not worth its startup cost and
        reconstruction runs serially on ``finish``.
    max_inflight:
        Cap on unfinished pool tasks (default ``2 * workers``); ``submit``
        drains completed ones past the cap, so the streaming path keeps a
        bounded number of batches pickled at any moment.
    """

    name = "process"

    def __init__(
        self,
        *,
        workers: Optional[int] = None,
        min_packets: int = 500,
        max_inflight: Optional[int] = None,
    ) -> None:
        super().__init__()
        self.workers = workers or os.cpu_count() or 1
        self.min_packets = min_packets
        self.max_inflight = max_inflight or 2 * self.workers
        self._pool: Optional[ProcessPoolExecutor] = None
        self._futures: deque[Future] = deque()
        self._buffer: list[list[PacketGroup]] = []
        self._buffered = 0

    def start(self, plan: ExecutionPlan) -> None:
        if plan.template_factory is None:
            raise ValueError(
                "ProcessPoolBackend needs a module-level template factory "
                "(lambdas and bound templates cannot cross process spawn); "
                "construct the session with template_factory=..."
            )
        super().start(plan)
        self._buffer, self._buffered = [], 0

    def submit(
        self, batch: Sequence[PacketGroup]
    ) -> Iterable[tuple[PacketKey, EventFlow]]:
        if not batch:
            return ()
        if self._pool is None:
            self._buffer.append(list(batch))
            self._buffered += len(batch)
            if self._buffered < self.min_packets or self.workers <= 1:
                return ()
            pool = self._open_pool()
            pending, self._buffer, self._buffered = self._buffer, [], 0
            for buffered in pending:
                self._futures.append(pool.submit(_reconstruct_batch, buffered))
            return self._drain(keep=self.max_inflight)
        self._futures.append(self._pool.submit(_reconstruct_batch, list(batch)))
        return self._drain(keep=self.max_inflight)

    def finish(self) -> Iterable[tuple[PacketKey, EventFlow]]:
        if self._pool is None:
            # Never reached min_packets: the pool would cost more than it
            # saves — reconstruct the buffered groups in-process instead.
            pending, self._buffer, self._buffered = self._buffer, [], 0
            for buffered in pending:
                yield from self._reconstruct_serially(buffered)
            return
        yield from self._drain(keep=0)

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None
        self._futures.clear()
        self._buffer, self._buffered = [], 0

    # ------------------------------------------------------------------ #

    def _open_pool(self) -> ProcessPoolExecutor:
        plan = self._plan()
        self._pool = ProcessPoolExecutor(
            max_workers=self.workers,
            initializer=_init_worker,
            initargs=(plan.template_factory, plan.options),
        )
        return self._pool

    def _drain(self, *, keep: int) -> Iterator[tuple[PacketKey, EventFlow]]:
        """Yield results of completed tasks until ≤ ``keep`` remain in flight.

        FIFO order: batches were submitted in sorted-packet order and the
        session re-sorts its flow map anyway, so blocking on the oldest
        future keeps memory bounded without hurting determinism.
        """
        parent_registry = get_registry()
        while len(self._futures) > keep:
            flows, worker_registry = self._futures.popleft().result()
            parent_registry.merge(worker_registry)
            yield from flows
