"""Stateful execution over a live deployment's trickling evidence.

Logs arrive in rounds (each CTP collection round delivers more chunks);
operators want diagnosis *now*, not at end-of-month.  This backend keeps
per-packet event accumulations and re-derives flows only for packets whose
evidence changed — per-packet independence makes the dirty set exact.

Re-running a dirty packet's reconstruction from scratch (instead of
resuming engine state) is deliberate: new evidence can *precede* previously
processed events (logs are unsynchronized), so the transition algorithm's
ordering decisions must be revisited — a classic recompute-over-resume
trade, cheap because flows are tiny.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator, Mapping, Sequence

from repro.core.backends.base import ExecutionBackend
from repro.core.event_flow import EventFlow
from repro.events.event import Event
from repro.events.merge import PacketGroup
from repro.events.packet import PacketKey


class IncrementalBackend(ExecutionBackend):
    """Accumulate partial packet groups; reconstruct the dirty set on flush.

    ``submit`` never yields — evidence for a packet may still be on its way,
    so flows are only derived when the session asks for a ``finish`` (the
    session's ``refresh``).  Within one node, segments must arrive in log
    order (collection preserves per-node order); across batches any
    interleaving is fine.
    """

    name = "incremental"
    accumulates = True

    def __init__(self) -> None:
        super().__init__()
        #: per packet, per node: ordered accumulated events
        self._events: dict[PacketKey, dict[int, list[Event]]] = {}
        self.dirty: set[PacketKey] = set()

    def submit(
        self, batch: Sequence[PacketGroup]
    ) -> Iterable[tuple[PacketKey, EventFlow]]:
        for packet, events_by_node in batch:
            per_node = self._events.setdefault(packet, {})
            for node, events in events_by_node.items():
                per_node.setdefault(node, []).extend(events)
            self.dirty.add(packet)
        return ()

    def finish(self) -> Iterator[tuple[PacketKey, EventFlow]]:
        # One serial pass over the whole dirty set: refresh cost scales with
        # the dirtied packets, and the per-batch reconstructor setup in
        # ``_reconstruct_serially`` is paid once instead of once per packet.
        events = self._events
        yield from self._reconstruct_serially(
            (packet, events[packet]) for packet in sorted(self.dirty)
        )
        self.dirty.clear()

    def close(self) -> None:
        self._events.clear()
        self.dirty.clear()

    def packets(self) -> list[PacketKey]:
        """Every packet seen so far, sorted by (origin, seq)."""
        return sorted(self._events)

    # ------------------------------------------------------------------ #
    # resumable state (the serve layer's checkpoint substrate)

    def export_state(self) -> dict[str, Any]:
        """JSON-compatible accumulation state: per-packet per-node events
        plus the dirty set.  Restoring it into a fresh backend and ingesting
        the *remaining* evidence yields byte-identical flows to one
        uninterrupted run — recompute-over-resume means the accumulated
        events are the whole truth."""
        from repro.core.serialize import event_to_dict

        return {
            "events": {
                str(packet): {
                    str(node): [event_to_dict(e) for e in events]
                    for node, events in sorted(per_node.items())
                }
                for packet, per_node in sorted(self._events.items())
            },
            "dirty": [str(packet) for packet in sorted(self.dirty)],
        }

    def restore_state(self, state: Mapping[str, Any]) -> None:
        """Inverse of :meth:`export_state`; replaces any current state."""
        from repro.core.serialize import event_from_dict

        self._events = {
            PacketKey.parse(packet): {
                int(node): [event_from_dict(e) for e in events]
                for node, events in per_node.items()
            }
            for packet, per_node in state["events"].items()
        }
        self.dirty = {PacketKey.parse(p) for p in state["dirty"]}

    # ------------------------------------------------------------------ #
    # state partitioning (the sharded-cluster checkpoint substrate)

    @staticmethod
    def split_state(
        state: Mapping[str, Any],
        parts: int,
        assign: Callable[[PacketKey], int],
    ) -> list[dict[str, Any]]:
        """Partition an :meth:`export_state` payload into ``parts`` payloads.

        Every top-level entry is keyed by packet, and per-packet
        independence means evidence for one packet never informs another —
        so splitting by ``assign(packet)`` loses nothing.  Each part is a
        valid payload for :meth:`restore_state` on a fresh backend.
        """
        out: list[dict[str, Any]] = [
            {"events": {}, "dirty": []} for _ in range(parts)
        ]
        for packet, per_node in state["events"].items():
            out[assign(PacketKey.parse(packet))]["events"][packet] = per_node
        for packet in state["dirty"]:
            out[assign(PacketKey.parse(packet))]["dirty"].append(packet)
        return out

    @staticmethod
    def merge_states(states: Sequence[Mapping[str, Any]]) -> dict[str, Any]:
        """Fold disjoint :meth:`export_state` payloads into one.

        Inverse of :meth:`split_state` (packets must be disjoint across
        inputs); the merged payload re-sorts keys so it is byte-identical
        to the export of an unsharded backend holding the same evidence.
        """
        events: dict[str, Any] = {}
        dirty: set[PacketKey] = set()
        for state in states:
            events.update(state["events"])
            dirty.update(PacketKey.parse(p) for p in state["dirty"])
        return {
            "events": {
                str(packet): events[str(packet)]
                for packet in sorted(PacketKey.parse(p) for p in events)
            },
            "dirty": [str(packet) for packet in sorted(dirty)],
        }
