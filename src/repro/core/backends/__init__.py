"""Pluggable execution backends for :class:`~repro.core.session.ReconstructionSession`.

One reconstruction pipeline, three execution shapes:

- :class:`SerialBackend` — in-process, the reference semantics;
- :class:`ProcessPoolBackend` — sharded over a worker pool, lazy startup;
- :class:`IncrementalBackend` — stateful accumulation for live ingest.

``make_backend(name)`` resolves the CLI spelling.  To write a custom
backend, subclass :class:`ExecutionBackend` — see ``docs/ARCHITECTURE.md``.
"""

from repro.core.backends.base import (
    ExecutionBackend,
    ExecutionPlan,
    TemplateFactory,
)
from repro.core.backends.incremental import IncrementalBackend
from repro.core.backends.process import ProcessPoolBackend
from repro.core.backends.serial import SerialBackend

#: CLI / config spelling → constructor.
BACKENDS = {
    SerialBackend.name: SerialBackend,
    ProcessPoolBackend.name: ProcessPoolBackend,
    IncrementalBackend.name: IncrementalBackend,
}


def make_backend(
    name: str,
    *,
    workers: "int | None" = None,
    min_packets: "int | None" = None,
) -> ExecutionBackend:
    """Build a backend from its registry name (``serial`` | ``process`` |
    ``incremental``); ``workers``/``min_packets`` apply to ``process``."""
    try:
        cls = BACKENDS[name]
    except KeyError:
        raise ValueError(
            f"unknown backend {name!r}; choose from {sorted(BACKENDS)}"
        ) from None
    if cls is ProcessPoolBackend:
        if min_packets is None:
            return ProcessPoolBackend(workers=workers)
        return ProcessPoolBackend(workers=workers, min_packets=min_packets)
    return cls()


__all__ = [
    "BACKENDS",
    "ExecutionBackend",
    "ExecutionPlan",
    "IncrementalBackend",
    "ProcessPoolBackend",
    "SerialBackend",
    "TemplateFactory",
    "make_backend",
]
